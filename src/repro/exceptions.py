"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FactorGraphError",
    "VariableDomainError",
    "FactorShapeError",
    "InferenceError",
    "ConvergenceError",
    "SchemaError",
    "UnknownAttributeError",
    "MappingError",
    "MappingCompositionError",
    "PDMSError",
    "UnknownPeerError",
    "DiscoveryTimeoutError",
    "InjectedFaultError",
    "QueryError",
    "RoutingError",
    "FeedbackError",
    "AlignmentError",
    "GenerationError",
    "EvaluationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


# ---------------------------------------------------------------------------
# Factor graph / inference
# ---------------------------------------------------------------------------


class FactorGraphError(ReproError):
    """Raised when a factor graph is malformed or used inconsistently."""


class VariableDomainError(FactorGraphError):
    """Raised when a value lies outside a variable's domain."""


class FactorShapeError(FactorGraphError):
    """Raised when a factor table does not match the variables it spans."""


class InferenceError(ReproError):
    """Raised when an inference routine cannot produce a result."""


class ConvergenceError(InferenceError):
    """Raised when an iterative algorithm fails to converge and the caller
    requested strict behaviour."""


# ---------------------------------------------------------------------------
# Schemas and mappings
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """Raised for malformed schemas or schema registry misuse."""


class UnknownAttributeError(SchemaError):
    """Raised when referencing an attribute a schema does not declare."""


class MappingError(ReproError):
    """Raised for malformed schema mappings."""


class MappingCompositionError(MappingError):
    """Raised when mappings cannot be composed (e.g. schema mismatch)."""


# ---------------------------------------------------------------------------
# PDMS network
# ---------------------------------------------------------------------------


class PDMSError(ReproError):
    """Raised for errors in the peer data management network substrate."""


class UnknownPeerError(PDMSError):
    """Raised when referencing a peer that is not part of the network."""


class DiscoveryTimeoutError(PDMSError):
    """Raised when a sharded probe's worker exceeds its per-shard timeout.

    Carries enough context (shard, units, deadline) in its message to point
    at the wedged fan-out; the :class:`~repro.reliability.ResilientDiscoveryExecutor`
    catches it internally and retries instead of surfacing it."""


class InjectedFaultError(ReproError):
    """A deterministic chaos fault fired by a :class:`~repro.reliability.FaultInjector`.

    Only ever raised under an explicitly configured
    :class:`~repro.reliability.FaultPlan`; production code paths never
    construct it."""


class QueryError(PDMSError):
    """Raised for malformed queries."""


class RoutingError(PDMSError):
    """Raised when a query cannot be routed."""


class FeedbackError(ReproError):
    """Raised when cycle / parallel-path feedback is malformed."""


# ---------------------------------------------------------------------------
# Alignment, generation, evaluation
# ---------------------------------------------------------------------------


class AlignmentError(ReproError):
    """Raised by the ontology alignment substrate."""


class GenerationError(ReproError):
    """Raised when a synthetic scenario cannot be generated."""


class EvaluationError(ReproError):
    """Raised by the evaluation harness."""
