"""Attribute correspondences — the elementary unit of a schema mapping.

A mapping between two schemas is a set of attribute-level correspondences
(e.g. ``Creator → Author/DisplayName``).  The paper's whole point is that
some of these correspondences are *semantically wrong* even though they are
syntactically well-formed; we therefore keep an optional ``is_correct``
ground-truth flag on each correspondence so that the evaluation harness can
score the detector.  The flag is never consulted by the inference code —
the probabilistic machinery only observes feedback from mapping round
trips, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..exceptions import MappingError

__all__ = ["Correspondence"]


@dataclass(frozen=True)
class Correspondence:
    """A single attribute-to-attribute link inside a schema mapping.

    Parameters
    ----------
    source_attribute:
        Attribute name in the mapping's source schema.
    target_attribute:
        Attribute name in the mapping's target schema.
    confidence:
        Score assigned by whoever produced the correspondence (an automatic
        matcher or a human); purely informational for the inference.
    is_correct:
        Ground-truth label (``True``/``False``) or ``None`` when unknown.
        Used only for evaluation, never by the detector itself.
    provenance:
        Free-form origin tag, e.g. ``"manual"`` or ``"edit-distance"``.
    """

    source_attribute: str
    target_attribute: str
    confidence: float = 1.0
    is_correct: Optional[bool] = None
    provenance: str = "manual"

    def __post_init__(self) -> None:
        if not self.source_attribute or not self.target_attribute:
            raise MappingError("correspondence attributes must be non-empty")
        if not 0.0 <= self.confidence <= 1.0:
            raise MappingError(
                f"correspondence confidence must be in [0, 1], got {self.confidence}"
            )

    def reversed(self) -> "Correspondence":
        """Correspondence with source and target swapped (for bidirectional
        mappings in undirected PDMS networks)."""
        return Correspondence(
            source_attribute=self.target_attribute,
            target_attribute=self.source_attribute,
            confidence=self.confidence,
            is_correct=self.is_correct,
            provenance=self.provenance,
        )

    def with_target(self, target_attribute: str, is_correct: Optional[bool]) -> "Correspondence":
        """Copy with a different target attribute (used by error injection)."""
        return replace(self, target_attribute=target_attribute, is_correct=is_correct)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source_attribute} -> {self.target_attribute}"
