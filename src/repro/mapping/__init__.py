"""Mapping substrate: correspondences, pairwise mappings, composition and
error injection."""

from .correspondence import Correspondence
from .mapping import Mapping, MappingIdentifier
from .composition import (
    NEGATIVE,
    NEUTRAL,
    POSITIVE,
    apply_chain,
    compose,
    parallel_paths_outcome,
    round_trip_outcome,
    validate_chain,
)
from .corruption import (
    CorruptionReport,
    corrupt_correspondence,
    corrupt_mapping,
    drop_correspondences,
)

__all__ = [
    "Correspondence",
    "Mapping",
    "MappingIdentifier",
    "POSITIVE",
    "NEGATIVE",
    "NEUTRAL",
    "apply_chain",
    "compose",
    "parallel_paths_outcome",
    "round_trip_outcome",
    "validate_chain",
    "CorruptionReport",
    "corrupt_correspondence",
    "corrupt_mapping",
    "drop_correspondences",
]
