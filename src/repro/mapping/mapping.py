"""Pairwise schema mappings.

A :class:`Mapping` connects a source schema to a target schema through a
set of attribute correspondences.  It supports the two operations the paper
relies on:

* *applying* the mapping to an attribute (or query operation) — i.e. the
  reformulation step a peer performs before forwarding a query, and
* *composition* with another mapping (see :mod:`repro.mapping.composition`),
  which is how cycle and parallel-path round trips are evaluated.

Mappings are identified by ``(source, target)`` peer/schema names plus an
optional explicit identifier so that two parallel mappings between the same
pair of peers remain distinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping as TMapping, Optional, Tuple

from ..exceptions import MappingError
from .correspondence import Correspondence

__all__ = ["Mapping", "MappingIdentifier"]


@dataclass(frozen=True, order=True)
class MappingIdentifier:
    """Identifies one directed mapping edge in the PDMS graph."""

    source: str
    target: str
    label: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f"#{self.label}" if self.label else ""
        return f"{self.source}->{self.target}{suffix}"


class Mapping:
    """A directed schema mapping from ``source`` to ``target``.

    Parameters
    ----------
    source:
        Name of the source schema / peer.
    target:
        Name of the target schema / peer.
    correspondences:
        Attribute correspondences making up the mapping.  At most one
        correspondence per *source* attribute is allowed (a query attribute
        must reformulate deterministically).
    label:
        Optional label distinguishing parallel mappings between the same
        pair of peers.
    """

    def __init__(
        self,
        source: str,
        target: str,
        correspondences: Iterable[Correspondence] = (),
        label: str = "",
    ) -> None:
        if not source or not target:
            raise MappingError("mapping endpoints must be non-empty")
        if source == target:
            raise MappingError(
                f"mapping endpoints must differ, got {source!r} twice"
            )
        self.identifier = MappingIdentifier(source=source, target=target, label=label)
        self._by_source: Dict[str, Correspondence] = {}
        for correspondence in correspondences:
            self.add(correspondence)

    # -- construction --------------------------------------------------------------

    def add(self, correspondence: Correspondence) -> Correspondence:
        """Add a correspondence; source attributes must be unique."""
        if correspondence.source_attribute in self._by_source:
            raise MappingError(
                f"mapping {self} already maps attribute "
                f"{correspondence.source_attribute!r}"
            )
        self._by_source[correspondence.source_attribute] = correspondence
        return correspondence

    @classmethod
    def from_pairs(
        cls,
        source: str,
        target: str,
        pairs: TMapping[str, str] | Iterable[Tuple[str, str]],
        label: str = "",
        is_correct: Optional[bool] = True,
        provenance: str = "manual",
    ) -> "Mapping":
        """Build a mapping from ``{source_attr: target_attr}`` pairs."""
        if isinstance(pairs, dict):
            items = pairs.items()
        else:
            items = list(pairs)
        return cls(
            source,
            target,
            correspondences=[
                Correspondence(
                    source_attribute=s,
                    target_attribute=t,
                    is_correct=is_correct,
                    provenance=provenance,
                )
                for s, t in items
            ],
            label=label,
        )

    # -- identity --------------------------------------------------------------------

    @property
    def source(self) -> str:
        return self.identifier.source

    @property
    def target(self) -> str:
        return self.identifier.target

    @property
    def label(self) -> str:
        return self.identifier.label

    @property
    def name(self) -> str:
        """Human-readable mapping name, e.g. ``'p2->p3'``."""
        return str(self.identifier)

    # -- correspondences ----------------------------------------------------------------

    @property
    def correspondences(self) -> Tuple[Correspondence, ...]:
        return tuple(self._by_source.values())

    @property
    def source_attributes(self) -> Tuple[str, ...]:
        return tuple(self._by_source)

    def correspondence_for(self, source_attribute: str) -> Optional[Correspondence]:
        """The correspondence departing from ``source_attribute`` (or None)."""
        return self._by_source.get(source_attribute)

    def maps_attribute(self, source_attribute: str) -> bool:
        """True when the mapping provides a target for ``source_attribute``."""
        return source_attribute in self._by_source

    def apply(self, source_attribute: str) -> Optional[str]:
        """Image of ``source_attribute`` under the mapping.

        Returns ``None`` when the mapping has no correspondence for the
        attribute — the ``⊥`` case of the paper (§3.2.1).
        """
        correspondence = self._by_source.get(source_attribute)
        if correspondence is None:
            return None
        return correspondence.target_attribute

    def as_renaming(self) -> Dict[str, str]:
        """The mapping as a plain ``{source_attr: target_attr}`` dict."""
        return {
            c.source_attribute: c.target_attribute for c in self._by_source.values()
        }

    # -- ground truth (evaluation only) ----------------------------------------------------

    def erroneous_attributes(self) -> Tuple[str, ...]:
        """Source attributes whose correspondence is labelled incorrect."""
        return tuple(
            c.source_attribute
            for c in self._by_source.values()
            if c.is_correct is False
        )

    def is_correct_for(self, source_attribute: str) -> Optional[bool]:
        """Ground-truth label of the correspondence for ``source_attribute``."""
        correspondence = self._by_source.get(source_attribute)
        if correspondence is None:
            return None
        return correspondence.is_correct

    # -- misc ----------------------------------------------------------------------------

    def reversed(self, label: str = "") -> "Mapping":
        """The inverse mapping (only meaningful for bijective mappings)."""
        return Mapping(
            self.target,
            self.source,
            correspondences=[c.reversed() for c in self._by_source.values()],
            label=label or self.label,
        )

    def __len__(self) -> int:
        return len(self._by_source)

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self._by_source.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mapping({self.name!r}, correspondences={len(self)})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
