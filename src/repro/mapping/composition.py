"""Mapping composition — transitive closure of mapping operations.

The feedback the paper's detector consumes is produced by pushing an
attribute through a *chain* of mappings (around a cycle, or down each branch
of a pair of parallel paths) and looking at what comes out at the end
(§3.2.1):

* the original attribute      → positive feedback,
* a different attribute       → negative feedback,
* nothing (no correspondence) → neutral feedback (⊥).

This module implements the chain-application primitive and the comparison
helpers; the conversion of outcomes into factor-graph factors lives in
:mod:`repro.core.feedback`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import MappingCompositionError
from .mapping import Mapping

__all__ = [
    "validate_chain",
    "apply_chain",
    "compose",
    "round_trip_outcome",
    "parallel_paths_outcome",
    "RoundTripOutcome",
]

#: Symbolic outcomes of a round-trip comparison.
RoundTripOutcome = str
POSITIVE: RoundTripOutcome = "positive"
NEGATIVE: RoundTripOutcome = "negative"
NEUTRAL: RoundTripOutcome = "neutral"


def validate_chain(mappings: Sequence[Mapping]) -> None:
    """Check that consecutive mappings in ``mappings`` share endpoints.

    ``mappings[i].target`` must equal ``mappings[i+1].source``.  Raises
    :class:`MappingCompositionError` otherwise.
    """
    if not mappings:
        raise MappingCompositionError("cannot compose an empty chain of mappings")
    for first, second in zip(mappings, mappings[1:]):
        if first.target != second.source:
            raise MappingCompositionError(
                f"mapping chain is broken: {first.name} ends at {first.target!r} "
                f"but {second.name} starts at {second.source!r}"
            )


def apply_chain(mappings: Sequence[Mapping], attribute: str) -> Optional[str]:
    """Push ``attribute`` through the chain; return its final image.

    Returns ``None`` as soon as any mapping in the chain lacks a
    correspondence for the current attribute (the ⊥ case).
    """
    validate_chain(mappings)
    current: Optional[str] = attribute
    for mapping in mappings:
        if current is None:
            return None
        current = mapping.apply(current)
    return current


def compose(mappings: Sequence[Mapping], label: str = "") -> Mapping:
    """Compose a chain into a single mapping from the first source to the
    last target.

    Only attributes that survive the whole chain get a correspondence in the
    composite; the composite's ground-truth labels are the conjunction of
    the labels along the chain (unknown labels propagate as unknown).
    """
    validate_chain(mappings)
    source = mappings[0].source
    target = mappings[-1].target
    if source == target:
        # A full cycle composes to an endomapping on the starting schema;
        # Mapping forbids identical endpoints, so the caller should use
        # round_trip_outcome() for cycles instead.
        raise MappingCompositionError(
            "chain composes to a self-mapping; use round_trip_outcome() for cycles"
        )
    composite = Mapping(source, target, label=label or "composed")
    for attribute in mappings[0].source_attributes:
        image = apply_chain(mappings, attribute)
        if image is None:
            continue
        correct: Optional[bool] = True
        current = attribute
        for mapping in mappings:
            c = mapping.correspondence_for(current)
            assert c is not None  # guaranteed because image is not None
            if c.is_correct is None:
                correct = None
            elif c.is_correct is False and correct is not None:
                correct = False
            current = c.target_attribute
        composite.add(
            mappings[0].correspondence_for(attribute).with_target(image, correct)
        )
    return composite


def round_trip_outcome(cycle: Sequence[Mapping], attribute: str) -> RoundTripOutcome:
    """Outcome of pushing ``attribute`` around a full mapping cycle.

    ``cycle`` must start and end at the same peer
    (``cycle[0].source == cycle[-1].target``).
    """
    validate_chain(cycle)
    if cycle[0].source != cycle[-1].target:
        raise MappingCompositionError(
            f"not a cycle: starts at {cycle[0].source!r}, "
            f"ends at {cycle[-1].target!r}"
        )
    image = apply_chain(cycle, attribute)
    if image is None:
        return NEUTRAL
    if image == attribute:
        return POSITIVE
    return NEGATIVE


def parallel_paths_outcome(
    first_path: Sequence[Mapping],
    second_path: Sequence[Mapping],
    attribute: str,
) -> RoundTripOutcome:
    """Outcome of pushing ``attribute`` down two parallel mapping paths.

    Both paths must share their source and destination peers.  The images at
    the destination are compared: equal → positive, different → negative,
    either missing → neutral.
    """
    validate_chain(first_path)
    validate_chain(second_path)
    if first_path[0].source != second_path[0].source:
        raise MappingCompositionError(
            "parallel paths must share their source peer, got "
            f"{first_path[0].source!r} and {second_path[0].source!r}"
        )
    if first_path[-1].target != second_path[-1].target:
        raise MappingCompositionError(
            "parallel paths must share their destination peer, got "
            f"{first_path[-1].target!r} and {second_path[-1].target!r}"
        )
    first_image = apply_chain(first_path, attribute)
    second_image = apply_chain(second_path, attribute)
    if first_image is None or second_image is None:
        return NEUTRAL
    if first_image == second_image:
        return POSITIVE
    return NEGATIVE
