"""Error injection for schema mappings.

Generated PDMS scenarios start from *correct* mappings (identity-style
correspondences between semantically equivalent attributes) and then corrupt
a controlled fraction of correspondences to simulate the errors introduced
by automatic alignment tools or by the limited expressivity of the mapping
language (paper §1).  The corrupted target attribute is drawn uniformly from
the other attributes of the target schema, which is exactly the error model
the paper uses to justify Δ ≈ 1 / #attributes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import GenerationError
from ..schema.schema import Schema
from .correspondence import Correspondence
from .mapping import Mapping

__all__ = [
    "CorruptionReport",
    "corrupt_mapping",
    "corrupt_mapping_in_place",
    "corrupt_correspondence",
    "drop_correspondences",
]


@dataclass(frozen=True)
class CorruptionReport:
    """What was corrupted in a mapping (for evaluation bookkeeping)."""

    mapping_name: str
    corrupted_attributes: Tuple[str, ...]
    dropped_attributes: Tuple[str, ...] = ()

    @property
    def error_count(self) -> int:
        return len(self.corrupted_attributes)


def corrupt_correspondence(
    correspondence: Correspondence,
    target_schema: Schema,
    rng: random.Random,
) -> Correspondence:
    """Return a corrupted copy of ``correspondence``.

    The new target is a uniformly random *other* attribute of the target
    schema; the ground-truth label becomes ``False``.
    """
    candidates = [
        name
        for name in target_schema.attribute_names
        if name != correspondence.target_attribute
    ]
    if not candidates:
        raise GenerationError(
            f"cannot corrupt correspondence {correspondence}: target schema "
            f"{target_schema.name!r} has no alternative attribute"
        )
    wrong_target = rng.choice(candidates)
    return correspondence.with_target(wrong_target, is_correct=False)


def corrupt_mapping(
    mapping: Mapping,
    target_schema: Schema,
    error_rate: float = 0.0,
    attributes: Optional[Sequence[str]] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Mapping, CorruptionReport]:
    """Corrupt a mapping and return ``(corrupted mapping, report)``.

    Exactly one of the selection modes applies:

    * ``attributes`` — corrupt precisely those source attributes, or
    * ``error_rate`` — corrupt each correspondence independently with this
      probability.

    The original mapping is left untouched.
    """
    if attributes is not None and error_rate:
        raise GenerationError("pass either attributes or error_rate, not both")
    if not 0.0 <= error_rate <= 1.0:
        raise GenerationError(f"error_rate must be in [0, 1], got {error_rate}")
    rng = rng or random.Random(0)

    to_corrupt: set[str]
    if attributes is not None:
        unknown = [a for a in attributes if not mapping.maps_attribute(a)]
        if unknown:
            raise GenerationError(
                f"mapping {mapping.name} does not map attributes {unknown}"
            )
        to_corrupt = set(attributes)
    else:
        to_corrupt = {
            c.source_attribute
            for c in mapping.correspondences
            if rng.random() < error_rate
        }

    corrupted = Mapping(mapping.source, mapping.target, label=mapping.label)
    corrupted_attributes: List[str] = []
    for correspondence in mapping.correspondences:
        if correspondence.source_attribute in to_corrupt:
            corrupted.add(corrupt_correspondence(correspondence, target_schema, rng))
            corrupted_attributes.append(correspondence.source_attribute)
        else:
            corrupted.add(correspondence)
    report = CorruptionReport(
        mapping_name=mapping.name,
        corrupted_attributes=tuple(corrupted_attributes),
    )
    return corrupted, report


def corrupt_mapping_in_place(
    mapping: Mapping,
    target_schema: Schema,
    error_rate: float = 0.0,
    attributes: Optional[Sequence[str]] = None,
    rng: Optional[random.Random] = None,
) -> CorruptionReport:
    """Corrupt ``mapping``'s correspondences *in place*; return the report.

    Same selection modes as :func:`corrupt_mapping`, but the corrupted
    correspondences are swapped into the existing :class:`Mapping` object,
    so every holder of a reference (the network index, the owning peer)
    sees them — the pattern scenario generation and the benchmark network
    builders need.  This is the one sanctioned place that touches the
    mapping's correspondence store directly.
    """
    corrupted, report = corrupt_mapping(
        mapping,
        target_schema,
        error_rate=error_rate,
        attributes=attributes,
        rng=rng,
    )
    for correspondence in corrupted.correspondences:
        mapping._by_source[correspondence.source_attribute] = correspondence
    return report


def drop_correspondences(
    mapping: Mapping,
    attributes: Iterable[str],
) -> Tuple[Mapping, CorruptionReport]:
    """Remove the correspondences for ``attributes`` from a mapping.

    Models schemas that simply lack a representation for a concept — the
    source of ⊥ (neutral) feedback in the paper.
    """
    to_drop = set(attributes)
    reduced = Mapping(mapping.source, mapping.target, label=mapping.label)
    dropped: List[str] = []
    for correspondence in mapping.correspondences:
        if correspondence.source_attribute in to_drop:
            dropped.append(correspondence.source_attribute)
            continue
        reduced.add(correspondence)
    report = CorruptionReport(
        mapping_name=mapping.name,
        corrupted_attributes=(),
        dropped_attributes=tuple(dropped),
    )
    return reduced, report
