"""Exact inference by exhaustive enumeration.

The paper compares its decentralised, iterative estimates against "a global
inference process" (Figure 9).  For the graph sizes involved (a handful of
mapping variables per neighbourhood) brute-force enumeration over all joint
assignments is perfectly adequate and trivially correct, which makes it the
right reference implementation to measure the loopy approximation against.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from ..exceptions import InferenceError
from .graph import FactorGraph
from .messages import normalize

__all__ = ["exact_marginals", "exact_joint", "relative_error"]

#: Safety cap — enumeration over more than this many joint assignments is
#: almost certainly a mistake (the global PDMS graph should be handled by
#: the embedded message passing instead).
_MAX_ASSIGNMENTS = 2 ** 22


def _joint_assignments(graph: FactorGraph) -> Iterable[Dict[str, str]]:
    variables = graph.variables
    domains = [variable.domain for variable in variables]
    total = 1
    for domain in domains:
        total *= len(domain)
    if total > _MAX_ASSIGNMENTS:
        raise InferenceError(
            f"exact inference over {total} joint assignments is not tractable; "
            "use the iterative sum-product engine instead"
        )
    for states in itertools.product(*domains):
        yield {variable.name: state for variable, state in zip(variables, states)}


def exact_joint(graph: FactorGraph) -> Dict[Tuple[str, ...], float]:
    """Unnormalised joint weight of every assignment, keyed by state tuple.

    The key order follows ``graph.variables``.
    """
    joint: Dict[Tuple[str, ...], float] = {}
    names = [variable.name for variable in graph.variables]
    for assignment in _joint_assignments(graph):
        weight = 1.0
        for factor in graph.factors:
            weight *= factor.value(assignment)
            # Exact zero: a hard structural veto, not a rounding artifact.
            if weight == 0.0:  # lint: disable=numeric-float-equality
                break
        joint[tuple(assignment[name] for name in names)] = weight
    return joint


def exact_marginals(graph: FactorGraph) -> Dict[str, np.ndarray]:
    """Exact marginal distribution of every variable in ``graph``.

    Returns a map ``variable name -> normalised vector over its domain``.
    Raises :class:`InferenceError` when the total probability mass is zero
    (contradictory hard evidence).
    """
    variables = graph.variables
    totals = {
        variable.name: np.zeros(variable.cardinality) for variable in variables
    }
    mass = 0.0
    for assignment in _joint_assignments(graph):
        weight = 1.0
        for factor in graph.factors:
            weight *= factor.value(assignment)
            # Exact zeros again: structural vetoes short-circuit the sum.
            if weight == 0.0:  # lint: disable=numeric-float-equality
                break
        if weight == 0.0:  # lint: disable=numeric-float-equality
            continue
        mass += weight
        for variable in variables:
            totals[variable.name][variable.index_of(assignment[variable.name])] += weight
    if mass <= 0.0:
        raise InferenceError(
            "the factor graph assigns zero probability to every assignment "
            "(contradictory evidence)"
        )
    return {name: normalize(vector) for name, vector in totals.items()}


def relative_error(
    approximate: Mapping[str, np.ndarray],
    exact: Mapping[str, np.ndarray],
    variable_names: Iterable[str] | None = None,
) -> float:
    """Largest relative error of approximate marginals against exact ones.

    The error of one variable is ``|approx − exact| / exact`` evaluated on
    the P(correct) entry (index 0), which is the quantity Figure 9 reports.
    """
    names = list(variable_names) if variable_names is not None else list(exact)
    worst = 0.0
    for name in names:
        exact_p = float(exact[name][0])
        approx_p = float(approximate[name][0])
        # A zero exact marginal is produced, not computed — safe to test.
        if exact_p == 0.0:  # lint: disable=numeric-float-equality
            error = abs(approx_p)
        else:
            error = abs(approx_p - exact_p) / exact_p
        worst = max(worst, error)
    return worst
