"""Compiled, vectorized sum–product kernels.

The reference :class:`~repro.factorgraph.sum_product.SumProduct` engine walks
Python dicts edge by edge and performs a handful of tiny numpy operations per
directed message, so one synchronous round on a modest PDMS graph already
costs thousands of interpreter round-trips.  This module flattens a
:class:`~repro.factorgraph.graph.FactorGraph` once into index arrays and runs
every sweep as a small, fixed number of batched array operations:

* **Edge layout** — every (factor, variable) edge gets a dense id in the same
  factor-major order the loop engine uses, and both directed message families
  live in stacked ``(edges, cardinality)`` matrices.
* **Arity buckets** — factors are grouped by table shape
  (:class:`FactorBatch`); each bucket's factor→variable messages for one
  target slot are a single ``einsum`` over the stacked tables and the
  incoming message matrices of the other slots.  Count-symmetric factors
  (:class:`~repro.factorgraph.factors.CountFactor` — the paper's feedback
  CPTs over long cycles and parallel paths) are bucketed by arity instead
  and evaluated by the count-space kernels (:class:`CountFactorBatch`),
  which never build a ``(2,)**arity`` table and therefore compile at any
  arity.
* **Segment products** — variable→factor messages are exclusive products of
  the factor→variable messages incident to each variable, computed with
  ``np.multiply.reduceat`` over variable-sorted segments (a zero-aware
  product-of-others, so factor tables with exact zeros — e.g. the paper's
  feedback CPTs with ``P(f+| one error) = 0`` — never trigger a 0/0).
* **Message loss** — the Bernoulli keep/send decisions of a round are drawn
  as one vectorized mask array, in the same edge order (and from the same
  ``random.Random`` stream) as the loop engine, so lossy runs with a shared
  seed are reproducible across backends.
* **Damping and convergence** — damped updates and the per-round convergence
  delta are whole-matrix expressions (``np.abs(new - old).max()``).
* **Marginal snapshots** — per-iteration beliefs are segment products over
  the factor→variable matrix, i.e. plain matrix slices, which makes history
  recording cheap.

Equivalence contract
--------------------
For every graph it can compile, the vectorized engine performs exactly the
same Jacobi-style update schedule as the loop engine and therefore produces
the same messages, marginals and iteration counts up to floating-point
rounding (parity tests pin the agreement to well below ``1e-9``).  Graphs it
cannot compile (mixed variable cardinalities, *dense* factors of arity
beyond :data:`~repro.constants.MAX_COMPILED_ARITY` — count-symmetric
:class:`~repro.factorgraph.factors.CountFactor` tables compile at any
arity) are reported via :func:`compile_factor_graph` returning ``None``,
and :class:`~repro.factorgraph.sum_product.SumProduct` transparently falls
back to the loop reference.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constants import COUNT_KERNEL_MIN_ARITY, MAX_COMPILED_ARITY
from ..exceptions import FactorGraphError, FactorShapeError, VariableDomainError
from .factors import CountFactor, Factor
from .graph import FactorGraph

__all__ = [
    "MAX_COMPILED_ARITY",
    "COUNT_KERNEL_MIN_ARITY",
    "normalize_rows",
    "segment_products",
    "segment_exclusive_products",
    "FactorBatch",
    "StackedFactorBatch",
    "CountFactorBatch",
    "StackedCountFactorBatch",
    "CompiledFactorGraph",
    "compile_factor_graph",
]

#: One einsum subscript letter per factor slot; ``z`` is reserved for the
#: factor batch axis and ``A`` for the stacked (attribute) axis of
#: :class:`StackedFactorBatch`.  Dense factors of higher arity fall back to
#: the loop engine; count-symmetric factors switch to the count-space
#: kernels below, which need no subscript letters at all.
_EINSUM_LETTERS = "abcdefghijklmnopqrstuvwxy"
_STACK_LETTER = "A"
if MAX_COMPILED_ARITY != len(_EINSUM_LETTERS):  # pragma: no cover - config guard
    raise RuntimeError(
        f"repro.constants.MAX_COMPILED_ARITY ({MAX_COMPILED_ARITY}) is out of "
        f"sync with the einsum alphabet ({len(_EINSUM_LETTERS)} letters)"
    )


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Normalise the last axis of a non-negative array to sum to one.

    Works on ``(rows, cardinality)`` matrices and on arbitrarily batched
    stacks of them (e.g. the ``(attributes, rows, cardinality)`` state of the
    batched embedded engine) — every vector along the last axis is scaled
    independently.  Vectors that are identically zero (or non-finite, which
    can only arise from degenerate factor tables) become uniform — the same
    policy as :func:`repro.factorgraph.messages.normalize`, applied
    batch-wise.
    """
    matrix = np.asarray(matrix, dtype=float)
    totals = matrix.sum(axis=-1, keepdims=True)
    bad = (totals <= 0.0) | ~np.isfinite(totals)
    safe_totals = np.where(bad, 1.0, totals)
    normalized = matrix / safe_totals
    if np.any(bad):
        normalized = np.where(bad, 1.0 / matrix.shape[-1], normalized)
    return normalized


def segment_products(grouped: np.ndarray, segment_starts: np.ndarray) -> np.ndarray:
    """Per-segment row products of an already segment-grouped matrix.

    ``grouped`` is an ``(rows, cardinality)`` matrix — or a batched
    ``(..., rows, cardinality)`` stack of them sharing one segment layout —
    whose rows are sorted so that each segment occupies a contiguous block
    starting at the offsets in ``segment_starts``.  Returns one product row
    per segment (per batch element).
    """
    grouped = np.asarray(grouped, dtype=float)
    if len(segment_starts) == 0:
        return np.empty(grouped.shape[:-2] + (0,) + grouped.shape[-1:], dtype=float)
    return np.multiply.reduceat(grouped, segment_starts, axis=-2)


def segment_exclusive_products(
    grouped: np.ndarray,
    segment_starts: np.ndarray,
    segment_of_row: np.ndarray,
) -> np.ndarray:
    """For every row, the product of the *other* rows of its segment.

    Zero-aware: a zero entry elsewhere in the segment forces the product to
    zero without ever dividing by zero (factor tables with exact zeros —
    e.g. the paper's feedback CPTs with ``P(f+ | one error) = 0`` — would
    otherwise trigger a 0/0).  ``grouped`` must already be segment-sorted
    along its second-to-last axis (leading axes are independent batch
    dimensions sharing one segment layout); ``segment_of_row`` maps each row
    to its segment index.
    """
    grouped = np.asarray(grouped, dtype=float)
    # Exact-zero detection is the point of the zero-aware kernels:
    # only true zeros are masked out of the product.
    zeros = grouped == 0.0  # lint: disable=numeric-float-equality
    safe = np.where(zeros, 1.0, grouped)
    segment_product = np.multiply.reduceat(safe, segment_starts, axis=-2)
    segment_zeros = np.add.reduceat(
        zeros.astype(np.int64), segment_starts, axis=-2
    )
    product_here = np.take(segment_product, segment_of_row, axis=-2)
    zeros_here = np.take(segment_zeros, segment_of_row, axis=-2)
    exclusive = np.where(zeros, product_here, product_here / safe)
    return np.where((zeros_here - zeros) > 0, 0.0, exclusive)


class FactorBatch:
    """A stack of same-shape factors evaluated with one ``einsum`` per slot.

    This is the shared compiled kernel: both the global vectorized engine and
    the embedded per-peer engine (:mod:`repro.core.embedded`) route their
    factor→variable sweeps through it, which is what guarantees the two
    implementations compute identical messages.
    """

    def __init__(self, factors: Sequence[Factor]) -> None:
        factors = tuple(factors)
        if not factors:
            raise FactorGraphError("FactorBatch needs at least one factor")
        shapes = {factor.table.shape for factor in factors}
        if len(shapes) != 1:
            raise FactorGraphError(
                f"FactorBatch requires factors of identical shape, got {sorted(shapes)}"
            )
        self.shape: Tuple[int, ...] = factors[0].table.shape
        self.arity = len(self.shape)
        if self.arity > MAX_COMPILED_ARITY:
            raise FactorGraphError(
                f"factor arity {self.arity} exceeds the compiled limit "
                f"{MAX_COMPILED_ARITY}"
            )
        self.factors = factors
        self.size = len(factors)
        self.tables = np.stack([factor.table for factor in factors])
        letters = _EINSUM_LETTERS[: self.arity]
        self._specs: List[str] = []
        for target in range(self.arity):
            operands = ",".join(
                "z" + letters[slot] for slot in range(self.arity) if slot != target
            )
            spec = "z" + letters
            if operands:
                spec += "," + operands
            self._specs.append(spec + "->z" + letters[target])

    def messages_toward(
        self, target_slot: int, incoming: Sequence[Optional[np.ndarray]]
    ) -> np.ndarray:
        """Batched sum–product messages from every factor to ``target_slot``.

        ``incoming`` holds one ``(size, cardinality_of_slot)`` matrix per
        slot (the entry at ``target_slot`` is ignored and may be ``None``).
        The result is the unnormalised ``(size, cardinality_of_target)``
        message matrix.
        """
        if not 0 <= target_slot < self.arity:
            raise FactorGraphError(
                f"target slot {target_slot} out of range for arity {self.arity}"
            )
        operands = []
        for slot in range(self.arity):
            if slot == target_slot:
                continue
            matrix = incoming[slot]
            if matrix is None:
                raise FactorShapeError(
                    f"missing incoming message matrix for slot {slot}"
                )
            matrix = np.asarray(matrix, dtype=float)
            if matrix.shape != (self.size, self.shape[slot]):
                raise FactorShapeError(
                    f"incoming matrix for slot {slot} has shape {matrix.shape}, "
                    f"expected {(self.size, self.shape[slot])}"
                )
            operands.append(matrix)
        return np.einsum(self._specs[target_slot], self.tables, *operands)


class StackedFactorBatch:
    """Same-shape factor tables stacked along a leading batch axis.

    Where :class:`FactorBatch` evaluates one ``(factors, *shape)`` stack of
    tables, this kernel evaluates a ``(stack, factors, *shape)`` array — one
    table *per factor per stack element* — with a single ``einsum`` per
    target slot.  It is the compiled core of the batched multi-attribute
    embedded engine (:mod:`repro.core.batched`): the stack axis carries the
    attributes, whose factor tables share a topology (which factors exist,
    which variables they span) but differ in content (feedback sign and Δ
    vary per attribute).

    For every stack element the computation is exactly the per-factor
    sum–product expression :meth:`FactorBatch.messages_toward` evaluates, so
    slicing one stack element reproduces the single-attribute kernel.
    """

    def __init__(self, tables: np.ndarray) -> None:
        tables = np.asarray(tables, dtype=float)
        if tables.ndim < 3:
            raise FactorGraphError(
                f"StackedFactorBatch needs a (stack, factors, *shape) table "
                f"array, got ndim={tables.ndim}"
            )
        self.tables = tables
        self.stack = tables.shape[0]
        self.size = tables.shape[1]
        self.shape: Tuple[int, ...] = tables.shape[2:]
        self.arity = len(self.shape)
        if self.arity > MAX_COMPILED_ARITY:
            raise FactorGraphError(
                f"factor arity {self.arity} exceeds the compiled limit "
                f"{MAX_COMPILED_ARITY}"
            )
        letters = _EINSUM_LETTERS[: self.arity]
        prefix = _STACK_LETTER + "z"
        self._specs: List[str] = []
        for target in range(self.arity):
            operands = ",".join(
                prefix + letters[slot] for slot in range(self.arity) if slot != target
            )
            spec = prefix + letters
            if operands:
                spec += "," + operands
            self._specs.append(spec + "->" + prefix + letters[target])

    def messages_toward(
        self,
        target_slot: int,
        incoming: Sequence[Optional[np.ndarray]],
        stack: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched messages from every (stack element, factor) to a slot.

        ``incoming`` holds one ``(stack, size, cardinality_of_slot)`` matrix
        per slot (the entry at ``target_slot`` is ignored and may be
        ``None``).  ``stack`` optionally restricts the evaluation to a
        subset of stack elements (an index array; the incoming matrices must
        then carry ``len(stack)`` leading rows) — a convenience for callers
        that keep one full-size kernel while evaluating changing subsets.
        (The batched embedded engine instead compacts converged lanes out of
        its kernels entirely; see
        ``repro.core.batched.BatchedEmbeddedMessagePassing._compact``.)
        Returns the unnormalised ``(stack, size, cardinality_of_target)``
        message array.
        """
        if not 0 <= target_slot < self.arity:
            raise FactorGraphError(
                f"target slot {target_slot} out of range for arity {self.arity}"
            )
        tables = self.tables if stack is None else self.tables[stack]
        expected_stack = tables.shape[0]
        operands = []
        for slot in range(self.arity):
            if slot == target_slot:
                continue
            matrix = incoming[slot]
            if matrix is None:
                raise FactorShapeError(
                    f"missing incoming message matrix for slot {slot}"
                )
            matrix = np.asarray(matrix, dtype=float)
            if matrix.shape != (expected_stack, self.size, self.shape[slot]):
                raise FactorShapeError(
                    f"incoming matrix for slot {slot} has shape {matrix.shape}, "
                    f"expected {(expected_stack, self.size, self.shape[slot])}"
                )
            operands.append(matrix)
        return np.einsum(self._specs[target_slot], tables, *operands)


def _count_space_messages(
    count_tables: np.ndarray, operands: Sequence[np.ndarray]
) -> np.ndarray:
    """Count-space sum–product messages toward one slot, fully vectorized.

    ``count_tables`` holds the count-value vectors ``f(k)`` of a bucket of
    same-arity count-symmetric factors — shape ``(..., size, arity + 1)``
    with arbitrary leading batch axes — and ``operands`` the binary incoming
    message matrices of the non-target slots, each shaped like
    ``count_tables[..., :2]``.  The message toward the target is

    ``µ(v) = Σ_k f(k + v) · C_k``,

    where ``C_k`` is the coefficient of ``x**k`` in
    ``∏_s (m_s[0] + m_s[1]·x)`` over the non-target slots.  Because the
    feedback CPTs have a constant tail (``f(k) = f(2)`` for ``k ≥ 2``,
    enforced by :class:`~repro.factorgraph.factors.CountFactor` and the
    kernel constructors), only ``C_0``, ``C_1`` and the aggregated tail mass
    are needed; they come out of prefix/suffix products over the slot axis
    in O(arity) operations — no ``(2,)**arity`` table, no divisions (exact
    zeros in the messages are safe by construction).
    """
    stacked = np.stack(operands, axis=0) if operands else None
    return _count_space_from_stacked(count_tables, stacked)


def _count_space_from_stacked(
    count_tables: np.ndarray, stacked: Optional[np.ndarray]
) -> np.ndarray:
    """:func:`_count_space_messages` over pre-stacked operands.

    ``stacked`` carries the non-target incoming messages along its leading
    axis (``None`` for arity-1 factors, which have no operands).  Every
    reduction below runs along that axis elementwise in the trailing axes,
    so evaluating *all* targets of a bucket at once — an extra target axis
    inside ``...`` — produces, per target, bitwise the same floats as the
    historical one-target-at-a-time calls.
    """
    lead_shape = count_tables.shape[:-1]
    if stacked is not None:
        low = stacked[..., 0]
        high = stacked[..., 1]
        coeff0 = np.multiply.reduce(low, axis=0)
        total = np.multiply.reduce(low + high, axis=0)
        # Exclusive products of `low` along the slot axis (prefix × suffix
        # cumulative products), feeding C_1 = Σ_u m_u[1]·∏_{s≠u} m_s[0].
        exclusive = np.ones_like(low)
        if low.shape[0] > 1:
            np.cumprod(low[:-1], axis=0, out=exclusive[1:])
            exclusive[:-1] *= np.cumprod(low[:0:-1], axis=0)[::-1]
        coeff1 = (high * exclusive).sum(axis=0)
        # Σ_{k≥1} and Σ_{k≥2} coefficient masses.  The subtractions only
        # cancel when the tail mass is negligible against C_0/C_1, where the
        # absolute error is ~1e-16 of the (normalised) message; the clamp
        # keeps float rounding from producing small negative masses.
        tail1 = np.maximum(total - coeff0, 0.0)
        tail2 = np.maximum(tail1 - coeff1, 0.0)
    else:
        coeff0 = np.ones(lead_shape)
        coeff1 = np.zeros(lead_shape)
        tail1 = np.zeros(lead_shape)
        tail2 = np.zeros(lead_shape)
    f0 = count_tables[..., 0]
    f1 = count_tables[..., 1]
    tail = count_tables[..., 2] if count_tables.shape[-1] > 2 else 0.0
    return np.stack(
        (f0 * coeff0 + f1 * coeff1 + tail * tail2, f1 * coeff0 + tail * tail1),
        axis=-1,
    )


def _require_constant_tail(tables: np.ndarray, where: str) -> None:
    """Reject count-value tables whose tail is not constant beyond k = 2.

    The truncated-coefficient evaluation of :func:`_count_space_messages` is
    exact only for the paper's CPT family (``f(k)`` identical for all
    ``k ≥ 2``); general count tables would need full prefix/suffix
    coefficient convolutions, which nothing in the model requires.
    """
    if tables.shape[-1] > 3 and np.ptp(tables[..., 2:], axis=-1).any():
        raise FactorGraphError(
            f"{where} requires count tables with a constant tail "
            "(f(k) identical for all k >= 2)"
        )


class CountFactorBatch:
    """Same-arity count-symmetric factors evaluated in count space.

    The drop-in counterpart of :class:`FactorBatch` for
    :class:`~repro.factorgraph.factors.CountFactor` tables: the same
    ``messages_toward`` contract, but each sweep runs the O(arity)
    truncated-coefficient evaluation of :func:`_count_space_messages`
    instead of an einsum over stacked ``(2,)**arity`` tables, so there is no
    compiled arity limit and per-structure memory stays O(arity).
    """

    def __init__(self, factors: Sequence[Factor]) -> None:
        factors = tuple(factors)
        if not factors:
            raise FactorGraphError("CountFactorBatch needs at least one factor")
        for factor in factors:
            if not isinstance(factor, CountFactor):
                raise FactorGraphError(
                    f"CountFactorBatch requires CountFactor instances, got "
                    f"{type(factor).__name__} for {factor.name!r}"
                )
        arities = {factor.arity for factor in factors}
        if len(arities) != 1:
            raise FactorGraphError(
                f"CountFactorBatch requires factors of identical arity, got "
                f"{sorted(arities)}"
            )
        self.arity = arities.pop()
        self.shape: Tuple[int, ...] = (2,) * self.arity
        self.factors = factors
        self.size = len(factors)
        #: ``(size, arity + 1)`` count-value vectors — the whole kernel state.
        self.tables = np.stack([factor.count_values for factor in factors])
        _require_constant_tail(self.tables, "CountFactorBatch")

    def messages_toward(
        self, target_slot: int, incoming: Sequence[Optional[np.ndarray]]
    ) -> np.ndarray:
        """Batched count-space messages from every factor to ``target_slot``.

        Same contract as :meth:`FactorBatch.messages_toward`: one
        ``(size, 2)`` matrix per non-target slot in, the unnormalised
        ``(size, 2)`` message matrix out.
        """
        if not 0 <= target_slot < self.arity:
            raise FactorGraphError(
                f"target slot {target_slot} out of range for arity {self.arity}"
            )
        operands = []
        for slot in range(self.arity):
            if slot == target_slot:
                continue
            matrix = incoming[slot]
            if matrix is None:
                raise FactorShapeError(
                    f"missing incoming message matrix for slot {slot}"
                )
            matrix = np.asarray(matrix, dtype=float)
            if matrix.shape != (self.size, 2):
                raise FactorShapeError(
                    f"incoming matrix for slot {slot} has shape {matrix.shape}, "
                    f"expected {(self.size, 2)}"
                )
            operands.append(matrix)
        return _count_space_messages(self.tables, operands)

    def messages_all(self, gathered: np.ndarray) -> np.ndarray:
        """Count-space messages toward *every* slot in one fused evaluation.

        ``gathered`` is the ``(arity, arity - 1, size, 2)`` array of
        incoming messages — for each target slot, the non-target operands
        in ascending slot order (the gather plans of
        :mod:`repro.factorgraph.plan` produce exactly this layout).  The
        result is the unnormalised ``(arity, size, 2)`` message array;
        slice ``[target]`` is bitwise identical to
        ``messages_toward(target, ...)``, but the per-target operand
        re-stacking — the O(arity²) constant of the historical sweep loop —
        is replaced by one strided gather.
        """
        gathered = np.asarray(gathered, dtype=float)
        expected = (self.arity, self.arity - 1, self.size, 2)
        if gathered.shape != expected:
            raise FactorShapeError(
                f"gathered operand array has shape {gathered.shape}, "
                f"expected {expected}"
            )
        if self.arity == 1:
            return _count_space_from_stacked(self.tables, None)[None]
        return _count_space_from_stacked(
            self.tables, np.moveaxis(gathered, -3, 0)
        )


class StackedCountFactorBatch:
    """Count-value tables stacked along a leading batch axis.

    The count-space counterpart of :class:`StackedFactorBatch`: where that
    kernel evaluates a ``(stack, factors, *(2,)*arity)`` dense table array,
    this one evaluates ``(stack, factors, arity + 1)`` count-value vectors —
    one per factor per stack element — with the same ``messages_toward``
    contract.  It is what lets the batched multi-attribute and blocked
    per-origin engines (:mod:`repro.core.batched`) run arity buckets beyond
    the dense crossover without ever materialising a ``(2,)**arity`` CPT.
    """

    def __init__(self, tables: np.ndarray) -> None:
        tables = np.asarray(tables, dtype=float)
        if tables.ndim != 3:
            raise FactorGraphError(
                f"StackedCountFactorBatch needs a (stack, factors, arity + 1) "
                f"count-table array, got ndim={tables.ndim}"
            )
        if tables.shape[-1] < 2:
            raise FactorGraphError(
                f"count tables need at least two count values, got shape "
                f"{tables.shape}"
            )
        if np.any(tables < 0):
            raise FactorGraphError("count tables must be non-negative")
        _require_constant_tail(tables, "StackedCountFactorBatch")
        self.tables = tables
        self.stack = tables.shape[0]
        self.size = tables.shape[1]
        self.arity = tables.shape[2] - 1
        self.shape: Tuple[int, ...] = (2,) * self.arity

    def messages_toward(
        self,
        target_slot: int,
        incoming: Sequence[Optional[np.ndarray]],
        stack: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched count-space messages from every (stack element, factor).

        Same contract as :meth:`StackedFactorBatch.messages_toward`: one
        ``(stack, size, 2)`` matrix per non-target slot in, the unnormalised
        ``(stack, size, 2)`` message array out; ``stack`` optionally
        restricts the evaluation to a subset of stack elements.
        """
        if not 0 <= target_slot < self.arity:
            raise FactorGraphError(
                f"target slot {target_slot} out of range for arity {self.arity}"
            )
        tables = self.tables if stack is None else self.tables[stack]
        expected_stack = tables.shape[0]
        operands = []
        for slot in range(self.arity):
            if slot == target_slot:
                continue
            matrix = incoming[slot]
            if matrix is None:
                raise FactorShapeError(
                    f"missing incoming message matrix for slot {slot}"
                )
            matrix = np.asarray(matrix, dtype=float)
            if matrix.shape != (expected_stack, self.size, 2):
                raise FactorShapeError(
                    f"incoming matrix for slot {slot} has shape {matrix.shape}, "
                    f"expected {(expected_stack, self.size, 2)}"
                )
            operands.append(matrix)
        return _count_space_messages(tables, operands)

    def messages_all(self, gathered: np.ndarray) -> np.ndarray:
        """Count-space messages toward every slot of every stack element.

        ``gathered`` is the ``(stack, arity, arity - 1, size, 2)`` operand
        array (per target slot, the non-target operands in ascending slot
        order); the result is the unnormalised ``(stack, arity, size, 2)``
        message array, slice ``[:, target]`` bitwise identical to
        ``messages_toward(target, ...)``.
        """
        gathered = np.asarray(gathered, dtype=float)
        expected = (self.stack, self.arity, self.arity - 1, self.size, 2)
        if gathered.shape != expected:
            raise FactorShapeError(
                f"gathered operand array has shape {gathered.shape}, "
                f"expected {expected}"
            )
        tables = self.tables[:, None]
        if self.arity == 1:
            return _count_space_from_stacked(tables, None)
        return _count_space_from_stacked(tables, np.moveaxis(gathered, -3, 0))


class CompiledFactorGraph:
    """A :class:`FactorGraph` flattened into batched message-passing arrays.

    The compiled form owns the message state (two ``(edges, cardinality)``
    matrices) and exposes the same update schedule as the loop engine:
    :meth:`iterate_once` runs one synchronous round, :meth:`marginals` reads
    the current beliefs.  Construction raises :class:`FactorGraphError` for
    graphs that cannot be compiled — use :func:`compile_factor_graph` for the
    soft-failure variant.
    """

    def __init__(self, graph: FactorGraph, executor: object = None) -> None:
        # Imported lazily: repro.factorgraph.plan imports the kernels from
        # this module at import time.
        from .plan import get_executor, lower_factor_graph

        graph.validate()
        self.graph = graph
        variables = graph.variables
        cardinalities = {variable.cardinality for variable in variables}
        if len(cardinalities) > 1:
            raise FactorGraphError(
                f"cannot compile graph {graph.name!r}: variables have mixed "
                f"cardinalities {sorted(cardinalities)} (use the loops backend)"
            )
        self.cardinality = cardinalities.pop() if cardinalities else 2
        self.variable_names: Tuple[str, ...] = tuple(v.name for v in variables)
        self.domains: Dict[str, Tuple[str, ...]] = {
            v.name: v.domain for v in variables
        }
        self._variable_index = {name: i for i, name in enumerate(self.variable_names)}

        # -- lower to the shared sweep-plan IR ---------------------------------
        # Edge layout, arity buckets (dense einsum vs count space), and the
        # variable segment plans all come out of the one lowering every
        # engine shares; execution is delegated to the pluggable executor.
        self._executor = get_executor(executor)
        plan, kernels = lower_factor_graph(graph)
        self.plan = plan
        self._kernels = kernels
        self.edge_count = plan.edge_count
        self.edge_variable = plan.edge_mapping
        self._order = plan.edge_order
        self._segment_starts = plan.segment_starts
        self._segment_of_edge = plan.segment_of_edge
        self._segment_variable = plan.segment_mapping
        #: Historical ``(kernel, (size, arity) edge-id table)`` view of the
        #: plan's buckets, kept for introspection.
        self.batches: List[Tuple[FactorBatch | CountFactorBatch, np.ndarray]] = [
            (kernel, np.stack(bucket.scatter, axis=1))
            for bucket, kernel in zip(plan.batches, kernels)
        ]

        self.reset()

    # -- state -----------------------------------------------------------------

    def reset(self) -> None:
        """(Re)initialise both message matrices to unit messages."""
        uniform = 1.0 / self.cardinality
        self.variable_to_factor = np.full(
            (self.edge_count, self.cardinality), uniform
        )
        self.factor_to_variable = np.full(
            (self.edge_count, self.cardinality), uniform
        )

    # -- kernels ----------------------------------------------------------------

    def variable_to_factor_sweep(self) -> np.ndarray:
        """µ_{x→f} for every edge, from the current factor→variable matrix."""
        return self._executor.variable_sweep(self.plan, self.factor_to_variable)

    def factor_to_variable_sweep(self, variable_to_factor: np.ndarray) -> np.ndarray:
        """µ_{f→x} for every edge, from the given variable→factor matrix."""
        fresh = np.empty_like(variable_to_factor)
        self._executor.factor_sweep(
            self.plan, self._kernels, variable_to_factor, fresh
        )
        return fresh

    def draw_send_mask(self, rng: random.Random, send_probability: float) -> np.ndarray:
        """One vectorized Bernoulli mask over all edges.

        The underlying uniforms are drawn from ``rng`` in edge order, so a
        loop engine consuming the same ``random.Random`` stream edge by edge
        makes identical keep/send decisions.
        """
        uniforms = np.fromiter(
            (rng.random() for _ in range(self.edge_count)),
            dtype=float,
            count=self.edge_count,
        )
        return uniforms < send_probability

    def iterate_once(
        self,
        rng: Optional[random.Random] = None,
        send_probability: float = 1.0,
        damping: float = 0.0,
    ) -> float:
        """One synchronous round; returns the largest message change.

        Mirrors :meth:`repro.factorgraph.sum_product.SumProduct.iterate_once`:
        a Jacobi variable→factor sweep from the previous factor→variable
        messages, then a factor→variable sweep from the fresh messages, with
        optional damping and per-edge message loss.
        """
        old_variable_to_factor = self.variable_to_factor
        old_factor_to_variable = self.factor_to_variable

        new_variable_to_factor = self.variable_to_factor_sweep()
        lossy = send_probability < 1.0
        if lossy:
            if rng is None:
                raise FactorGraphError("message loss requires an rng")
            mask = self.draw_send_mask(rng, send_probability)
            new_variable_to_factor = np.where(
                mask[:, None], new_variable_to_factor, old_variable_to_factor
            )

        new_factor_to_variable = self.factor_to_variable_sweep(new_variable_to_factor)
        if damping > 0.0:
            new_factor_to_variable = normalize_rows(
                damping * old_factor_to_variable
                + (1.0 - damping) * new_factor_to_variable
            )
        if lossy:
            mask = self.draw_send_mask(rng, send_probability)
            new_factor_to_variable = np.where(
                mask[:, None], new_factor_to_variable, old_factor_to_variable
            )

        self.variable_to_factor = new_variable_to_factor
        self.factor_to_variable = new_factor_to_variable
        if self.edge_count == 0:
            return 0.0
        return float(
            max(
                np.abs(new_variable_to_factor - old_variable_to_factor).max(),
                np.abs(new_factor_to_variable - old_factor_to_variable).max(),
            )
        )

    # -- beliefs ----------------------------------------------------------------

    def marginal_matrix(self) -> np.ndarray:
        """Beliefs of all variables as one ``(variables, cardinality)`` matrix.

        Variables without any factor keep the uniform belief, matching the
        loop engine's treatment of isolated variables.
        """
        beliefs = np.full(
            (len(self.variable_names), self.cardinality), 1.0 / self.cardinality
        )
        if self.edge_count:
            products = segment_products(
                self.factor_to_variable[self._order], self._segment_starts
            )
            beliefs[self._segment_variable] = normalize_rows(products)
        return beliefs

    def marginals(self) -> Dict[str, np.ndarray]:
        """Current belief of every variable, keyed by name.

        Each vector is a row slice of :meth:`marginal_matrix`, which is what
        makes per-iteration history snapshots cheap.
        """
        matrix = self.marginal_matrix()
        return {
            name: matrix[index].copy()
            for index, name in enumerate(self.variable_names)
        }

    def marginal(self, variable_name: str) -> np.ndarray:
        """Belief of one variable (raises for names not in the graph)."""
        index = self._variable_index.get(variable_name)
        if index is None:
            raise VariableDomainError(
                f"unknown variable {variable_name!r} in compiled graph "
                f"{self.graph.name!r}"
            )
        return self.marginal_matrix()[index].copy()


def compile_factor_graph(
    graph: FactorGraph, executor: object = None
) -> Optional[CompiledFactorGraph]:
    """Compile ``graph``, or return ``None`` when it is not compilable.

    The only graphs the vectorized backend rejects are those with mixed
    variable cardinalities or *dense* factors of arity beyond
    :data:`~repro.constants.MAX_COMPILED_ARITY`; callers are expected to
    fall back to the loop reference for those.  Count-symmetric
    :class:`~repro.factorgraph.factors.CountFactor` tables (the feedback
    CPTs of long cycles and parallel paths) compile at any arity through
    the count-space kernels.
    """
    try:
        return CompiledFactorGraph(graph, executor=executor)
    except FactorGraphError:
        return None
