"""Generic factor-graph and sum–product machinery.

This subpackage is the probabilistic substrate of the reproduction: binary
mapping-correctness variables, dense table factors, a bipartite factor-graph
container, a loopy sum–product engine (with damping and message-loss
injection) and an exact-inference reference used to quantify the loopy
approximation error.  The :mod:`~repro.factorgraph.plan` module is the
shared plan IR: every sweep engine lowers to one
:class:`~repro.factorgraph.plan.SweepPlan` and runs it through a pluggable
executor.
"""

from .variables import (
    BINARY_DOMAIN,
    CORRECT,
    INCORRECT,
    BinaryVariable,
    DiscreteVariable,
    mapping_variable_name,
)
from .compiled import (
    CompiledFactorGraph,
    CountFactorBatch,
    FactorBatch,
    StackedCountFactorBatch,
    compile_factor_graph,
    normalize_rows,
)
from .plan import (
    BucketPlan,
    Executor,
    NumpyExecutor,
    SweepPlan,
    SweepState,
    ThreadedExecutor,
    compile_sweep_plan,
    get_executor,
    lower_factor_graph,
)
from .factors import (
    CountFactor,
    Factor,
    observation_factor,
    prior_factor,
    uniform_factor,
)
from .graph import FactorGraph
from .messages import MessageStore, message_distance, normalize, unit_message
from .sum_product import SumProduct, SumProductOptions, SumProductResult, run_sum_product
from .exact import exact_joint, exact_marginals, relative_error

__all__ = [
    "BINARY_DOMAIN",
    "CORRECT",
    "INCORRECT",
    "BinaryVariable",
    "DiscreteVariable",
    "mapping_variable_name",
    "CompiledFactorGraph",
    "CountFactorBatch",
    "FactorBatch",
    "StackedCountFactorBatch",
    "compile_factor_graph",
    "normalize_rows",
    "BucketPlan",
    "Executor",
    "NumpyExecutor",
    "SweepPlan",
    "SweepState",
    "ThreadedExecutor",
    "compile_sweep_plan",
    "get_executor",
    "lower_factor_graph",
    "CountFactor",
    "Factor",
    "observation_factor",
    "prior_factor",
    "uniform_factor",
    "FactorGraph",
    "MessageStore",
    "message_distance",
    "normalize",
    "unit_message",
    "SumProduct",
    "SumProductOptions",
    "SumProductResult",
    "run_sum_product",
    "exact_joint",
    "exact_marginals",
    "relative_error",
]
