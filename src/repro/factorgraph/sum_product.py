"""Loopy sum–product (belief propagation) over factor graphs.

This is the centralised reference implementation of the algorithm the paper
embeds into the PDMS (§3.1, §4.3).  It supports:

* synchronous ("flooding") iterations — every edge updates both directions
  each round, matching the paper's notion of an iteration;
* optional damping of factor→variable messages, useful on very loopy graphs;
* random message loss — every directed message is *sent* with probability
  ``send_probability`` and otherwise keeps its previous value, which is how
  the fault-tolerance experiment (Figure 11) models unsynchronised peers and
  lost packets;
* per-iteration marginal history, used to plot convergence (Figure 7).

Two interchangeable backends execute the rounds:

* ``"loops"`` — the edge-by-edge Python reference below, and
* ``"vectorized"`` (the default) — the compiled batched kernels of
  :mod:`repro.factorgraph.compiled`, which run each sweep as a handful of
  stacked ``einsum`` / segment-product operations.

**Equivalence contract:** both backends apply the same Jacobi update
schedule, consume the same random stream for message loss, and therefore
produce the same marginals and iteration counts up to floating-point
rounding; the parity tests pin the agreement to below ``1e-9``.  Graphs the
compiler rejects (mixed variable cardinalities, extreme factor arities) fall
back to the loop reference transparently.

The decentralised, per-peer variant lives in :mod:`repro.core.embedded`; it
produces the same fixed points because it exchanges exactly the same
messages — and routes them through the same compiled kernels — only with a
different ownership of the state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import (
    BACKEND_LOOPS,
    BACKEND_VECTORIZED,
    DEFAULT_BACKEND,
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_SEED,
    DEFAULT_SEND_PROBABILITY,
    DEFAULT_TOLERANCE,
)
from ..exceptions import ConvergenceError, FactorGraphError
from .compiled import CompiledFactorGraph, compile_factor_graph
from .factors import Factor
from .graph import FactorGraph
from .messages import MessageStore, normalize, unit_message
from .variables import CORRECT

__all__ = [
    "SumProductOptions",
    "SumProductResult",
    "SumProduct",
    "run_sum_product",
]


@dataclass(frozen=True)
class SumProductOptions:
    """Tuning knobs for the loopy sum–product run.

    Parameters
    ----------
    max_iterations:
        Hard cap on the number of synchronous rounds.
    tolerance:
        Convergence threshold on the largest message change between rounds.
    damping:
        Convex-combination weight of the *old* message when updating
        (0 = no damping).
    send_probability:
        Probability that any directed message is actually transmitted in a
        round; untransmitted messages keep their previous value.  1.0
        reproduces classic synchronous BP.
    rng:
        Random source used only when ``send_probability < 1``.  Defaults to
        ``random.Random(DEFAULT_SEED)`` (see :mod:`repro.constants`) so runs
        are reproducible unless an explicit source is given.
    record_history:
        When true, marginals of every variable are recorded after each
        iteration (needed by the convergence experiments).
    strict:
        When true, a :class:`ConvergenceError` is raised if the run does not
        converge within ``max_iterations``.
    backend:
        ``"vectorized"`` (default) runs the compiled batched kernels of
        :mod:`repro.factorgraph.compiled`; ``"loops"`` forces the
        edge-by-edge Python reference.  Both produce identical results (see
        the module docstring for the equivalence contract).
    """

    max_iterations: int = DEFAULT_MAX_ITERATIONS
    tolerance: float = DEFAULT_TOLERANCE
    damping: float = DEFAULT_DAMPING
    send_probability: float = DEFAULT_SEND_PROBABILITY
    rng: Optional[random.Random] = None
    record_history: bool = False
    strict: bool = False
    backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise FactorGraphError("max_iterations must be >= 1")
        if not 0.0 <= self.damping < 1.0:
            raise FactorGraphError("damping must be in [0, 1)")
        if not 0.0 < self.send_probability <= 1.0:
            raise FactorGraphError("send_probability must be in (0, 1]")
        if self.tolerance <= 0:
            raise FactorGraphError("tolerance must be positive")
        if self.backend not in (BACKEND_LOOPS, BACKEND_VECTORIZED):
            raise FactorGraphError(
                f"backend must be {BACKEND_LOOPS!r} or {BACKEND_VECTORIZED!r}, "
                f"got {self.backend!r}"
            )


@dataclass
class SumProductResult:
    """Outcome of a sum–product run."""

    marginals: Dict[str, np.ndarray]
    iterations: int
    converged: bool
    final_change: float
    history: List[Dict[str, np.ndarray]] = field(default_factory=list)
    #: Domain of every variable, used to locate the CORRECT state; results
    #: built by :class:`SumProduct` always carry it.
    domains: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def belief(self, variable_name: str) -> np.ndarray:
        """Normalised marginal vector of ``variable_name``."""
        return self.marginals[variable_name]

    def _correct_index(self, variable_name: str) -> int:
        """Index of the CORRECT state in ``variable_name``'s marginal.

        The index is resolved through the variable's recorded domain rather
        than hard-coding 0, and a variable whose domain has no ``correct``
        state raises instead of silently returning an arbitrary component.
        """
        domain = self.domains.get(variable_name)
        if domain is None:
            # Result constructed without domain bookkeeping (e.g. by hand in
            # tests): only the documented binary [P(correct), P(incorrect)]
            # layout is safe to assume.
            if len(self.marginals[variable_name]) == 2:
                return 0
            raise FactorGraphError(
                f"variable {variable_name!r} has no recorded domain and is "
                "not binary; probability_correct is undefined for it"
            )
        if CORRECT not in domain:
            raise FactorGraphError(
                f"variable {variable_name!r} has domain {domain!r} without a "
                f"{CORRECT!r} state; probability_correct is undefined for it"
            )
        return domain.index(CORRECT)

    def probability_correct(self, variable_name: str) -> float:
        """Posterior probability that a correctness variable is correct."""
        return float(
            self.marginals[variable_name][self._correct_index(variable_name)]
        )

    def history_of(self, variable_name: str) -> List[float]:
        """Per-iteration P(correct) trajectory (requires ``record_history``)."""
        index = self._correct_index(variable_name)
        return [float(snapshot[variable_name][index]) for snapshot in self.history]


class SumProduct:
    """Runs loopy belief propagation over a :class:`FactorGraph`.

    :meth:`run` dispatches to the backend selected in the options; the
    edge-by-edge state below (:attr:`messages`, :meth:`iterate_once`,
    :meth:`marginals`) always belongs to the loop reference and is kept for
    introspection and as the fallback implementation.
    """

    def __init__(self, graph: FactorGraph, options: Optional[SumProductOptions] = None) -> None:
        graph.validate()
        self.graph = graph
        self.options = options or SumProductOptions()
        self._rng = self.options.rng or random.Random(DEFAULT_SEED)
        self._edges: List[Tuple[Factor, str]] = [
            (factor, variable.name)
            for factor in graph.factors
            for variable in factor.variables
        ]
        self.messages = self._initial_messages()
        self.compiled: Optional[CompiledFactorGraph] = None
        if self.options.backend == BACKEND_VECTORIZED:
            # ``None`` means the graph is not compilable (mixed cardinalities
            # or extreme arities); run() then falls back to the loops.
            self.compiled = compile_factor_graph(graph)

    def _initial_messages(self) -> MessageStore:
        return MessageStore.initialized(
            (factor.name, variable.name, variable.cardinality)
            for factor in self.graph.factors
            for variable in factor.variables
        )

    # -- message updates -------------------------------------------------------

    def _variable_to_factor(self, variable_name: str, factor: Factor) -> np.ndarray:
        """µ_{x→f}(x) = Π_{h ∈ n(x)\\{f}} µ_{h→x}(x)."""
        variable = self.graph.variable(variable_name)
        message = np.ones(variable.cardinality)
        for neighbor in self.graph.factors_of(variable_name):
            if neighbor.name == factor.name:
                continue
            message = message * self.messages.factor_to_variable[(neighbor.name, variable_name)]
        return normalize(message)

    def _factor_to_variable(self, factor: Factor, variable_name: str) -> np.ndarray:
        """µ_{f→x}(x) = Σ_{~x} f(X) Π_{y ∈ n(f)\\{x}} µ_{y→f}(y)."""
        incoming = {
            variable.name: self.messages.variable_to_factor[(factor.name, variable.name)]
            for variable in factor.variables
            if variable.name != variable_name
        }
        return normalize(factor.message_to(variable_name, incoming))

    def _should_send(self) -> bool:
        if self.options.send_probability >= 1.0:
            return True
        return self._rng.random() < self.options.send_probability

    def iterate_once(self) -> float:
        """Run one synchronous round; return the largest message change."""
        previous = self.messages.copy()

        # Variable -> factor sweep (computed from the *previous* round's
        # factor->variable messages, i.e. a Jacobi-style update).
        new_v2f: Dict[Tuple[str, str], np.ndarray] = {}
        for factor, variable_name in self._edges:
            key = (factor.name, variable_name)
            if self._should_send():
                new_v2f[key] = self._variable_to_factor(variable_name, factor)
            else:
                new_v2f[key] = previous.variable_to_factor[key]
        self.messages.variable_to_factor = new_v2f

        # Factor -> variable sweep.
        damping = self.options.damping
        new_f2v: Dict[Tuple[str, str], np.ndarray] = {}
        for factor, variable_name in self._edges:
            key = (factor.name, variable_name)
            if self._should_send():
                fresh = self._factor_to_variable(factor, variable_name)
                if damping > 0.0:
                    fresh = normalize(
                        damping * previous.factor_to_variable[key] + (1.0 - damping) * fresh
                    )
                new_f2v[key] = fresh
            else:
                new_f2v[key] = previous.factor_to_variable[key]
        self.messages.factor_to_variable = new_f2v

        return self.messages.max_change_from(previous)

    # -- beliefs ----------------------------------------------------------------

    def marginals(self) -> Dict[str, np.ndarray]:
        """Current belief of every variable (product of incoming messages)."""
        beliefs: Dict[str, np.ndarray] = {}
        for variable in self.graph.variables:
            belief = np.ones(variable.cardinality)
            for factor in self.graph.factors_of(variable.name):
                belief = belief * self.messages.factor_to_variable[(factor.name, variable.name)]
            if self.graph.degree(variable.name) == 0:
                belief = unit_message(variable.cardinality)
            beliefs[variable.name] = normalize(belief)
        return beliefs

    # -- main loop ---------------------------------------------------------------

    def _domains(self) -> Dict[str, Tuple[str, ...]]:
        return {variable.name: variable.domain for variable in self.graph.variables}

    def run(self) -> SumProductResult:
        """Iterate to convergence (or ``max_iterations``) and return beliefs.

        Under message loss a single quiet round is not proof of convergence
        (it may simply mean the informative messages were dropped), so the
        change must stay below tolerance for a number of consecutive rounds
        inversely proportional to the send probability.

        Every call starts from fresh unit messages on both backends (the rng
        stream, by contrast, is shared across calls), so repeated runs of one
        engine behave identically regardless of the backend.
        """
        if self.compiled is not None:
            self.compiled.reset()
            options = self.options

            def step() -> float:
                return self.compiled.iterate_once(
                    rng=self._rng,
                    send_probability=options.send_probability,
                    damping=options.damping,
                )

            snapshot = self.compiled.marginals
        else:
            self.messages = self._initial_messages()
            step = self.iterate_once
            snapshot = self.marginals

        history: List[Dict[str, np.ndarray]] = []
        converged = False
        change = float("inf")
        iterations = 0
        if self.options.send_probability >= 1.0:
            required_quiet_rounds = 1
        else:
            required_quiet_rounds = max(2, int(np.ceil(2.0 / self.options.send_probability)))
        quiet_rounds = 0
        for iterations in range(1, self.options.max_iterations + 1):
            change = step()
            if self.options.record_history:
                history.append(snapshot())
            quiet_rounds = quiet_rounds + 1 if change < self.options.tolerance else 0
            if quiet_rounds >= required_quiet_rounds:
                converged = True
                break
        if not converged and self.options.strict:
            raise ConvergenceError(
                f"sum-product did not converge within "
                f"{self.options.max_iterations} iterations (last change {change:.3g})"
            )
        return SumProductResult(
            marginals=snapshot(),
            iterations=iterations,
            converged=converged,
            final_change=change,
            history=history,
            domains=self._domains(),
        )


def run_sum_product(
    graph: FactorGraph,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
    damping: float = DEFAULT_DAMPING,
    send_probability: float = DEFAULT_SEND_PROBABILITY,
    seed: Optional[int] = None,
    record_history: bool = False,
    strict: bool = False,
    backend: str = DEFAULT_BACKEND,
) -> SumProductResult:
    """Convenience wrapper: build a :class:`SumProduct` engine and run it."""
    options = SumProductOptions(
        max_iterations=max_iterations,
        tolerance=tolerance,
        damping=damping,
        send_probability=send_probability,
        rng=random.Random(seed) if seed is not None else None,
        record_history=record_history,
        strict=strict,
        backend=backend,
    )
    return SumProduct(graph, options).run()
