"""Dense table factors over discrete variables.

A factor is a non-negative function over the joint domain of a small set of
discrete variables.  PDMS factor graphs contain two kinds of factors
(paper §3.2–3.3):

* *prior factors* — unary factors holding the peer's prior belief that a
  mapping is correct, and
* *feedback factors* — factors connecting all mapping variables of a cycle
  or a pair of parallel paths, parameterised by the observed feedback and
  the error-compensation probability Δ.

The feedback CPT builders live in :mod:`repro.core.feedback`; this module
only provides the generic table machinery.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from ..exceptions import FactorShapeError, VariableDomainError
from .variables import CORRECT, INCORRECT, DiscreteVariable

__all__ = ["Factor", "prior_factor", "uniform_factor", "observation_factor"]


class Factor:
    """A dense, non-negative table over an ordered tuple of variables.

    Parameters
    ----------
    name:
        Unique factor name inside a graph.
    variables:
        Ordered variables the factor spans; the table's axes follow this
        order.
    table:
        ``numpy`` array of shape ``tuple(v.cardinality for v in variables)``.
        Values must be non-negative and not all zero.
    """

    def __init__(
        self,
        name: str,
        variables: Sequence[DiscreteVariable],
        table: np.ndarray,
    ) -> None:
        if not name:
            raise FactorShapeError("factor name must be non-empty")
        variables = tuple(variables)
        if len({v.name for v in variables}) != len(variables):
            raise FactorShapeError(
                f"factor {name!r} references a variable twice: "
                f"{[v.name for v in variables]}"
            )
        table = np.asarray(table, dtype=float)
        expected_shape = tuple(v.cardinality for v in variables)
        if table.shape != expected_shape:
            raise FactorShapeError(
                f"factor {name!r}: table shape {table.shape} does not match "
                f"variable cardinalities {expected_shape}"
            )
        if np.any(table < 0):
            raise FactorShapeError(f"factor {name!r} has negative entries")
        if not np.any(table > 0):
            raise FactorShapeError(f"factor {name!r} is identically zero")
        self.name = name
        self.variables: Tuple[DiscreteVariable, ...] = variables
        self.table = table
        self._variable_names: Tuple[str, ...] = tuple(v.name for v in variables)
        self._variable_name_set = frozenset(self._variable_names)

    # -- introspection ------------------------------------------------------

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Names of the variables the factor spans, in axis order."""
        return self._variable_names

    @property
    def arity(self) -> int:
        """Number of variables the factor spans."""
        return len(self.variables)

    def axis_of(self, variable_name: str) -> int:
        """Return the table axis corresponding to ``variable_name``."""
        for axis, variable in enumerate(self.variables):
            if variable.name == variable_name:
                return axis
        raise VariableDomainError(
            f"factor {self.name!r} does not span variable {variable_name!r}"
        )

    def value(self, assignment: Mapping[str, str]) -> float:
        """Evaluate the factor at a joint assignment given by state labels."""
        index = []
        for variable in self.variables:
            if variable.name not in assignment:
                raise VariableDomainError(
                    f"assignment is missing variable {variable.name!r} "
                    f"required by factor {self.name!r}"
                )
            index.append(variable.index_of(assignment[variable.name]))
        return float(self.table[tuple(index)])

    def assignments(self) -> Iterable[Dict[str, str]]:
        """Iterate over every joint assignment of the factor's variables."""
        domains = [variable.domain for variable in self.variables]
        for states in itertools.product(*domains):
            yield {
                variable.name: state
                for variable, state in zip(self.variables, states)
            }

    # -- message-passing primitives ----------------------------------------

    def message_to(
        self, variable_name: str, incoming: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Compute the sum–product message from this factor to a variable.

        ``incoming`` maps each *other* neighbouring variable name to the
        variable→factor message (a vector over that variable's domain).
        Missing entries are treated as unit (uninformative) messages, which
        is exactly the initialisation the paper prescribes for the embedded
        decentralised schedule (§4.3).  Keys naming variables the factor does
        *not* span raise :class:`VariableDomainError` — a silently ignored
        entry is almost always a misspelled mapping name.
        """
        target_axis = self.axis_of(variable_name)
        unknown = incoming.keys() - self._variable_name_set
        if unknown:
            raise VariableDomainError(
                f"factor {self.name!r} received messages for unknown "
                f"variables {sorted(unknown)!r}; it spans {self.variable_names!r}"
            )
        result = self.table.copy()
        for axis, variable in enumerate(self.variables):
            if axis == target_axis:
                continue
            message = incoming.get(variable.name)
            if message is None:
                continue
            message = np.asarray(message, dtype=float)
            if message.shape != (variable.cardinality,):
                raise FactorShapeError(
                    f"message for variable {variable.name!r} has shape "
                    f"{message.shape}, expected ({variable.cardinality},)"
                )
            shape = [1] * result.ndim
            shape[axis] = variable.cardinality
            result = result * message.reshape(shape)
        axes_to_sum = tuple(
            axis for axis in range(result.ndim) if axis != target_axis
        )
        if axes_to_sum:
            result = result.sum(axis=axes_to_sum)
        return np.asarray(result, dtype=float)

    # -- misc ----------------------------------------------------------------

    def normalized(self) -> "Factor":
        """Return a copy whose table sums to one (useful for display)."""
        return Factor(self.name, self.variables, self.table / self.table.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Factor({self.name!r}, variables={self.variable_names})"


def prior_factor(
    variable: DiscreteVariable, probability_correct: float, name: str | None = None
) -> Factor:
    """Build the unary prior factor for a mapping-correctness variable.

    ``probability_correct`` is the peer's prior belief that the mapping is
    correct; the paper seeds it at 0.5 when nothing is known (maximum
    entropy, §4.4) and lets domain experts pin it at 1.0 for validated
    mappings.
    """
    if not 0.0 <= probability_correct <= 1.0:
        raise FactorShapeError(
            f"prior probability must be in [0, 1], got {probability_correct}"
        )
    if variable.domain != (CORRECT, INCORRECT):
        raise FactorShapeError(
            f"prior_factor expects a binary correctness variable, got domain "
            f"{variable.domain!r}"
        )
    table = np.array([probability_correct, 1.0 - probability_correct])
    # A hard 0/1 prior would annihilate all other evidence and can produce
    # all-zero products in degenerate graphs; nudge it by a tiny epsilon.
    epsilon = 1e-9
    table = np.clip(table, epsilon, 1.0)
    return Factor(name or f"prior({variable.name})", (variable,), table)


def uniform_factor(variable: DiscreteVariable, name: str | None = None) -> Factor:
    """Build a unary factor that carries no information about ``variable``."""
    table = np.ones(variable.cardinality)
    return Factor(name or f"uniform({variable.name})", (variable,), table)


def observation_factor(
    variable: DiscreteVariable, state: str, name: str | None = None, strength: float = 1.0
) -> Factor:
    """Build a unary factor (softly) clamping ``variable`` to ``state``.

    ``strength`` is the probability mass put on the observed state; 1.0
    clamps hard (up to a numerical epsilon).
    """
    if not 0.0 < strength <= 1.0:
        raise FactorShapeError(f"strength must be in (0, 1], got {strength}")
    table = np.full(variable.cardinality, (1.0 - strength) / max(variable.cardinality - 1, 1))
    table[variable.index_of(state)] = strength
    table = np.clip(table, 1e-9, 1.0)
    return Factor(name or f"obs({variable.name}={state})", (variable,), table)
