"""Dense table factors over discrete variables.

A factor is a non-negative function over the joint domain of a small set of
discrete variables.  PDMS factor graphs contain two kinds of factors
(paper §3.2–3.3):

* *prior factors* — unary factors holding the peer's prior belief that a
  mapping is correct, and
* *feedback factors* — factors connecting all mapping variables of a cycle
  or a pair of parallel paths, parameterised by the observed feedback and
  the error-compensation probability Δ.

The feedback CPT builders live in :mod:`repro.core.feedback`; this module
only provides the generic table machinery.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from ..constants import MAX_COMPILED_ARITY
from ..exceptions import FactorShapeError, VariableDomainError
from .variables import CORRECT, INCORRECT, DiscreteVariable

__all__ = [
    "Factor",
    "CountFactor",
    "prior_factor",
    "uniform_factor",
    "observation_factor",
]


class Factor:
    """A dense, non-negative table over an ordered tuple of variables.

    Parameters
    ----------
    name:
        Unique factor name inside a graph.
    variables:
        Ordered variables the factor spans; the table's axes follow this
        order.
    table:
        ``numpy`` array of shape ``tuple(v.cardinality for v in variables)``.
        Values must be non-negative and not all zero.
    """

    def __init__(
        self,
        name: str,
        variables: Sequence[DiscreteVariable],
        table: np.ndarray,
    ) -> None:
        if not name:
            raise FactorShapeError("factor name must be non-empty")
        variables = tuple(variables)
        if len({v.name for v in variables}) != len(variables):
            raise FactorShapeError(
                f"factor {name!r} references a variable twice: "
                f"{[v.name for v in variables]}"
            )
        table = np.asarray(table, dtype=float)
        expected_shape = tuple(v.cardinality for v in variables)
        if table.shape != expected_shape:
            raise FactorShapeError(
                f"factor {name!r}: table shape {table.shape} does not match "
                f"variable cardinalities {expected_shape}"
            )
        if np.any(table < 0):
            raise FactorShapeError(f"factor {name!r} has negative entries")
        if not np.any(table > 0):
            raise FactorShapeError(f"factor {name!r} is identically zero")
        self.name = name
        self.variables: Tuple[DiscreteVariable, ...] = variables
        self.table = table
        self._variable_names: Tuple[str, ...] = tuple(v.name for v in variables)
        self._variable_name_set = frozenset(self._variable_names)

    # -- introspection ------------------------------------------------------

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Names of the variables the factor spans, in axis order."""
        return self._variable_names

    @property
    def arity(self) -> int:
        """Number of variables the factor spans."""
        return len(self.variables)

    def axis_of(self, variable_name: str) -> int:
        """Return the table axis corresponding to ``variable_name``."""
        for axis, variable in enumerate(self.variables):
            if variable.name == variable_name:
                return axis
        raise VariableDomainError(
            f"factor {self.name!r} does not span variable {variable_name!r}"
        )

    def value(self, assignment: Mapping[str, str]) -> float:
        """Evaluate the factor at a joint assignment given by state labels."""
        index = []
        for variable in self.variables:
            if variable.name not in assignment:
                raise VariableDomainError(
                    f"assignment is missing variable {variable.name!r} "
                    f"required by factor {self.name!r}"
                )
            index.append(variable.index_of(assignment[variable.name]))
        return float(self.table[tuple(index)])

    def assignments(self) -> Iterable[Dict[str, str]]:
        """Iterate over every joint assignment of the factor's variables."""
        domains = [variable.domain for variable in self.variables]
        for states in itertools.product(*domains):
            yield {
                variable.name: state
                for variable, state in zip(self.variables, states)
            }

    # -- message-passing primitives ----------------------------------------

    def message_to(
        self, variable_name: str, incoming: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Compute the sum–product message from this factor to a variable.

        ``incoming`` maps each *other* neighbouring variable name to the
        variable→factor message (a vector over that variable's domain).
        Missing entries are treated as unit (uninformative) messages, which
        is exactly the initialisation the paper prescribes for the embedded
        decentralised schedule (§4.3).  Keys naming variables the factor does
        *not* span raise :class:`VariableDomainError` — a silently ignored
        entry is almost always a misspelled mapping name.
        """
        target_axis = self.axis_of(variable_name)
        unknown = incoming.keys() - self._variable_name_set
        if unknown:
            raise VariableDomainError(
                f"factor {self.name!r} received messages for unknown "
                f"variables {sorted(unknown)!r}; it spans {self.variable_names!r}"
            )
        result = self.table.copy()
        for axis, variable in enumerate(self.variables):
            if axis == target_axis:
                continue
            message = incoming.get(variable.name)
            if message is None:
                continue
            message = np.asarray(message, dtype=float)
            if message.shape != (variable.cardinality,):
                raise FactorShapeError(
                    f"message for variable {variable.name!r} has shape "
                    f"{message.shape}, expected ({variable.cardinality},)"
                )
            shape = [1] * result.ndim
            shape[axis] = variable.cardinality
            result = result * message.reshape(shape)
        axes_to_sum = tuple(
            axis for axis in range(result.ndim) if axis != target_axis
        )
        if axes_to_sum:
            result = result.sum(axis=axes_to_sum)
        return np.asarray(result, dtype=float)

    # -- misc ----------------------------------------------------------------

    def normalized(self) -> "Factor":
        """Return a copy whose table sums to one (useful for display)."""
        return Factor(self.name, self.variables, self.table / self.table.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Factor({self.name!r}, variables={self.variable_names})"


class CountFactor(Factor):
    """A count-symmetric factor over binary variables, stored in count space.

    The paper's feedback CPTs depend on the joint assignment only through the
    *number* of variables in the ``incorrect`` state: ``P(f+ | k incorrect)``
    is 1 for ``k = 0``, 0 for ``k = 1`` and Δ for every ``k ≥ 2``.  Storing
    the dense ``(2,)**arity`` table therefore wastes exponential memory on
    ``arity + 1`` distinct values — and makes factors beyond
    :data:`~repro.constants.MAX_COMPILED_ARITY` (and long before that,
    beyond available memory) impossible to build at all.

    A :class:`CountFactor` stores only the count-value vector
    ``count_values[k] = f(k incorrect)`` (O(arity) memory) and evaluates the
    sum–product message in count space: with binary incoming messages
    ``m_s = (m_s[0], m_s[1])``, the coefficient of ``x**k`` in
    ``∏_{s≠target}(m_s[0] + m_s[1]·x)`` is exactly the total mass of
    assignments with ``k`` incorrect non-target variables, so

    ``µ(x_t = v) = Σ_k f(k + v) · C_k``.

    Because the tail of the feedback CPTs is constant (``f(k) = f(2)`` for
    all ``k ≥ 2``), only the truncated coefficients ``C_0``, ``C_1`` and the
    aggregated tail mass ``Σ_{k≥2} C_k`` are needed — all computable with
    prefix/suffix products in O(arity) time per message and with no
    divisions (zero-safe by construction).  The constructor enforces the
    constant-tail property; fully general count tables would need the full
    prefix/suffix coefficient convolutions and are not required by the
    paper's model.

    The dense :attr:`table` remains available as a lazily materialised view
    for arities up to :data:`~repro.constants.MAX_COMPILED_ARITY` (parity
    tests, exact inference); beyond that it raises instead of allocating
    ``2**arity`` floats.
    """

    def __init__(
        self,
        name: str,
        variables: Sequence[DiscreteVariable],
        count_values: np.ndarray,
    ) -> None:
        if not name:
            raise FactorShapeError("factor name must be non-empty")
        variables = tuple(variables)
        if not variables:
            raise FactorShapeError(f"count factor {name!r} needs at least one variable")
        if len({v.name for v in variables}) != len(variables):
            raise FactorShapeError(
                f"factor {name!r} references a variable twice: "
                f"{[v.name for v in variables]}"
            )
        for variable in variables:
            if variable.cardinality != 2:
                raise FactorShapeError(
                    f"count factor {name!r} requires binary variables, but "
                    f"{variable.name!r} has cardinality {variable.cardinality}"
                )
        count_values = np.asarray(count_values, dtype=float)
        if count_values.shape != (len(variables) + 1,):
            raise FactorShapeError(
                f"count factor {name!r}: count_values shape "
                f"{count_values.shape} does not match arity {len(variables)} "
                f"(expected ({len(variables) + 1},))"
            )
        if np.any(count_values < 0):
            raise FactorShapeError(f"factor {name!r} has negative entries")
        if not np.any(count_values > 0):
            raise FactorShapeError(f"factor {name!r} is identically zero")
        # The tail must be *bitwise* constant for the O(arity) kernels.
        if count_values.size > 3 and np.ptp(count_values[2:]) != 0.0:  # lint: disable=numeric-float-equality
            raise FactorShapeError(
                f"count factor {name!r} needs a constant tail "
                f"(f(k) identical for all k >= 2), got {count_values[2:]!r}; "
                "general count tables require the full coefficient "
                "convolution and are not supported"
            )
        self.name = name
        self.variables = variables
        self.count_values = count_values
        self._variable_names = tuple(v.name for v in variables)
        self._variable_name_set = frozenset(self._variable_names)
        self._dense_table: np.ndarray | None = None

    # -- dense-view compatibility -------------------------------------------

    @property
    def table(self) -> np.ndarray:  # type: ignore[override]
        """Dense ``(2,)**arity`` view, materialised lazily.

        Only available for arities up to
        :data:`~repro.constants.MAX_COMPILED_ARITY` — the whole point of the
        count-space representation is that longer structures never build the
        exponential table.
        """
        if self._dense_table is None:
            if self.arity > MAX_COMPILED_ARITY:
                raise FactorShapeError(
                    f"count factor {self.name!r} of arity {self.arity} does "
                    f"not materialise its dense table (2**{self.arity} "
                    f"entries); use the count-space kernels instead"
                )
            # One uint8 count tensor via broadcast sums — not the
            # arity * 2**arity int64 blow-up of np.indices.
            counts = np.zeros((2,) * self.arity, dtype=np.uint8)
            for axis in range(self.arity):
                shape = [1] * self.arity
                shape[axis] = 2
                counts += np.arange(2, dtype=np.uint8).reshape(shape)
            self._dense_table = self.count_values[counts]
        return self._dense_table

    def value(self, assignment: Mapping[str, str]) -> float:
        """Evaluate at a joint assignment — O(arity), no dense table."""
        incorrect = 0
        for variable in self.variables:
            if variable.name not in assignment:
                raise VariableDomainError(
                    f"assignment is missing variable {variable.name!r} "
                    f"required by factor {self.name!r}"
                )
            incorrect += variable.index_of(assignment[variable.name])
        return float(self.count_values[incorrect])

    def normalized(self) -> "CountFactor":
        """Copy whose (virtual) dense table sums to one."""
        total = sum(
            math.comb(self.arity, k) * value
            for k, value in enumerate(self.count_values)
        )
        return CountFactor(self.name, self.variables, self.count_values / total)

    # -- message-passing primitives -----------------------------------------

    def message_to(
        self, variable_name: str, incoming: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Count-space sum–product message (the loop-engine reference path).

        Semantically identical to :meth:`Factor.message_to` on the dense
        view — missing entries are unit messages, unknown keys raise — but
        evaluated through the truncated coefficients in O(arity) time.
        """
        target_axis = self.axis_of(variable_name)
        unknown = incoming.keys() - self._variable_name_set
        if unknown:
            raise VariableDomainError(
                f"factor {self.name!r} received messages for unknown "
                f"variables {sorted(unknown)!r}; it spans {self.variable_names!r}"
            )
        # Truncated coefficients of ∏_{s≠target}(m_s[0] + m_s[1]·x): the
        # degree-0/1 coefficients exactly, plus the aggregated mass of every
        # higher degree.  All updates are sums of products of non-negative
        # terms — no subtractions, no divisions — so exact zeros in the
        # messages are handled for free.
        coeff0, coeff1, tail_mass = 1.0, 0.0, 0.0
        for axis, variable in enumerate(self.variables):
            if axis == target_axis:
                continue
            message = incoming.get(variable.name)
            if message is None:
                low, high = 1.0, 1.0
            else:
                message = np.asarray(message, dtype=float)
                if message.shape != (2,):
                    raise FactorShapeError(
                        f"message for variable {variable.name!r} has shape "
                        f"{message.shape}, expected (2,)"
                    )
                low, high = float(message[0]), float(message[1])
            tail_mass = tail_mass * (low + high) + high * coeff1
            coeff1 = coeff1 * low + coeff0 * high
            coeff0 = coeff0 * low
        values = self.count_values
        tail = float(values[2]) if values.size > 2 else 0.0
        return np.array(
            [
                values[0] * coeff0 + values[1] * coeff1 + tail * tail_mass,
                values[1] * coeff0 + tail * (coeff1 + tail_mass),
            ]
        )


def prior_factor(
    variable: DiscreteVariable, probability_correct: float, name: str | None = None
) -> Factor:
    """Build the unary prior factor for a mapping-correctness variable.

    ``probability_correct`` is the peer's prior belief that the mapping is
    correct; the paper seeds it at 0.5 when nothing is known (maximum
    entropy, §4.4) and lets domain experts pin it at 1.0 for validated
    mappings.
    """
    if not 0.0 <= probability_correct <= 1.0:
        raise FactorShapeError(
            f"prior probability must be in [0, 1], got {probability_correct}"
        )
    if variable.domain != (CORRECT, INCORRECT):
        raise FactorShapeError(
            f"prior_factor expects a binary correctness variable, got domain "
            f"{variable.domain!r}"
        )
    table = np.array([probability_correct, 1.0 - probability_correct])
    # A hard 0/1 prior would annihilate all other evidence and can produce
    # all-zero products in degenerate graphs; nudge it by a tiny epsilon.
    epsilon = 1e-9
    table = np.clip(table, epsilon, 1.0)
    return Factor(name or f"prior({variable.name})", (variable,), table)


def uniform_factor(variable: DiscreteVariable, name: str | None = None) -> Factor:
    """Build a unary factor that carries no information about ``variable``."""
    table = np.ones(variable.cardinality)
    return Factor(name or f"uniform({variable.name})", (variable,), table)


def observation_factor(
    variable: DiscreteVariable, state: str, name: str | None = None, strength: float = 1.0
) -> Factor:
    """Build a unary factor (softly) clamping ``variable`` to ``state``.

    ``strength`` is the probability mass put on the observed state; 1.0
    clamps hard (up to a numerical epsilon).
    """
    if not 0.0 < strength <= 1.0:
        raise FactorShapeError(f"strength must be in (0, 1], got {strength}")
    table = np.full(variable.cardinality, (1.0 - strength) / max(variable.cardinality - 1, 1))
    table[variable.index_of(state)] = strength
    table = np.clip(table, 1e-9, 1.0)
    return Factor(name or f"obs({variable.name}={state})", (variable,), table)
