"""Random variables used in PDMS factor graphs.

The paper models the per-attribute correctness of every schema mapping as a
binary random variable with states ``correct`` and ``incorrect``.  The
factor-graph engine is written against a small, generic
:class:`DiscreteVariable` abstraction so that it can also host feedback
variables or any other discrete quantity, but the binary case is the one the
rest of the library uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..exceptions import VariableDomainError

__all__ = [
    "CORRECT",
    "INCORRECT",
    "BINARY_DOMAIN",
    "DiscreteVariable",
    "BinaryVariable",
    "mapping_variable_name",
]

#: Canonical state labels for mapping-correctness variables.
CORRECT = "correct"
INCORRECT = "incorrect"

#: Domain of a mapping-correctness variable.  Index 0 is ``correct`` so that
#: marginal vectors read naturally as ``[P(correct), P(incorrect)]``.
BINARY_DOMAIN: Tuple[str, str] = (CORRECT, INCORRECT)


@dataclass(frozen=True)
class DiscreteVariable:
    """A named discrete random variable with an explicit domain.

    Parameters
    ----------
    name:
        Unique name of the variable inside a factor graph.
    domain:
        Ordered tuple of state labels.  The ordering defines the axis
        layout of every factor table that spans this variable.
    """

    name: str
    domain: Tuple[str, ...] = field(default=BINARY_DOMAIN)

    def __post_init__(self) -> None:
        if not self.name:
            raise VariableDomainError("variable name must be non-empty")
        if len(self.domain) < 2:
            raise VariableDomainError(
                f"variable {self.name!r} needs at least two states, "
                f"got {self.domain!r}"
            )
        if len(set(self.domain)) != len(self.domain):
            raise VariableDomainError(
                f"variable {self.name!r} has duplicate states: {self.domain!r}"
            )

    @property
    def cardinality(self) -> int:
        """Number of states in the variable's domain."""
        return len(self.domain)

    def index_of(self, state: str) -> int:
        """Return the axis index of ``state`` in the variable's domain."""
        try:
            return self.domain.index(state)
        except ValueError:
            raise VariableDomainError(
                f"state {state!r} is not in the domain of {self.name!r}: "
                f"{self.domain!r}"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class BinaryVariable(DiscreteVariable):
    """A mapping-correctness variable with the canonical binary domain."""

    def __init__(self, name: str) -> None:
        super().__init__(name=name, domain=BINARY_DOMAIN)


def mapping_variable_name(source: str, target: str, attribute: str | None = None) -> str:
    """Build the canonical variable name for a mapping's correctness.

    The paper works at *fine granularity* (one correctness variable per
    attribute per mapping, §4.1); passing ``attribute`` produces that name.
    Omitting it produces the coarse-granularity name for the whole mapping.

    Examples
    --------
    >>> mapping_variable_name("p2", "p3")
    'm[p2->p3]'
    >>> mapping_variable_name("p2", "p3", "Creator")
    'm[p2->p3]@Creator'
    """
    base = f"m[{source}->{target}]"
    if attribute is None:
        return base
    return f"{base}@{attribute}"


def validate_states(variables: Sequence[DiscreteVariable], states: Sequence[str]) -> None:
    """Validate that ``states`` is a legal joint assignment of ``variables``."""
    if len(variables) != len(states):
        raise VariableDomainError(
            f"assignment length {len(states)} does not match "
            f"number of variables {len(variables)}"
        )
    for variable, state in zip(variables, states):
        variable.index_of(state)
