"""Message algebra for the sum–product algorithm.

Messages are non-negative vectors over a variable's domain.  We keep them
normalised (summing to one) throughout: normalisation does not change the
marginals the algorithm computes and keeps long loopy runs numerically
stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from ..exceptions import FactorGraphError

__all__ = [
    "normalize",
    "unit_message",
    "message_distance",
    "MessageStore",
    "EdgeKey",
]

#: An edge in the bipartite factor graph, identified by (factor, variable).
EdgeKey = Tuple[str, str]


def normalize(vector: np.ndarray) -> np.ndarray:
    """Normalise a non-negative vector to sum to one.

    An all-zero vector (which can appear transiently when hard 0/1 factors
    multiply out) is replaced by the uniform distribution rather than
    propagating NaNs.
    """
    vector = np.asarray(vector, dtype=float)
    if np.any(vector < 0):
        raise FactorGraphError(f"message has negative entries: {vector}")
    total = vector.sum()
    if total <= 0.0 or not np.isfinite(total):
        return np.full(vector.shape, 1.0 / vector.size)
    return vector / total


def unit_message(cardinality: int) -> np.ndarray:
    """The uninformative message: uniform over ``cardinality`` states.

    The paper's embedded schedule assumes every peer has virtually received
    a unit message from every other peer before the first round (§4.3).
    """
    return np.full(cardinality, 1.0 / cardinality)


def message_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum absolute difference between two normalised messages."""
    return float(np.max(np.abs(np.asarray(a, float) - np.asarray(b, float))))


@dataclass
class MessageStore:
    """Holds the two directed messages of every factor-graph edge.

    ``factor_to_variable[(f, v)]`` and ``variable_to_factor[(f, v)]`` are
    both indexed by the same *(factor name, variable name)* edge key.
    """

    factor_to_variable: Dict[EdgeKey, np.ndarray]
    variable_to_factor: Dict[EdgeKey, np.ndarray]

    @classmethod
    def initialized(cls, edges: Iterable[Tuple[str, str, int]]) -> "MessageStore":
        """Create a store with unit messages on every edge.

        ``edges`` yields ``(factor_name, variable_name, cardinality)``.
        """
        f2v: Dict[EdgeKey, np.ndarray] = {}
        v2f: Dict[EdgeKey, np.ndarray] = {}
        for factor_name, variable_name, cardinality in edges:
            key = (factor_name, variable_name)
            f2v[key] = unit_message(cardinality)
            v2f[key] = unit_message(cardinality)
        return cls(factor_to_variable=f2v, variable_to_factor=v2f)

    def copy(self) -> "MessageStore":
        """Deep copy of the store (used for convergence checks)."""
        return MessageStore(
            factor_to_variable={k: v.copy() for k, v in self.factor_to_variable.items()},
            variable_to_factor={k: v.copy() for k, v in self.variable_to_factor.items()},
        )

    def max_change_from(self, other: "MessageStore") -> float:
        """Largest per-entry difference against another store (same edges)."""
        worst = 0.0
        for key, value in self.factor_to_variable.items():
            worst = max(worst, message_distance(value, other.factor_to_variable[key]))
        for key, value in self.variable_to_factor.items():
            worst = max(worst, message_distance(value, other.variable_to_factor[key]))
        return worst
