"""Factor-graph container.

A factor graph is a bipartite graph linking variables to the factors that
span them (Kschischang et al., 2001).  This module provides the container
used both for the *global* PDMS factor graph (paper §3.2–3.3) and for the
*local* per-peer fragments (§4.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..exceptions import FactorGraphError
from .factors import Factor
from .variables import DiscreteVariable

__all__ = ["FactorGraph"]


class FactorGraph:
    """A mutable bipartite graph of discrete variables and table factors.

    Variables and factors are addressed by name.  Factors may only be added
    after all the variables they span are present, which keeps the graph
    consistent by construction.
    """

    def __init__(self, name: str = "factor-graph") -> None:
        self.name = name
        self._variables: Dict[str, DiscreteVariable] = {}
        self._factors: Dict[str, Factor] = {}
        # variable name -> set of factor names, factor name -> tuple of
        # variable names.  Kept redundantly for O(1) neighbourhood queries.
        self._variable_neighbors: Dict[str, List[str]] = {}

    # -- construction --------------------------------------------------------

    def add_variable(self, variable: DiscreteVariable) -> DiscreteVariable:
        """Add ``variable`` to the graph (idempotent for identical domains)."""
        existing = self._variables.get(variable.name)
        if existing is not None:
            if existing.domain != variable.domain:
                raise FactorGraphError(
                    f"variable {variable.name!r} already exists with a "
                    f"different domain"
                )
            return existing
        self._variables[variable.name] = variable
        self._variable_neighbors[variable.name] = []
        return variable

    def add_factor(self, factor: Factor) -> Factor:
        """Add ``factor``; all its variables must already be in the graph."""
        if factor.name in self._factors:
            raise FactorGraphError(f"factor {factor.name!r} already exists")
        for variable in factor.variables:
            if variable.name not in self._variables:
                raise FactorGraphError(
                    f"factor {factor.name!r} references unknown variable "
                    f"{variable.name!r}; add variables first"
                )
            existing = self._variables[variable.name]
            if existing.domain != variable.domain:
                raise FactorGraphError(
                    f"factor {factor.name!r} disagrees on the domain of "
                    f"variable {variable.name!r}"
                )
        self._factors[factor.name] = factor
        for variable in factor.variables:
            self._variable_neighbors[variable.name].append(factor.name)
        return factor

    # -- lookups --------------------------------------------------------------

    @property
    def variables(self) -> Tuple[DiscreteVariable, ...]:
        """All variables, in insertion order."""
        return tuple(self._variables.values())

    @property
    def factors(self) -> Tuple[Factor, ...]:
        """All factors, in insertion order."""
        return tuple(self._factors.values())

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(self._variables)

    @property
    def factor_names(self) -> Tuple[str, ...]:
        return tuple(self._factors)

    def variable(self, name: str) -> DiscreteVariable:
        """Return the variable called ``name``."""
        try:
            return self._variables[name]
        except KeyError:
            raise FactorGraphError(f"unknown variable {name!r}") from None

    def factor(self, name: str) -> Factor:
        """Return the factor called ``name``."""
        try:
            return self._factors[name]
        except KeyError:
            raise FactorGraphError(f"unknown factor {name!r}") from None

    def has_variable(self, name: str) -> bool:
        return name in self._variables

    def has_factor(self, name: str) -> bool:
        return name in self._factors

    def factors_of(self, variable_name: str) -> Tuple[Factor, ...]:
        """Factors neighbouring ``variable_name``."""
        if variable_name not in self._variables:
            raise FactorGraphError(f"unknown variable {variable_name!r}")
        return tuple(
            self._factors[fname] for fname in self._variable_neighbors[variable_name]
        )

    def neighbors_of_factor(self, factor_name: str) -> Tuple[DiscreteVariable, ...]:
        """Variables neighbouring ``factor_name``."""
        return self.factor(factor_name).variables

    def degree(self, variable_name: str) -> int:
        """Number of factors attached to ``variable_name``."""
        return len(self.factors_of(variable_name))

    # -- structural analysis ---------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Export the bipartite structure as a :class:`networkx.Graph`.

        Variable nodes carry ``kind='variable'``, factor nodes
        ``kind='factor'``.  Node names are prefixed to avoid collisions.
        """
        graph = nx.Graph(name=self.name)
        for variable in self._variables.values():
            graph.add_node(("var", variable.name), kind="variable")
        for factor in self._factors.values():
            graph.add_node(("fac", factor.name), kind="factor")
            for variable in factor.variables:
                graph.add_edge(("fac", factor.name), ("var", variable.name))
        return graph

    def is_tree(self) -> bool:
        """``True`` when the factor graph is cycle-free.

        On trees the sum–product algorithm is exact and terminates after a
        number of iterations bounded by the graph diameter (paper §4.3).
        """
        graph = self.to_networkx()
        if graph.number_of_nodes() == 0:
            return True
        return nx.number_of_edges(graph) == nx.number_of_nodes(graph) - len(
            list(nx.connected_components(graph))
        )

    def edge_count(self) -> int:
        """Number of variable–factor edges (each carries two BP messages)."""
        return sum(factor.arity for factor in self._factors.values())

    def validate(self) -> None:
        """Check internal consistency; raises :class:`FactorGraphError`."""
        for factor in self._factors.values():
            for variable in factor.variables:
                if variable.name not in self._variables:
                    raise FactorGraphError(
                        f"factor {factor.name!r} references unknown variable "
                        f"{variable.name!r}"
                    )
        for vname, fnames in self._variable_neighbors.items():
            for fname in fnames:
                if vname not in self._factors[fname].variable_names:
                    raise FactorGraphError(
                        f"inconsistent adjacency between {vname!r} and {fname!r}"
                    )

    # -- convenience -----------------------------------------------------------

    def subgraph_for_variables(
        self, variable_names: Iterable[str], name: Optional[str] = None
    ) -> "FactorGraph":
        """Return the sub-factor-graph induced by ``variable_names``.

        A factor is included when *all* of its variables are in the set;
        this is the notion of locality used when carving per-peer fragments
        out of the global PDMS factor graph.
        """
        wanted = set(variable_names)
        sub = FactorGraph(name or f"{self.name}[sub]")
        for vname in wanted:
            sub.add_variable(self.variable(vname))
        for factor in self._factors.values():
            if set(factor.variable_names) <= wanted:
                sub.add_factor(factor)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FactorGraph({self.name!r}, variables={len(self._variables)}, "
            f"factors={len(self._factors)})"
        )
