"""The shared sweep-plan IR and pluggable executors of every sweep engine.

Four engines run the paper's sum–product sweep: the centralised
:class:`~repro.factorgraph.compiled.CompiledFactorGraph`, the sequential
embedded engine's arrays backend (:mod:`repro.core.embedded`), and the two
stacked engines of :mod:`repro.core.batched` (multi-attribute and blocked
per-origin).  Historically each of them re-derived the same compilation
artefacts — edge layout, segment index plans, transmission lists, arity
buckets with gather/scatter operands, and the dense-vs-count kernel choice —
and re-implemented the same three-phase round on top.  This module hoists
all of that into one IR:

* :class:`SweepPlan` — the topology-only compilation: a stacked edge row
  space (owner edges first, received cells after), per-mapping segment
  plans for the exclusive/inclusive products, the phase-2 transmission
  list in sequential rng order, and per-arity :class:`BucketPlan` buckets
  whose kernel family is decided **once**, here: dense einsum below the
  :data:`repro.constants.COUNT_KERNEL_MIN_ARITY` crossover, count-space
  from it on (no dense table, no arity limit).
* :func:`compile_sweep_plan` — lowering from ``(identifier, mapping
  names)`` structure lists (the embedded/batched engines).
* :func:`lower_factor_graph` — lowering from a
  :class:`~repro.factorgraph.graph.FactorGraph` (the centralised engine),
  which additionally records the variable-grouping permutation
  (:attr:`SweepPlan.edge_order`) because graph edges arrive factor-major.
* :class:`NumpyExecutor` / :class:`ThreadedExecutor` — the pluggable
  execution layer behind the ``run_round(plan, state)`` protocol
  (:class:`Executor`).  The NumPy executor reproduces the historical
  engine loops bit for bit; the threaded executor runs independent arity
  buckets concurrently (their scatter rows are disjoint, so it is
  race-free and bit-identical too).

The count-space buckets also carry a combined all-targets gather plan
(:attr:`BucketPlan.gather_all`): one fused gather + count-space evaluation
(:meth:`~repro.factorgraph.compiled.CountFactorBatch.messages_all`) replaces
the historical per-target operand re-stacking, cutting the O(arity²)
constant of long-cycle sweeps while keeping every float operation — and
therefore every bit of the result — identical.

Engines import kernels (``segment_products``, ``FactorBatch``, …) from
*this* module rather than :mod:`repro.factorgraph.compiled`; a lint test
(``tests/core/test_plan_ir.py``) enforces it so the collapse stays
collapsed.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping as TMapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

import numpy as np

from ..constants import (
    COUNT_KERNEL_MIN_ARITY,
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV,
    EXECUTOR_NUMPY,
    EXECUTOR_THREADED,
    FAULT_PLAN_ENV,
    MAX_COMPILED_ARITY,
    read_env,
)
from ..exceptions import FactorGraphError, FeedbackError, VariableDomainError
from .compiled import (
    CountFactorBatch,
    FactorBatch,
    StackedCountFactorBatch,
    StackedFactorBatch,
    normalize_rows,
    segment_exclusive_products,
    segment_products,
)
from .factors import CountFactor
from .graph import FactorGraph

__all__ = [
    "MAX_COMPILED_ARITY",
    "COUNT_KERNEL_MIN_ARITY",
    "KIND_NEUTRAL",
    "KIND_POSITIVE",
    "KIND_NEGATIVE",
    "normalize_rows",
    "segment_products",
    "segment_exclusive_products",
    "FactorBatch",
    "StackedFactorBatch",
    "CountFactorBatch",
    "StackedCountFactorBatch",
    "BucketPlan",
    "SweepPlan",
    "SweepState",
    "Executor",
    "NumpyExecutor",
    "ThreadedExecutor",
    "bucket_tables",
    "bucket_kernel",
    "compile_sweep_plan",
    "get_executor",
    "lower_factor_graph",
    "make_bucket",
    "segment_plan",
]

#: Integer codes of the per-(lane, structure) feedback kinds, shared by the
#: CPT builder (:func:`bucket_tables`) and its callers in
#: :mod:`repro.core.batched`.
KIND_NEUTRAL, KIND_POSITIVE, KIND_NEGATIVE = 0, 1, 2


# ---------------------------------------------------------------------------
# The IR
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BucketPlan:
    """One arity bucket of a compiled sweep plan.

    ``gather[target][source]`` holds, per structure of the bucket, the pool
    id of the message feeding slot ``source`` of the sweep toward slot
    ``target`` — ids below the plan's edge count select the owner's own
    fresh µ_{v→F} row, ids above it the last received remote copy (``None``
    at ``source == target``).  ``scatter[target]`` holds the µ_{F→v} edge
    rows the fresh messages are written back to.

    Derived combined plans (built by :func:`make_bucket`):

    * ``scatter_all`` — ``(arity, size)`` stack of the scatter rows, also
      the historical ``(size, arity)`` edge-id table transposed.
    * ``gather_all`` — for count-space buckets, the ``(arity, arity - 1,
      size)`` all-targets gather plan feeding the fused ``messages_all``
      kernels: row ``t`` lists the non-target source rows of target ``t``
      in ascending slot order, exactly the operand order of the per-target
      ``messages_toward`` loop.
    * ``shared_gather`` — for buckets whose operand rows are
      target-independent (graph lowering: every slot's message row feeds
      every other target), the per-slot pool ids gathered once per bucket
      instead of once per target.

    ``incorrect_counts`` feeds the evidence-time CPT builder
    (:func:`bucket_tables`): the ``arange(arity + 1)`` count axis for
    count-space buckets, the dense ``(2,)*arity`` count tensor for short
    dense buckets.  Graph lowerings leave it ``None`` — their kernels are
    built from factor objects, and materialising ``(2,)**arity`` indices
    for a long count bucket would defeat the count-space representation.
    """

    arity: int
    feedback_indices: np.ndarray
    gather: Tuple[Tuple[Optional[np.ndarray], ...], ...]
    scatter: Tuple[np.ndarray, ...]
    incorrect_counts: Optional[np.ndarray]
    use_count_kernel: bool = False
    scatter_all: Optional[np.ndarray] = None
    gather_all: Optional[np.ndarray] = None
    shared_gather: Optional[Tuple[np.ndarray, ...]] = None

    @property
    def size(self) -> int:
        return int(self.feedback_indices.size)


@dataclass(frozen=True)
class SweepPlan:
    """Topology-only compilation shared by every sweep engine.

    Holds everything the engines derive from the structure list (or factor
    graph) alone — the directed owner-edge layout grouped by mapping, the
    segment index plans behind the exclusive/inclusive products, the
    received-cell layout, the phase-2 transmission list in sequential rng
    order, and the arity-bucketed gather/scatter operands — so it is
    compiled exactly once per topology and shared across attributes, EM
    rounds and engines.

    ``edge_mapping[row]`` is the mapping (variable) id of each edge row and
    ``edge_structure[row]`` its structure (factor) id.  ``segment_starts``
    / ``segment_of_edge`` describe the per-mapping segments **in grouped
    row order**; for structure-list lowerings the rows are built grouped
    (``edge_order is None``), for factor-graph lowerings ``edge_order`` is
    the stable permutation that groups the factor-major rows.
    ``segment_mapping[k]`` is the mapping id owning segment ``k`` (the row
    behind each posterior snapshot).  ``tx_mapping`` carries the sender
    mapping id of each transmission (the sequential engine's round-
    restriction filter).
    """

    identifiers: Tuple[str, ...]
    structure_mappings: Tuple[Tuple[str, ...], ...]
    owners: TMapping[str, str]
    mapping_names: Tuple[str, ...]
    mapping_index: TMapping[str, int]
    edge_mapping: np.ndarray
    edge_structure: np.ndarray
    segment_starts: np.ndarray
    segment_of_edge: np.ndarray
    segment_mapping: np.ndarray
    edge_count: int
    recv_count: int
    recv_cells: Tuple[Tuple[str, int, str], ...]
    tx_src: np.ndarray
    tx_dest: np.ndarray
    tx_feedback: np.ndarray
    tx_mapping: np.ndarray
    batches: Tuple[BucketPlan, ...]
    edge_order: Optional[np.ndarray] = None

    @property
    def structure_count(self) -> int:
        return len(self.identifiers)

    @property
    def mapping_count(self) -> int:
        return len(self.mapping_names)


def segment_plan(
    grouped_ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment layout of an already-grouped id array.

    Returns ``(segment_starts, segment_of_row, segment_ids)``: the start
    offsets of each contiguous run, the run index of every row, and the id
    each run carries.  The single home of the ``is_start``/``cumsum``
    pattern the engines used to re-derive.
    """
    grouped_ids = np.asarray(grouped_ids, dtype=np.int64)
    if grouped_ids.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    is_start = np.empty(grouped_ids.size, dtype=bool)
    is_start[0] = True
    is_start[1:] = grouped_ids[1:] != grouped_ids[:-1]
    starts = np.flatnonzero(is_start)
    return starts, np.cumsum(is_start) - 1, grouped_ids[starts]


def make_bucket(
    arity: int,
    feedback_indices: np.ndarray,
    gather: Sequence[Sequence[Optional[np.ndarray]]],
    scatter: Sequence[np.ndarray],
    use_count_kernel: bool,
    incorrect_counts: Optional[np.ndarray] = None,
    shared_gather: Optional[Sequence[np.ndarray]] = None,
) -> BucketPlan:
    """Assemble a :class:`BucketPlan`, deriving the combined plans.

    Compaction and both lowerings funnel through this so the
    ``gather_all``/``scatter_all`` derivation exists exactly once.
    """
    gather = tuple(
        tuple(
            None if ids is None else np.asarray(ids, dtype=np.int64)
            for ids in per_target
        )
        for per_target in gather
    )
    scatter = tuple(np.asarray(rows, dtype=np.int64) for rows in scatter)
    gather_all = None
    if use_count_kernel and arity > 1:
        gather_all = np.stack(
            [
                np.stack(
                    [ids for ids in per_target if ids is not None], axis=0
                )
                for per_target in gather
            ],
            axis=0,
        )
    return BucketPlan(
        arity=arity,
        feedback_indices=np.asarray(feedback_indices, dtype=np.int64),
        gather=gather,
        scatter=scatter,
        incorrect_counts=incorrect_counts,
        use_count_kernel=use_count_kernel,
        scatter_all=np.stack(scatter, axis=0) if scatter else None,
        gather_all=gather_all,
        shared_gather=(
            None
            if shared_gather is None
            else tuple(np.asarray(ids, dtype=np.int64) for ids in shared_gather)
        ),
    )


# ---------------------------------------------------------------------------
# Lowering: structure lists (embedded / batched / blocked engines)
# ---------------------------------------------------------------------------


def compile_sweep_plan(
    structures: Sequence[Tuple[str, Sequence[str]]],
    owners: Optional[TMapping[str, str]] = None,
    min_mappings: int = 2,
    default_owner: Optional[Callable[[str], str]] = None,
) -> SweepPlan:
    """Compile ``(identifier, mapping names)`` structures into a plan.

    ``structures`` lists the network's cycles and parallel paths in the
    order :func:`repro.core.analysis.analyze_network` numbers them, so the
    per-attribute :class:`~repro.core.feedback.Feedback` evidence derived
    from the same structures aligns with the plan index for index.

    ``min_mappings`` is the smallest legal structure size: the assessment
    engines keep the historical two-mapping floor (a cycle or parallel
    path over a single mapping is a caller bug), the sequential embedded
    engine accepts singleton structures.  ``default_owner`` maps a mapping
    name to its owning peer when ``owners`` does not list it; without one,
    every name must be covered by ``owners``.
    """
    normalized: List[Tuple[str, Tuple[str, ...]]] = [
        (identifier, tuple(names)) for identifier, names in structures
    ]
    owner_map: Dict[str, str] = {}
    mapping_list: List[str] = []
    for identifier, names in normalized:
        if len(names) < min_mappings:
            noun = "two mappings" if min_mappings == 2 else (
                f"{min_mappings} mapping" + ("s" if min_mappings != 1 else "")
            )
            raise FeedbackError(
                f"structure {identifier!r} needs at least {noun}, "
                f"got {names!r}"
            )
        for name in names:
            if name not in owner_map:
                if owners is not None and name in owners:
                    owner_map[name] = owners[name]
                elif default_owner is not None:
                    owner_map[name] = default_owner(name)
                else:
                    raise FeedbackError(
                        f"no owner supplied for mapping {name!r}"
                    )
                mapping_list.append(name)
    mapping_index = {name: index for index, name in enumerate(mapping_list)}

    # Directed owner edges (mapping, structure), grouped contiguously by
    # mapping so phase 1 and the posterior read are single segment products.
    structures_of: Dict[str, List[int]] = {name: [] for name in mapping_list}
    for structure_index, (_, names) in enumerate(normalized):
        for name in names:
            structures_of[name].append(structure_index)
    edge_rows: Dict[Tuple[str, int], int] = {}
    edge_mapping_list: List[int] = []
    edge_structure_list: List[int] = []
    for m_index, name in enumerate(mapping_list):
        for structure_index in structures_of[name]:
            edge_rows[(name, structure_index)] = len(edge_mapping_list)
            edge_mapping_list.append(m_index)
            edge_structure_list.append(structure_index)
    edge_mapping = np.asarray(edge_mapping_list, dtype=np.int64)
    segment_starts, segment_of_edge, segment_mapping = segment_plan(
        edge_mapping
    )
    edge_count = len(edge_mapping)

    # Received cells (peer, structure, remote mapping): one per replica a
    # peer holds of a structure it does not own every mapping of.
    recv_rows: Dict[Tuple[str, int, str], int] = {}
    for structure_index, (_, names) in enumerate(normalized):
        for peer in dict.fromkeys(owner_map[name] for name in names):
            for name in names:
                if owner_map[name] != peer:
                    recv_rows.setdefault(
                        (peer, structure_index, name), len(recv_rows)
                    )

    # Transmission list in the exact order the sequential engine walks it
    # (structure → sender mapping → recipient mapping), so per-attribute rng
    # streams are consumed identically.
    tx_src: List[int] = []
    tx_dest: List[int] = []
    tx_feedback: List[int] = []
    tx_mapping: List[int] = []
    for structure_index, (_, names) in enumerate(normalized):
        for name in names:
            sender = owner_map[name]
            source_edge = edge_rows[(name, structure_index)]
            for other in names:
                recipient = owner_map[other]
                if recipient == sender:
                    continue
                tx_src.append(source_edge)
                tx_dest.append(recv_rows[(recipient, structure_index, name)])
                tx_feedback.append(structure_index)
                tx_mapping.append(mapping_index[name])

    # Arity buckets with index-array gather/scatter plans; the kernel
    # family — dense einsum vs count space — is decided here, once, by the
    # COUNT_KERNEL_MIN_ARITY crossover (long structures are never rejected:
    # count-value vectors replace the (2,)**arity CPTs).
    by_arity: Dict[int, List[int]] = {}
    for structure_index, (_, names) in enumerate(normalized):
        by_arity.setdefault(len(names), []).append(structure_index)
    batches: List[BucketPlan] = []
    for arity, structure_indices in by_arity.items():
        use_count_kernel = arity >= COUNT_KERNEL_MIN_ARITY
        gather: List[List[Optional[np.ndarray]]] = []
        scatter: List[np.ndarray] = []
        for target in range(arity):
            target_rows = np.asarray(
                [
                    edge_rows[(normalized[si][1][target], si)]
                    for si in structure_indices
                ],
                dtype=np.int64,
            )
            per_source: List[Optional[np.ndarray]] = []
            for source in range(arity):
                if source == target:
                    per_source.append(None)
                    continue
                pool_ids: List[int] = []
                for si in structure_indices:
                    names = normalized[si][1]
                    target_name, source_name = names[target], names[source]
                    owner = owner_map[target_name]
                    if owner_map[source_name] == owner:
                        pool_ids.append(edge_rows[(source_name, si)])
                    else:
                        pool_ids.append(
                            edge_count + recv_rows[(owner, si, source_name)]
                        )
                per_source.append(np.asarray(pool_ids, dtype=np.int64))
            gather.append(per_source)
            scatter.append(target_rows)
        batches.append(
            make_bucket(
                arity=arity,
                feedback_indices=np.asarray(structure_indices, dtype=np.int64),
                gather=gather,
                scatter=scatter,
                use_count_kernel=use_count_kernel,
                incorrect_counts=(
                    np.arange(arity + 1, dtype=np.int64)
                    if use_count_kernel
                    else np.indices((2,) * arity).sum(axis=0)
                ),
            )
        )

    recv_cells = [None] * len(recv_rows)
    for cell, row in recv_rows.items():
        recv_cells[row] = cell

    return SweepPlan(
        identifiers=tuple(identifier for identifier, _ in normalized),
        structure_mappings=tuple(names for _, names in normalized),
        owners=owner_map,
        mapping_names=tuple(mapping_list),
        mapping_index=mapping_index,
        edge_mapping=edge_mapping,
        edge_structure=np.asarray(edge_structure_list, dtype=np.int64),
        segment_starts=segment_starts,
        segment_of_edge=segment_of_edge,
        segment_mapping=segment_mapping,
        edge_count=edge_count,
        recv_count=len(recv_rows),
        recv_cells=tuple(recv_cells),
        tx_src=np.asarray(tx_src, dtype=np.int64),
        tx_dest=np.asarray(tx_dest, dtype=np.int64),
        tx_feedback=np.asarray(tx_feedback, dtype=np.int64),
        tx_mapping=np.asarray(tx_mapping, dtype=np.int64),
        batches=tuple(batches),
    )


# ---------------------------------------------------------------------------
# Lowering: factor graphs (centralised engine)
# ---------------------------------------------------------------------------


def lower_factor_graph(
    graph: FactorGraph,
) -> Tuple[SweepPlan, List[FactorBatch | CountFactorBatch]]:
    """Lower a validated :class:`FactorGraph` to a plan plus kernels.

    Edges are laid out factor-major (matching the loop engine's order);
    the returned plan records the stable variable-grouping permutation in
    :attr:`SweepPlan.edge_order` so the segment products can run in
    grouped space.  Kernels are built directly from the factor objects —
    :class:`~repro.factorgraph.compiled.CountFactorBatch` for
    count-symmetric factors (any arity), dense
    :class:`~repro.factorgraph.compiled.FactorBatch` otherwise (capped at
    :data:`repro.constants.MAX_COMPILED_ARITY`).
    """
    variables = graph.variables
    factors = graph.factors
    variable_names = tuple(v.name for v in variables)
    variable_index = {name: i for i, name in enumerate(variable_names)}

    edge_mapping_list: List[int] = []
    edge_structure_list: List[int] = []
    edge_ids: Dict[Tuple[int, int], int] = {}
    for factor_index, factor in enumerate(factors):
        for slot, variable in enumerate(factor.variables):
            if variable.name not in variable_index:
                raise VariableDomainError(
                    f"factor {factor.name!r} references unknown variable "
                    f"{variable.name!r}"
                )
            edge_ids[(factor_index, slot)] = len(edge_mapping_list)
            edge_mapping_list.append(variable_index[variable.name])
            edge_structure_list.append(factor_index)
    edge_mapping = np.asarray(edge_mapping_list, dtype=np.int64)
    edge_count = len(edge_mapping)

    # Count-symmetric factors are bucketed by arity and evaluated in count
    # space (no dense table, no arity limit); everything else is bucketed
    # by dense table shape for the einsum kernels, which cap at
    # MAX_COMPILED_ARITY subscript letters.  Which representation a
    # feedback factor uses is decided at construction time
    # (repro.core.feedback.feedback_factor switches to CountFactor at the
    # COUNT_KERNEL_MIN_ARITY crossover).
    by_shape: Dict[Tuple, List[int]] = {}
    for factor_index, factor in enumerate(factors):
        if isinstance(factor, CountFactor):
            key: Tuple = ("count", factor.arity)
        else:
            if factor.arity > MAX_COMPILED_ARITY:
                raise FactorGraphError(
                    f"cannot compile graph {graph.name!r}: dense factor "
                    f"{factor.name!r} has arity {factor.arity} > "
                    f"{MAX_COMPILED_ARITY} (use the loops backend, or a "
                    f"count-symmetric CountFactor)"
                )
            key = factor.table.shape
        by_shape.setdefault(key, []).append(factor_index)

    batches: List[BucketPlan] = []
    kernels: List[FactorBatch | CountFactorBatch] = []
    for key, factor_indices in by_shape.items():
        bucket_factors = [factors[i] for i in factor_indices]
        use_count_kernel = bool(key) and key[0] == "count"
        kernel: FactorBatch | CountFactorBatch = (
            CountFactorBatch(bucket_factors)
            if use_count_kernel
            else FactorBatch(bucket_factors)
        )
        arity = kernel.arity
        ids = np.asarray(
            [
                [edge_ids[(factor_index, slot)] for slot in range(arity)]
                for factor_index in factor_indices
            ],
            dtype=np.int64,
        )
        shared = tuple(ids[:, slot] for slot in range(arity))
        batches.append(
            make_bucket(
                arity=arity,
                feedback_indices=np.asarray(factor_indices, dtype=np.int64),
                gather=[
                    [
                        None if source == target else shared[source]
                        for source in range(arity)
                    ]
                    for target in range(arity)
                ],
                scatter=shared,
                use_count_kernel=use_count_kernel,
                incorrect_counts=None,
                shared_gather=shared,
            )
        )
        kernels.append(kernel)

    edge_order = np.argsort(edge_mapping, kind="stable")
    segment_starts, segment_of_edge, segment_mapping = segment_plan(
        edge_mapping[edge_order]
    )
    empty = np.empty(0, dtype=np.int64)
    plan = SweepPlan(
        identifiers=tuple(factor.name for factor in factors),
        structure_mappings=tuple(
            tuple(v.name for v in factor.variables) for factor in factors
        ),
        owners={},
        mapping_names=variable_names,
        mapping_index=variable_index,
        edge_mapping=edge_mapping,
        edge_structure=np.asarray(edge_structure_list, dtype=np.int64),
        segment_starts=segment_starts,
        segment_of_edge=segment_of_edge,
        segment_mapping=segment_mapping,
        edge_count=edge_count,
        recv_count=0,
        recv_cells=(),
        tx_src=empty,
        tx_dest=empty.copy(),
        tx_feedback=empty.copy(),
        tx_mapping=empty.copy(),
        batches=tuple(batches),
        edge_order=edge_order,
    )
    return plan, kernels


# ---------------------------------------------------------------------------
# Evidence-time CPT builders (shared by the stacked engines)
# ---------------------------------------------------------------------------


def bucket_tables(
    kinds: np.ndarray, deltas: np.ndarray, bucket: BucketPlan
) -> np.ndarray:
    """Per-(row, structure) CPT tables of one plan bucket.

    ``kinds`` holds the ``(..., size)`` kind codes of the bucket's
    structures and ``deltas`` the matching Δ values (broadcastable against
    ``kinds`` — per lane for the stacked engine, per structure for the
    blocked one).  Dense buckets yield ``(..., size, *(2,)*arity)`` tables
    for the einsum kernels; count-space buckets yield
    ``(..., size, arity + 1)`` count-value vectors — ``P(f± | k incorrect)``
    — for the :class:`~repro.factorgraph.compiled.StackedCountFactorBatch`
    kernel, never touching ``2**arity`` memory.  Neutral structures are
    all-ones either way, which is what masks them out of the sum–product.
    """
    counts = bucket.incorrect_counts
    if counts is None:
        raise FactorGraphError(
            "bucket carries no incorrect-count axis (graph lowerings build "
            "kernels from factor objects, not kind codes)"
        )
    extra = (1,) * counts.ndim
    delta_full = np.broadcast_to(np.asarray(deltas, dtype=float), kinds.shape)
    delta_shaped = delta_full.reshape(delta_full.shape + extra)
    positive = np.where(
        counts == 0, 1.0, np.where(counts == 1, 0.0, delta_shaped)
    )
    kind_shaped = kinds.reshape(kinds.shape + extra)
    return np.where(
        kind_shaped == KIND_POSITIVE,
        positive,
        np.where(kind_shaped == KIND_NEGATIVE, 1.0 - positive, 1.0),
    )


def bucket_kernel(
    tables: np.ndarray, bucket: BucketPlan
) -> StackedFactorBatch | StackedCountFactorBatch:
    """The stacked kernel evaluating one bucket's tables."""
    if bucket.use_count_kernel:
        return StackedCountFactorBatch(tables)
    return StackedFactorBatch(tables)


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


@dataclass
class SweepState:
    """The mutable message state one executor round advances.

    ``v2f`` / ``f2v`` are the ``(..., edges, 2)`` directed message
    matrices, ``recv`` the ``(..., recv, 2)`` received remote copies (may
    be ``None`` for engines without an exchange phase), ``kernels`` the
    per-bucket kernels aligned with ``plan.batches``, and ``prior_edges``
    the optional per-edge prior rows folded into the variable sweep.
    """

    v2f: np.ndarray
    f2v: np.ndarray
    recv: Optional[np.ndarray]
    kernels: Sequence[FactorBatch | CountFactorBatch | StackedFactorBatch | StackedCountFactorBatch]
    prior_edges: Optional[np.ndarray] = None


class Executor(Protocol):
    """Pluggable execution layer of a compiled :class:`SweepPlan`."""

    name: str

    def run_round(
        self,
        plan: SweepPlan,
        state: SweepState,
        exchange: Optional[Callable[[SweepState], None]] = None,
    ) -> SweepState:
        """Advance ``state`` by one synchronous round and return it."""
        ...  # pragma: no cover - protocol


class NumpyExecutor:
    """Single-threaded executor, bit-identical to the historical loops.

    Each phase is exposed separately (``variable_sweep`` /
    ``message_pool`` / ``factor_sweep``) because the engines interleave
    their own bookkeeping — selection masks, transport exchanges, posterior
    snapshots — between phases; :meth:`run_round` is the plain composition
    with an optional exchange callback in phase-2 position.
    """

    name = EXECUTOR_NUMPY

    def variable_sweep(
        self,
        plan: SweepPlan,
        f2v: np.ndarray,
        prior_edges: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Fresh µ_{v→F} rows: normalised exclusive segment products,
        optionally scaled by per-edge prior rows."""
        order = plan.edge_order
        if plan.edge_count == 0:
            exclusive = f2v.copy()
        elif order is None:
            exclusive = segment_exclusive_products(
                f2v, plan.segment_starts, plan.segment_of_edge
            )
        else:
            grouped = segment_exclusive_products(
                f2v[..., order, :], plan.segment_starts, plan.segment_of_edge
            )
            exclusive = np.empty_like(grouped)
            exclusive[..., order, :] = grouped
        if prior_edges is None:
            return normalize_rows(exclusive)
        return normalize_rows(prior_edges * exclusive)

    def message_pool(
        self,
        plan: SweepPlan,
        v2f: np.ndarray,
        recv: Optional[np.ndarray],
    ) -> np.ndarray:
        """The gather pool: owner rows first, received cells stacked after."""
        if recv is not None and recv.shape[-2]:
            return np.concatenate((v2f, recv), axis=-2)
        return v2f

    def sweep_bucket(
        self,
        bucket: BucketPlan,
        kernel,
        pool: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """One bucket's factor→variable messages, scattered into ``out``.

        Scatter rows are disjoint across buckets and targets (every edge
        belongs to exactly one (factor, slot)), so buckets may run
        concurrently and per-target normalisation equals the historical
        whole-matrix normalisation bit for bit.
        """
        if bucket.gather_all is not None:
            fresh = normalize_rows(
                kernel.messages_all(pool[..., bucket.gather_all, :])
            )
            out[..., bucket.scatter_all, :] = fresh
            return
        if bucket.shared_gather is not None:
            incoming = [pool[..., ids, :] for ids in bucket.shared_gather]
            for target in range(bucket.arity):
                out[..., bucket.scatter[target], :] = normalize_rows(
                    kernel.messages_toward(target, incoming)
                )
            return
        for target in range(bucket.arity):
            incoming = [
                None if ids is None else pool[..., ids, :]
                for ids in bucket.gather[target]
            ]
            out[..., bucket.scatter[target], :] = normalize_rows(
                kernel.messages_toward(target, incoming)
            )

    def factor_sweep(
        self,
        plan: SweepPlan,
        kernels: Sequence,
        pool: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """All buckets' factor→variable messages, scattered into ``out``."""
        for bucket, kernel in zip(plan.batches, kernels):
            self.sweep_bucket(bucket, kernel, pool, out)

    def run_round(
        self,
        plan: SweepPlan,
        state: SweepState,
        exchange: Optional[Callable[[SweepState], None]] = None,
    ) -> SweepState:
        state.v2f = self.variable_sweep(plan, state.f2v, state.prior_edges)
        if exchange is not None:
            exchange(state)
        pool = self.message_pool(plan, state.v2f, state.recv)
        self.factor_sweep(plan, state.kernels, pool, state.f2v)
        return state


_POOL_LOCK = threading.Lock()
_POOL: Optional[ThreadPoolExecutor] = None


def _shared_pool() -> ThreadPoolExecutor:
    """The lazily created process-wide sweep thread pool."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=max(2, min(8, os.cpu_count() or 1)),
                thread_name_prefix="sweep",
            )
        return _POOL


class ThreadedExecutor(NumpyExecutor):
    """Executor running independent arity buckets on a thread pool.

    Each bucket's sweep reads the shared pool and writes a disjoint set of
    ``out`` rows, so the concurrent execution is race-free and the results
    are bit-identical to :class:`NumpyExecutor` — only wall-clock changes.
    NumPy releases the GIL inside the kernels, so plans with several
    buckets (mixed arities) overlap on multi-core hosts.

    A bucket whose thread raises — an injected chaos fault under a
    :class:`~repro.reliability.FaultPlan` (keyed by ``(bucket, 0)``), or a
    genuine kernel error — is degraded to the synchronous
    :class:`NumpyExecutor` sweep instead of aborting the round.  The
    fallback re-runs the *whole* bucket, and buckets overwrite their full
    disjoint row set, so a degraded round stays bit-identical to an
    undisturbed one; :attr:`statistics` counts every fallback.
    """

    name = EXECUTOR_THREADED

    def __init__(self, fault_plan: object = None) -> None:
        # Lazy import: repro.reliability sits above the factor-graph layer
        # (it pulls in the probe-plan IR), so the sweep module only reaches
        # up when an executor is actually constructed.
        from ..reliability import (
            FaultInjector,
            ReliabilityStatistics,
            fault_plan_or_env,
        )

        resolved = fault_plan_or_env(fault_plan)
        self.fault_plan = resolved
        self._injector = (
            FaultInjector(resolved) if resolved is not None else None
        )
        #: Cumulative fault / fallback accounting across every round this
        #: executor instance ran.
        self.statistics = ReliabilityStatistics()

    def _guarded_bucket(
        self,
        index: int,
        bucket: BucketPlan,
        kernel,
        pool: np.ndarray,
        out: np.ndarray,
    ) -> Optional[str]:
        """One bucket's sweep, preceded by its scheduled chaos fault (if
        any); returns the fired fault kind for the caller's accounting."""
        fired = None
        if self._injector is not None:
            fired = self._injector.fire_in_thread(index, 0)
        self.sweep_bucket(bucket, kernel, pool, out)
        return fired

    def _settle_bucket(
        self,
        index: int,
        bucket: BucketPlan,
        kernel,
        pool: np.ndarray,
        out: np.ndarray,
        result,
    ) -> None:
        """Account for one guarded bucket's outcome, degrading a failed
        bucket to the synchronous NumPy sweep."""
        from ..reliability import (
            FAULT_CORRUPT,
            FAULT_CRASH,
            FAULT_DELAY,
            FAULT_HANG,
        )

        try:
            fired = result()
        except Exception:
            stats = self.statistics
            if self.fault_plan is not None:
                kind = self.fault_plan.fault_for(index, 0)
                if kind == FAULT_CRASH:
                    stats.injected_crashes += 1
                elif kind == FAULT_HANG:
                    stats.injected_hangs += 1
                elif kind == FAULT_CORRUPT:
                    stats.injected_corruptions += 1
            stats.worker_errors += 1
            stats.bucket_fallbacks += 1
            NumpyExecutor.sweep_bucket(self, bucket, kernel, pool, out)
            return
        if fired == FAULT_DELAY:
            self.statistics.injected_delays += 1

    def factor_sweep(
        self,
        plan: SweepPlan,
        kernels: Sequence,
        pool: np.ndarray,
        out: np.ndarray,
    ) -> None:
        pairs = list(zip(plan.batches, kernels))
        if len(pairs) <= 1 and self._injector is None:
            for bucket, kernel in pairs:
                self.sweep_bucket(bucket, kernel, pool, out)
            return
        if len(pairs) <= 1:
            for index, (bucket, kernel) in enumerate(pairs):
                self._settle_bucket(
                    index,
                    bucket,
                    kernel,
                    pool,
                    out,
                    lambda i=index, b=bucket, k=kernel: self._guarded_bucket(
                        i, b, k, pool, out
                    ),
                )
            return
        futures = [
            _shared_pool().submit(
                self._guarded_bucket, index, bucket, kernel, pool, out
            )
            for index, (bucket, kernel) in enumerate(pairs)
        ]
        for index, ((bucket, kernel), future) in enumerate(
            zip(pairs, futures)
        ):
            self._settle_bucket(index, bucket, kernel, pool, out, future.result)


_EXECUTORS: Dict[str, Executor] = {}


def get_executor(spec: object = None) -> Executor:
    """Resolve an executor spec: ``None`` (the configured default, read
    live from the ``REPRO_EXECUTOR`` environment variable), a name
    (:data:`~repro.constants.EXECUTOR_NUMPY` /
    :data:`~repro.constants.EXECUTOR_THREADED`), or an
    :class:`Executor` instance passed through unchanged.

    When a chaos fault plan is configured via ``REPRO_FAULT_PLAN``, the
    threaded executor is built armed with it (and not cached, so each
    resolution starts with fresh statistics).
    """
    from_env = False
    if spec is None:
        env = read_env(EXECUTOR_ENV)
        from_env = bool(env)
        spec = env or DEFAULT_EXECUTOR
    if isinstance(spec, str):
        if spec == EXECUTOR_NUMPY:
            return _EXECUTORS.setdefault(spec, NumpyExecutor())
        if spec == EXECUTOR_THREADED:
            if read_env(FAULT_PLAN_ENV):
                return ThreadedExecutor()  # arms itself from the environment
            return _EXECUTORS.setdefault(spec, ThreadedExecutor())
        raise FactorGraphError(
            f"unknown sweep executor {spec!r}; expected "
            f"{EXECUTOR_NUMPY!r} or {EXECUTOR_THREADED!r}"
            + (
                f" (from the {EXECUTOR_ENV} environment variable)"
                if from_env
                else ""
            )
        )
    if hasattr(spec, "run_round"):
        return spec  # type: ignore[return-value]
    raise FactorGraphError(
        f"executor must be an executor name or object, got "
        f"{type(spec).__name__}"
    )
