"""repro — Probabilistic Message Passing in Peer Data Management Systems.

A faithful, laptop-scale reproduction of Cudré-Mauroux, Aberer & Feher
(ICDE 2006): detecting erroneous schema mappings in a PDMS by analysing
mapping cycles and parallel paths, encoding the resulting feedback in a
factor graph, and running decentralised loopy sum–product message passing
embedded in normal PDMS operations.

Typical usage::

    from repro import MappingQualityAssessor, intro_example_network

    network = intro_example_network()
    assessor = MappingQualityAssessor(network, delta=0.1)
    assessment = assessor.assess_attribute("Creator")
    print(assessment.posteriors)          # P(correct) per mapping
    router = assessor.router()            # θ-aware query routing
"""

from .constants import BACKEND_LOOPS, BACKEND_VECTORIZED, DEFAULT_BACKEND
from .exceptions import ReproError
from .factorgraph import (
    BinaryVariable,
    CompiledFactorGraph,
    Factor,
    FactorGraph,
    SumProduct,
    SumProductOptions,
    SumProductResult,
    compile_factor_graph,
    exact_marginals,
    prior_factor,
    run_sum_product,
)
from .schema import Attribute, AttributeType, DataModel, InstanceStore, Record, Schema, SchemaRegistry
from .mapping import Correspondence, Mapping, compose, round_trip_outcome
from .pdms import (
    GossipJournal,
    JournalEntry,
    MappingAdded,
    MappingRemoved,
    PDMSNetwork,
    Peer,
    PeerAdded,
    PeerRemoved,
    Query,
    QueryRouter,
    QueryTrace,
    RoutingPolicy,
    TopologyEvent,
    VectorClock,
    probe_neighborhood,
    substring_predicate,
)
from .pdms.gossip import GossipHarness, PeerNode, SeededTransport
from .core import (
    BatchedEmbeddedMessagePassing,
    EmbeddedMessagePassing,
    EmbeddedOptions,
    EmbeddedResult,
    Feedback,
    FeedbackKind,
    LazySchedule,
    MappingQualityAssessor,
    MessageTransport,
    PeriodicSchedule,
    PriorBeliefStore,
    analyze_network,
    build_factor_graph,
    compensation_probability,
)
from .generators import (
    figure4_feedbacks,
    generate_scenario,
    intro_example_feedbacks,
    intro_example_network,
    scale_free_network,
    single_cycle_feedback,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "BACKEND_LOOPS",
    "BACKEND_VECTORIZED",
    "DEFAULT_BACKEND",
    "BinaryVariable",
    "CompiledFactorGraph",
    "compile_factor_graph",
    "Factor",
    "FactorGraph",
    "SumProduct",
    "SumProductOptions",
    "SumProductResult",
    "exact_marginals",
    "prior_factor",
    "run_sum_product",
    "Attribute",
    "AttributeType",
    "DataModel",
    "InstanceStore",
    "Record",
    "Schema",
    "SchemaRegistry",
    "Correspondence",
    "Mapping",
    "compose",
    "round_trip_outcome",
    "PDMSNetwork",
    "Peer",
    "Query",
    "QueryRouter",
    "QueryTrace",
    "RoutingPolicy",
    "probe_neighborhood",
    "substring_predicate",
    "VectorClock",
    "TopologyEvent",
    "PeerAdded",
    "PeerRemoved",
    "MappingAdded",
    "MappingRemoved",
    "JournalEntry",
    "GossipJournal",
    "GossipHarness",
    "PeerNode",
    "SeededTransport",
    "BatchedEmbeddedMessagePassing",
    "EmbeddedMessagePassing",
    "EmbeddedOptions",
    "EmbeddedResult",
    "Feedback",
    "FeedbackKind",
    "LazySchedule",
    "MappingQualityAssessor",
    "MessageTransport",
    "PeriodicSchedule",
    "PriorBeliefStore",
    "analyze_network",
    "build_factor_graph",
    "compensation_probability",
    "figure4_feedbacks",
    "generate_scenario",
    "intro_example_feedbacks",
    "intro_example_network",
    "scale_free_network",
    "single_cycle_feedback",
    "__version__",
]
