"""Embedded, decentralised message passing (the paper's §4).

Every peer owns the correctness variables of its outgoing mappings, keeps a
replica of each feedback factor its mappings participate in, and exchanges
*remote messages* with the other peers involved in those feedbacks.  One
"iteration" (a round) corresponds to every peer

1. computing its variable→factor messages from its prior and the current
   factor→variable messages,
2. sending each of those messages to the other peers holding a replica of
   the same feedback factor (each transmission succeeding with probability
   ``send_probability`` — the fault-tolerance experiment of Figure 11), and
3. recomputing its factor→variable messages and mapping posteriors from the
   factor replicas, its own fresh messages and the last *received* remote
   messages (initially the unit message, as prescribed in §4.3).

Because every factor replica applies the same sum–product update as the
corresponding factor of the global graph, the fixed points coincide with
those of centralised loopy BP — which is what the tests verify.

State layout and backends
-------------------------
The engine keeps its message state in three stacked ``(rows, 2)`` matrices:

* ``_v2f_mat`` / ``_f2v_mat`` — one row per directed *owner edge*
  ``(mapping, feedback)``, grouped contiguously by mapping so phase 1 is a
  single zero-aware segment product
  (:func:`~repro.factorgraph.plan.segment_exclusive_products`) over the
  factor→variable matrix, and posteriors are one inclusive segment product.
* ``_recv_mat`` — one row per *received cell* ``(peer, feedback, remote
  mapping)``, the last remote message a peer received for a replica.

That layout is no longer derived per engine: construction lowers the
feedback list to a shared :class:`~repro.factorgraph.plan.SweepPlan`
(:func:`~repro.factorgraph.plan.compile_sweep_plan`), the plan IR capturing
once the edge row space, segment index plans, transmission list
(``tx_src`` → ``tx_dest`` index arrays) and arity-bucketed kernel batches,
and every phase of a round is delegated to a pluggable *executor*
(:func:`~repro.factorgraph.plan.get_executor`): phase 2 is one vectorized
Bernoulli mask over the plan's transmission list; phase 3 gathers each
bucket's operands by fancy indexing into the concatenated message pool and
scatters the fresh factor→variable rows back by edge id.  The historical
dict-of-dicts state survives behind ``backend="dicts"`` as the loop
reference the parity tests and the throughput benchmark compare against;
the array backend exposes the same ``_f2v`` / ``_v2f`` / ``_received``
attributes as thin read-only dict views over the matrices, so introspection
code works against either backend.

The Bernoulli keep/send decisions are drawn from the transport's single
``random.Random`` stream in transmission order by both backends
(:meth:`MessageTransport.send_mask` versus repeated
:meth:`MessageTransport.try_send`), so lossy runs with a shared seed make
identical drop decisions and stay reproducible across backends.

Plan lowering × executor matrix
-------------------------------
Every array-state execution of the decentralised algorithm is a point on
two orthogonal axes — *how the structures are lowered* to a
:class:`~repro.factorgraph.plan.SweepPlan` and *which executor runs its
rounds*; all combinations agree on posteriors to floating-point accuracy
under shared seeds (the per-message ``backend="dicts"`` state sits off the
matrix as the loop reference everything is compared against).

The layering, determinism and process-safety invariants this matrix rests
on — engines import kernels from the plan surface only, discovery flows
through probe plans, rng streams are explicitly seeded, wire payloads are
registered picklable types — are stated normatively in ``ARCHITECTURE.md``
at the repository root and enforced mechanically by ``repro-lint``
(:mod:`repro.lintkit`).

Lowering axis — who calls
:func:`~repro.factorgraph.plan.compile_sweep_plan` and with what row space:

=============================  ========================================
lowering                       plan shape / selected when
=============================  ========================================
``EmbeddedMessagePassing``     Lowers its single feedback list with
(``backend="arrays"``)         ``min_mappings=1``; one ``(edges, 2)``
                               matrix per state.  Default for
                               single-attribute runs
                               (``assess_attribute``, ``assess_local``,
                               schedules, one-engine experiments).
``BatchedEmbeddedMessage-      Lowers the assessor's structure
Passing``                      signatures once
(:mod:`repro.core.batched`)    (``compile_assessment_plan``) and stacks
                               ``(lanes, edges, 2)`` matrices over the
                               shared plan — one lane per attribute
                               (``from_lanes`` binds arbitrary evidence
                               subsets).  Default for multi-attribute
                               assessor sweeps and EM rounds.
``BlockedEmbeddedMessage-      Same assessment-plan lowering over
Passing``                      *disjoint* per-origin structure blocks
(:mod:`repro.core.batched`)    packed into one shared row space
                               (``assess_locals`` /
                               ``assess_local_all``); frozen origins'
                               blocks are compacted out of the live
                               plan, so per-round work *shrinks* as
                               lanes converge.
``CompiledFactorGraph``        Lowers a centralised
(:mod:`repro.factorgraph`)     :class:`~repro.factorgraph.graph.FactorGraph`
                               (``lower_factor_graph``) for the
                               vectorized sum-product backend — same IR,
                               factor-major edge rows.
=============================  ========================================

Executor axis — any engine above accepts ``executor=`` (defaulting to
:data:`repro.constants.DEFAULT_EXECUTOR`, i.e. the ``REPRO_EXECUTOR``
environment variable):

* ``"numpy"`` — sequential NumPy kernels, bit-identical to the historical
  per-engine sweeps.
* ``"threaded"`` — fans independent arity buckets out to a shared thread
  pool; buckets scatter to disjoint edge rows, so results stay
  bit-identical to the NumPy executor.

Probe-executor row — the same pattern one layer *up*: the structures every
lowering consumes are themselves discovered by a
:class:`~repro.pdms.discovery.ProbePlan` frontier run through a pluggable
discovery executor (``probe_executor=`` on the assessor and both structure
caches, defaulting to :data:`repro.constants.DEFAULT_PROBE_EXECUTOR`, i.e.
the ``REPRO_PROBE_EXECUTOR`` environment variable): ``"serial"`` walks the
frontier in-process, ``"process"`` shards it by origin over a
``multiprocessing`` pool and merges canonically.  Both yield identical
structure lists, so the sweep axes above are completely independent of the
probe axis — any lowering × sweep executor × probe executor combination
agrees.

Resilience row — chaos moves no point on the matrix: under a deterministic
:class:`~repro.reliability.FaultPlan` (``fault_plan=`` on the assessor and
both structure caches, or ``REPRO_FAULT_PLAN`` process-wide) the
``"process"`` probe row upgrades to the retrying
:class:`~repro.reliability.ResilientDiscoveryExecutor` — per-shard
deadlines, bounded seeded-backoff retries, checksum-verified wire
payloads, per-shard serial quarantine fallback — and the ``"threaded"``
sweep executor re-runs each faulted bucket synchronously through the NumPy
kernels over the same disjoint rows.  Merged structures and posteriors
stay bit-identical to the fault-free serial run; what was injected,
retried and quarantined is counted by
:class:`~repro.reliability.ReliabilityStatistics`.

The *kernel crossover rule* is stated once, in the plan IR, and applied by
every lowering: a feedback factor with ``arity >=``
:data:`repro.constants.COUNT_KERNEL_MIN_ARITY` mappings is represented as a
count-space :class:`~repro.factorgraph.factors.CountFactor` replica and its
bucket evaluated by ``CountFactorBatch`` / ``StackedCountFactorBatch`` from
the ``arity + 1`` count-value vector in O(arity) per message — which lets
every engine (and the loop references, via ``CountFactor.message_to``) run
structures far beyond the dense limit of
:data:`repro.constants.MAX_COMPILED_ARITY` slots with O(arity) factor
memory; below the crossover the dense ``FactorBatch`` /
``StackedFactorBatch`` einsum over ``(2,)**arity`` tables wins (tiny
tables, one einsum per sweep — fastest for short cycles).

Rng-stream reproducibility contract: every engine consumes its transport's
``random.Random`` uniforms in the same transmission order (structure →
sender mapping → recipient), drawing *only* for informative transmissions.
The batched engines keep one independently seeded stream per lane — exactly
the fresh per-call transport the sequential assessor builds per attribute
(global sweeps) or per origin (local sweeps); per-origin lanes additionally
keep each origin's own structure enumeration order and cycle orientation —
so for a shared seed every lowering × executor combination makes identical
drop decisions, lane for lane, and lossy posteriors match bit for bit in
practice (the executors never touch the rng — the exchange phase stays on
the engine).

Plan-IR equivalence contract
----------------------------
The factor→variable sweep of every round is routed through the kernels
re-exported by :mod:`repro.factorgraph.plan` — the same batched
:class:`~repro.factorgraph.plan.FactorBatch` einsum / count-space kernels
that power the vectorized
:class:`~repro.factorgraph.sum_product.SumProduct` backend: the
feedback-factor replicas are grouped into arity buckets once at lowering
and each round evaluates a bucket's messages in one fused kernel call.
The kernels evaluate exactly the sum–product expression the scalar
:meth:`repro.factorgraph.factors.Factor.message_to` evaluates, so
posteriors agree with the loop formulation to floating-point accuracy.
Convergence defaults (tolerance, round cap, seeding) are shared with the
centralised engine through :mod:`repro.constants`.
"""

from __future__ import annotations

import random
from collections.abc import Mapping as ABCMapping
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_SEED,
    DEFAULT_SEND_PROBABILITY,
    DEFAULT_TOLERANCE,
)
from ..exceptions import ConvergenceError, FeedbackError
from ..factorgraph.plan import (
    CountFactorBatch,
    FactorBatch,
    SweepPlan,
    compile_sweep_plan,
    get_executor,
    normalize_rows,
    segment_products,
)
from ..factorgraph.factors import CountFactor, Factor
from ..factorgraph.messages import normalize, unit_message
from ..factorgraph.variables import BinaryVariable
from .beliefs import PriorBeliefStore
from .feedback import Feedback, feedback_factor
from .local_graph import LocalFactorGraph, build_local_graphs, mapping_owner
from .pdms_factor_graph import variable_name_for

__all__ = [
    "STATE_ARRAYS",
    "STATE_DICTS",
    "MessageTransport",
    "TransportStatistics",
    "EmbeddedOptions",
    "EmbeddedResult",
    "EmbeddedMessagePassing",
    "required_quiet_rounds",
]


def required_quiet_rounds(send_probability: float) -> int:
    """Consecutive sub-tolerance rounds needed to declare convergence.

    Under message loss a single quiet round may simply mean the informative
    messages were dropped, so the count grows inversely with the transport's
    send probability.  Shared by :meth:`EmbeddedMessagePassing.run` and the
    schedules so every stopping rule stays in sync.
    """
    if send_probability >= 1.0:
        return 1
    return max(2, int(round(2.0 / send_probability)))

#: Vectorized array state (default): stacked message matrices + index plans.
STATE_ARRAYS = "arrays"

#: Historical dict-of-dicts state, kept as the loop reference for parity
#: tests and the embedded throughput benchmark.
STATE_DICTS = "dicts"


@dataclass
class TransportStatistics:
    """Counts of remote messages attempted, delivered and dropped."""

    attempted: int = 0
    delivered: int = 0
    dropped: int = 0

    def record(self, delivered: bool) -> None:
        self.attempted += 1
        if delivered:
            self.delivered += 1
        else:
            self.dropped += 1

    def record_many(self, attempted: int, delivered: int) -> None:
        """Record a whole batch of attempts at once.

        ``attempted=0`` is a valid no-op (an idle round of a quiet lane);
        negative counts or ``delivered > attempted`` would corrupt the
        tallies (and could drive :attr:`delivery_rate` outside [0, 1] or
        into a division by zero), so they are rejected.
        """
        if attempted < 0 or delivered < 0 or delivered > attempted:
            raise FeedbackError(
                f"invalid transport batch: attempted={attempted}, "
                f"delivered={delivered}"
            )
        if attempted == 0:
            return
        self.attempted += attempted
        self.delivered += delivered
        self.dropped += attempted - delivered

    @property
    def delivery_rate(self) -> float:
        """Fraction of attempted messages delivered (1.0 before any attempt)."""
        if self.attempted == 0:
            return 1.0
        return self.delivered / self.attempted


class MessageTransport:
    """Unreliable transport between peers.

    Each remote message is delivered independently with probability
    ``send_probability``; dropped messages simply leave the recipient's last
    received value in place, which the algorithm tolerates by design
    (§4.3.2, Figure 11).

    ``seed`` defaults to :data:`repro.constants.DEFAULT_SEED` so lossy runs
    are reproducible unless an explicit seed is supplied (matching the
    centralised engine's fallback rng; pass a distinct seed per repetition
    for independent runs).
    """

    def __init__(
        self,
        send_probability: float = DEFAULT_SEND_PROBABILITY,
        seed: Optional[int] = DEFAULT_SEED,
    ) -> None:
        if not 0.0 < send_probability <= 1.0:
            raise FeedbackError(
                f"send_probability must be in (0, 1], got {send_probability}"
            )
        self.send_probability = send_probability
        self._rng = random.Random(seed)
        self.statistics = TransportStatistics()

    def try_send(self) -> bool:
        """Decide whether one message makes it through; update statistics."""
        delivered = (
            self.send_probability >= 1.0
            or self._rng.random() < self.send_probability
        )
        self.statistics.record(delivered)
        return delivered

    def send_mask(self, count: int) -> np.ndarray:
        """Vectorized equivalent of ``count`` consecutive :meth:`try_send`.

        The uniforms are drawn from the same ``random.Random`` stream in the
        same order as the scalar calls (and, like them, a perfectly reliable
        transport draws nothing), so the dict and array backends make
        identical drop decisions under a shared seed.
        """
        if count <= 0:
            return np.zeros(0, dtype=bool)
        if self.send_probability >= 1.0:
            mask = np.ones(count, dtype=bool)
        else:
            uniforms = np.fromiter(
                (self._rng.random() for _ in range(count)),
                dtype=float,
                count=count,
            )
            mask = uniforms < self.send_probability
        self.statistics.record_many(count, int(mask.sum()))
        return mask


@dataclass(frozen=True)
class EmbeddedOptions:
    """Tuning knobs of the embedded message-passing run.

    The defaults are shared with the centralised engine's
    :class:`~repro.factorgraph.sum_product.SumProductOptions` through
    :mod:`repro.constants`, so both formulations stop under the same rule.
    """

    max_rounds: int = DEFAULT_MAX_ITERATIONS
    tolerance: float = DEFAULT_TOLERANCE
    record_history: bool = True
    strict: bool = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise FeedbackError("max_rounds must be >= 1")
        if self.tolerance <= 0:
            raise FeedbackError("tolerance must be positive")


@dataclass
class EmbeddedResult:
    """Outcome of an embedded message-passing run."""

    posteriors: Dict[str, float]
    iterations: int
    converged: bool
    final_change: float
    history: List[Dict[str, float]] = field(default_factory=list)
    messages_attempted: int = 0
    messages_delivered: int = 0

    def _require_known(self, mapping_name: str) -> None:
        if mapping_name not in self.posteriors:
            known = ", ".join(sorted(self.posteriors)) or "<none>"
            raise FeedbackError(
                f"unknown mapping {mapping_name!r} in embedded result; "
                f"known mappings: {known}"
            )

    def probability_correct(self, mapping_name: str) -> float:
        """Posterior P(mapping correct) for the run's attribute."""
        self._require_known(mapping_name)
        return self.posteriors[mapping_name]

    def history_of(self, mapping_name: str) -> List[float]:
        """Per-round posterior trajectory of one mapping."""
        self._require_known(mapping_name)
        return [snapshot[mapping_name] for snapshot in self.history]


class _MessageRowView(ABCMapping):
    """Read-only dict-like view over rows of a stacked message matrix.

    The matrix attribute is resolved on the owning engine at access time, so
    the view stays valid when a round replaces the whole matrix.
    """

    __slots__ = ("_engine", "_attribute", "_rows")

    def __init__(self, engine: "EmbeddedMessagePassing", attribute: str, rows: Dict) -> None:
        self._engine = engine
        self._attribute = attribute
        self._rows = rows

    def __getitem__(self, key) -> np.ndarray:
        return getattr(self._engine, self._attribute)[self._rows[key]]

    def __iter__(self):
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_MessageRowView({dict(self)!r})"


class EmbeddedMessagePassing:
    """Decentralised sum–product over per-peer local factor graphs.

    Parameters
    ----------
    feedbacks:
        Informative feedback evidence (all for the same attribute).
    priors:
        Prior beliefs (store, dict by mapping name, single float, or None
        for the 0.5 default).
    delta:
        Error-compensation probability Δ used in all feedback factors.
    transport:
        Unreliable message transport; defaults to a perfectly reliable one.
    options:
        Iteration control.
    owners:
        Optional explicit mapping→peer ownership (defaults to each mapping's
        source peer).
    backend:
        ``"arrays"`` (default) lowers the feedback structures to a shared
        :class:`~repro.factorgraph.plan.SweepPlan` and delegates every
        phase to the configured executor; ``"dicts"`` keeps the historical
        per-message dict state as the loop reference.  Both produce
        posteriors matching to floating-point accuracy under identical
        transport seeds.
    executor:
        Executor of the compiled plan (arrays backend only): an executor
        name (``"numpy"`` / ``"threaded"``), an executor object, or
        ``None`` for the configured default
        (:data:`repro.constants.DEFAULT_EXECUTOR`).  Both executors are
        bit-identical; they differ only in wall-clock.
    """

    def __init__(
        self,
        feedbacks: Iterable[Feedback],
        priors: PriorBeliefStore | TMapping[str, float] | float | None = None,
        delta: float = 0.1,
        transport: Optional[MessageTransport] = None,
        options: Optional[EmbeddedOptions] = None,
        owners: Optional[TMapping[str, str]] = None,
        backend: str = STATE_ARRAYS,
        executor: object = None,
    ) -> None:
        if backend not in (STATE_ARRAYS, STATE_DICTS):
            raise FeedbackError(
                f"unknown embedded state backend {backend!r}; "
                f"expected {STATE_ARRAYS!r} or {STATE_DICTS!r}"
            )
        self.backend = backend
        self._executor = get_executor(executor)
        self.options = options or EmbeddedOptions()
        self.transport = transport or MessageTransport()
        self.delta = delta
        self._feedbacks: List[Feedback] = [f for f in feedbacks if f.is_informative]
        if not self._feedbacks:
            raise FeedbackError("embedded message passing needs informative feedback")
        self.attribute = self._feedbacks[0].attribute
        self.local_graphs: Dict[str, LocalFactorGraph] = build_local_graphs(
            self._feedbacks, attribute=self.attribute, owners=owners
        )
        self._owners: Dict[str, str] = {}
        for peer, fragment in self.local_graphs.items():
            for mapping_name in fragment.owned_mappings:
                self._owners[mapping_name] = peer

        # Priors, stacked as one (mappings, 2) matrix of
        # [P(correct), P(incorrect)] rows; ``_prior_vectors`` keeps the
        # historical per-mapping dict view (rows of the matrix).
        self._mapping_list: List[str] = list(self._owners)
        self._mapping_index: Dict[str, int] = {
            name: index for index, name in enumerate(self._mapping_list)
        }
        prior_rows = []
        for mapping_name in self._mapping_list:
            prior = self._resolve_prior(priors, mapping_name)
            prior_rows.append(np.clip(np.array([prior, 1.0 - prior]), 1e-9, 1.0))
        self._prior_matrix = np.stack(prior_rows)
        self._prior_vectors: Dict[str, np.ndarray] = {
            name: self._prior_matrix[index]
            for index, name in enumerate(self._mapping_list)
        }

        # One factor object per feedback (shared by all replicas; the factor
        # table is identical everywhere so sharing is purely an optimisation).
        self._factors: Dict[str, Factor] = {}
        self._feedback_by_id: Dict[str, Feedback] = {}
        for feedback in self._feedbacks:
            variables = [
                BinaryVariable(variable_name_for(m, self.attribute))
                for m in feedback.mapping_names
            ]
            self._factors[feedback.identifier] = feedback_factor(
                feedback, delta, variables
            )
            self._feedback_by_id[feedback.identifier] = feedback

        if backend == STATE_DICTS:
            self._init_dict_state()
            self._compile_dict_batches()
        else:
            self._init_array_state()
            self._compile_array_batches()

    # -- state construction ------------------------------------------------------------

    def _init_dict_state(self) -> None:
        """Historical per-message dict state (the ``"dicts"`` backend).

        ``_f2v[mapping][feedback_id]`` holds the factor→variable messages at
        the variable's owner, ``_v2f[mapping][feedback_id]`` the fresh
        variable→factor messages, and ``_received[peer][(feedback_id,
        mapping)]`` the last remote message a peer received for a replica.
        """
        self._f2v: Dict[str, Dict[str, np.ndarray]] = {}
        self._v2f: Dict[str, Dict[str, np.ndarray]] = {}
        for mapping_name, owner in self._owners.items():
            fragment = self.local_graphs[owner]
            feedback_ids = [
                f.identifier for f in fragment.feedbacks_for(mapping_name)
            ]
            self._f2v[mapping_name] = {fid: unit_message(2) for fid in feedback_ids}
            self._v2f[mapping_name] = {fid: unit_message(2) for fid in feedback_ids}
        self._received: Dict[str, Dict[Tuple[str, str], np.ndarray]] = {}
        for peer, fragment in self.local_graphs.items():
            incoming: Dict[Tuple[str, str], np.ndarray] = {}
            for feedback in fragment.feedbacks:
                for mapping_name in feedback.mapping_names:
                    if self._owners.get(mapping_name) == peer:
                        continue
                    incoming[(feedback.identifier, mapping_name)] = unit_message(2)
            self._received[peer] = incoming

    def _init_array_state(self) -> None:
        """Stacked array state (the ``"arrays"`` backend) plus dict views.

        The layout is no longer hand-rolled: the feedback structures lower
        to a shared :class:`~repro.factorgraph.plan.SweepPlan` (edges
        grouped by mapping, received cells, transmission list in the
        sequential rng order, arity buckets) and the engine keeps only the
        name-keyed views over the plan's row space.
        """
        # Every (mapping, feedback) pair of a feedback must be replicated
        # in the mapping owner's local graph; a miss means the ownership
        # routing and the fragments disagree (a caller bug the lowering
        # cannot detect because it derives edges from the feedbacks alone).
        for feedback in self._feedbacks:
            for mapping_name in feedback.mapping_names:
                fragment = self.local_graphs[self._owners[mapping_name]]
                if all(
                    f.identifier != feedback.identifier
                    for f in fragment.feedbacks_for(mapping_name)
                ):
                    raise FeedbackError(
                        f"feedback {feedback.identifier!r} missing from the "
                        f"local graph of {mapping_name!r}'s owner"
                    )

        plan = compile_sweep_plan(
            [(f.identifier, tuple(f.mapping_names)) for f in self._feedbacks],
            owners=self._owners,
            min_mappings=1,
        )
        self._plan: SweepPlan = plan

        # Re-key the prior rows to the plan's mapping order (first
        # appearance across feedbacks) so posterior/segment rows line up
        # with the prior matrix index for index.
        self._mapping_list = list(plan.mapping_names)
        self._mapping_index = dict(plan.mapping_index)
        self._prior_matrix = np.stack(
            [self._prior_vectors[name] for name in self._mapping_list]
        )
        self._prior_vectors = {
            name: self._prior_matrix[index]
            for index, name in enumerate(self._mapping_list)
        }
        self._prior_edges = self._prior_matrix[plan.edge_mapping]

        self._edge_rows: Dict[Tuple[str, str], int] = {
            (
                plan.mapping_names[plan.edge_mapping[row]],
                plan.identifiers[plan.edge_structure[row]],
            ): row
            for row in range(plan.edge_count)
        }
        self._recv_rows: Dict[Tuple[str, str, str], int] = {
            (peer, plan.identifiers[structure_index], mapping_name): row
            for row, (peer, structure_index, mapping_name) in enumerate(
                plan.recv_cells
            )
        }

        self._v2f_mat = np.full((plan.edge_count, 2), 0.5)
        self._f2v_mat = np.full((plan.edge_count, 2), 0.5)
        self._recv_mat = np.full((plan.recv_count, 2), 0.5)
        # Posterior beliefs only change when a factor sweep rewrites
        # _f2v_mat, so the matrix is memoised between sweeps (the "after"
        # snapshot of one round doubles as the "before" of the next).
        self._posterior_cache: Optional[np.ndarray] = None

        # Read-only dict views preserving the historical attribute layout.
        per_mapping_rows: Dict[str, Dict[str, int]] = {
            name: {} for name in self._mapping_list
        }
        for (mapping_name, feedback_id), row in self._edge_rows.items():
            per_mapping_rows[mapping_name][feedback_id] = row
        self._f2v = {
            name: _MessageRowView(self, "_f2v_mat", rows)
            for name, rows in per_mapping_rows.items()
        }
        self._v2f = {
            name: _MessageRowView(self, "_v2f_mat", rows)
            for name, rows in per_mapping_rows.items()
        }
        per_peer_rows: Dict[str, Dict[Tuple[str, str], int]] = {
            peer: {} for peer in self.local_graphs
        }
        for (peer, feedback_id, mapping_name), row in self._recv_rows.items():
            per_peer_rows[peer][(feedback_id, mapping_name)] = row
        self._received = {
            peer: _MessageRowView(self, "_recv_mat", rows)
            for peer, rows in per_peer_rows.items()
        }

    def _factor_groups(self) -> List[List[Feedback]]:
        """Feedbacks grouped by compiled-kernel bucket.

        Dense factors bucket by table shape (one :class:`FactorBatch` einsum
        per bucket); count-symmetric :class:`CountFactor` replicas — long
        cycles and parallel paths past the
        :data:`~repro.constants.COUNT_KERNEL_MIN_ARITY` crossover — bucket
        by arity and run through the count-space
        :class:`~repro.factorgraph.plan.CountFactorBatch`, so the
        embedded engine never materialises a ``(2,)**arity`` table either.
        """
        groups: Dict[Tuple, List[Feedback]] = {}
        for feedback in self._feedbacks:
            factor = self._factors[feedback.identifier]
            if isinstance(factor, CountFactor):
                key: Tuple = ("count", factor.arity)
            else:
                key = factor.table.shape
            groups.setdefault(key, []).append(feedback)
        return list(groups.values())

    def _batch_for(self, group: Sequence[Feedback]) -> FactorBatch | CountFactorBatch:
        """The compiled kernel of one bucket (dense einsum or count space)."""
        factors = [self._factors[f.identifier] for f in group]
        if isinstance(factors[0], CountFactor):
            return CountFactorBatch(factors)
        return FactorBatch(factors)

    def _compile_dict_batches(self) -> None:
        """Group the feedback-factor replicas into compiled kernel batches.

        For every batch of same-shape factors we precompute a gather plan:
        for each (target slot, source slot) pair, the list of message cells —
        either the owner's own fresh µ_{v→F} or the last *received* remote
        copy — that feed the batched factor→variable kernel, plus the µ_{F→v}
        cells the results scatter back into.  The inner dicts referenced here
        are created once in ``__init__`` and only ever updated in place, so
        the plan stays valid for the lifetime of the engine.
        """
        # Each entry: (batch, gather plan, scatter plan).  gather[t][m] and
        # scatter[t] are aligned with the batch's factor order.
        self._batches: List[
            Tuple[
                FactorBatch | CountFactorBatch,
                List[List[Optional[List[Tuple[dict, object]]]]],
                List[List[Tuple[dict, str]]],
            ]
        ] = []
        for group in self._factor_groups():
            batch = self._batch_for(group)
            arity = batch.arity
            gather: List[List[Optional[List[Tuple[dict, object]]]]] = []
            scatter: List[List[Tuple[dict, str]]] = []
            for target in range(arity):
                per_source: List[Optional[List[Tuple[dict, object]]]] = []
                targets: List[Tuple[dict, str]] = []
                for feedback in group:
                    target_mapping = feedback.mapping_names[target]
                    if feedback.identifier not in self._f2v[target_mapping]:
                        raise FeedbackError(
                            f"feedback {feedback.identifier!r} missing from the "
                            f"local graph of {target_mapping!r}'s owner"
                        )
                    targets.append((self._f2v[target_mapping], feedback.identifier))
                for source in range(arity):
                    if source == target:
                        per_source.append(None)
                        continue
                    cells: List[Tuple[dict, object]] = []
                    for feedback in group:
                        target_mapping = feedback.mapping_names[target]
                        source_mapping = feedback.mapping_names[source]
                        owner = self._owners[target_mapping]
                        if self._owners[source_mapping] == owner:
                            cells.append(
                                (self._v2f[source_mapping], feedback.identifier)
                            )
                        else:
                            cells.append(
                                (
                                    self._received[owner],
                                    (feedback.identifier, source_mapping),
                                )
                            )
                    per_source.append(cells)
                gather.append(per_source)
                scatter.append(targets)
            self._batches.append((batch, gather, scatter))

    def _compile_array_batches(self) -> None:
        """Kernels for the plan's arity buckets (array backend).

        The gather/scatter index plans live in the compiled
        :class:`~repro.factorgraph.plan.SweepPlan`; the engine only binds
        each bucket to a kernel built from its factor objects — dense
        :class:`FactorBatch` below the crossover, count-space
        :class:`CountFactorBatch` from it on (the plan's bucket family
        matches :func:`~repro.core.feedback.feedback_factor`'s choice of
        factor representation, both keyed on
        :data:`~repro.constants.COUNT_KERNEL_MIN_ARITY`).
        """
        plan = self._plan
        self._kernels: List[FactorBatch | CountFactorBatch] = []
        for bucket in plan.batches:
            factors = [
                self._factors[plan.identifiers[si]]
                for si in bucket.feedback_indices
            ]
            if bucket.use_count_kernel:
                self._kernels.append(CountFactorBatch(factors))
            else:
                self._kernels.append(FactorBatch(factors))
        # Historical introspection view: (kernel, gather, scatter) triples.
        self._batches = [
            (kernel, bucket.gather, bucket.scatter)
            for bucket, kernel in zip(plan.batches, self._kernels)
        ]

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _validate_prior(value, mapping_name: str) -> float:
        if isinstance(value, bool):
            raise FeedbackError(
                f"prior for {mapping_name!r} must be a probability in [0, 1], "
                f"got boolean {value!r}"
            )
        prior = float(value)
        if not 0.0 <= prior <= 1.0:
            raise FeedbackError(
                f"prior for {mapping_name!r} must be a probability in [0, 1], "
                f"got {value!r}"
            )
        return prior

    @classmethod
    def _resolve_prior(
        cls,
        priors: PriorBeliefStore | TMapping[str, float] | float | None,
        mapping_name: str,
    ) -> float:
        if priors is None:
            return 0.5
        if isinstance(priors, PriorBeliefStore):
            # attribute is bound later; the store is queried lazily instead
            raise FeedbackError(
                "pass PriorBeliefStore priors via priors_for_attribute()"
            )
        if isinstance(priors, bool) or isinstance(priors, (int, float)):
            return cls._validate_prior(priors, mapping_name)
        return cls._validate_prior(priors.get(mapping_name, 0.5), mapping_name)

    @classmethod
    def from_prior_store(
        cls,
        feedbacks: Iterable[Feedback],
        store: PriorBeliefStore,
        delta: float = 0.1,
        **kwargs,
    ) -> "EmbeddedMessagePassing":
        """Build an engine whose priors come from a :class:`PriorBeliefStore`."""
        feedback_list = [f for f in feedbacks if f.is_informative]
        if not feedback_list:
            raise FeedbackError("embedded message passing needs informative feedback")
        attribute = feedback_list[0].attribute
        mapping_names = {m for f in feedback_list for m in f.mapping_names}
        priors = {m: store.prior(m, attribute) for m in mapping_names}
        return cls(feedback_list, priors=priors, delta=delta, **kwargs)

    @property
    def mapping_names(self) -> Tuple[str, ...]:
        """All mappings with a correctness variable in the model."""
        return tuple(self._owners)

    @property
    def peer_names(self) -> Tuple[str, ...]:
        return tuple(self.local_graphs)

    def owner_of(self, mapping_name: str) -> str:
        return self._owners[mapping_name]

    @property
    def remote_message_count(self) -> int:
        """Remote transmissions one full round attempts (the paper's
        ``Σ_ci (l_ci − 1)`` summed over all peers)."""
        total = 0
        for feedback in self._feedbacks:
            for mapping_name in feedback.mapping_names:
                sender = self._owners[mapping_name]
                total += sum(
                    1
                    for other in feedback.mapping_names
                    if self._owners[other] != sender
                )
        return total

    def _mapping_selection(self, selection: set) -> np.ndarray:
        """Boolean mask over mapping indices for a phase-1/2 restriction."""
        mask = np.zeros(len(self._mapping_list), dtype=bool)
        for name in selection:
            index = self._mapping_index.get(name)
            if index is not None:
                mask[index] = True
        return mask

    # -- the three phases of a round ----------------------------------------------------

    def _compute_variable_messages(self, mapping_names: Optional[set] = None) -> None:
        """Phase 1: owners recompute µ_{v→F} for their mapping variables.

        Array backend: one zero-aware exclusive segment product over the
        stacked factor→variable matrix, scaled by the per-edge prior rows.
        """
        if self.backend == STATE_DICTS:
            self._compute_variable_messages_dicts(mapping_names)
            return
        fresh = self._executor.variable_sweep(
            self._plan, self._f2v_mat, self._prior_edges
        )
        if mapping_names is not None:
            keep = self._mapping_selection(mapping_names)[self._plan.edge_mapping]
            fresh = np.where(keep[:, None], fresh, self._v2f_mat)
        self._v2f_mat = fresh

    def _compute_variable_messages_dicts(
        self, mapping_names: Optional[set] = None
    ) -> None:
        for mapping_name, per_feedback in self._v2f.items():
            if mapping_names is not None and mapping_name not in mapping_names:
                continue
            prior = self._prior_vectors[mapping_name]
            for feedback_id in per_feedback:
                message = prior.copy()
                for other_id, incoming in self._f2v[mapping_name].items():
                    if other_id == feedback_id:
                        continue
                    message = message * incoming
                per_feedback[feedback_id] = normalize(message)

    def _exchange_messages(self, mapping_names: Optional[set] = None) -> None:
        """Phase 2: send each µ_{v→F} to the other peers replicating F.

        Array backend: one vectorized Bernoulli mask over the precomputed
        transmission list, applied as a fancy-indexed scatter from the
        variable→factor matrix into the received-cell matrix.
        """
        if self.backend == STATE_DICTS:
            self._exchange_messages_dicts(mapping_names)
            return
        plan = self._plan
        if plan.tx_src.size == 0:
            return
        if mapping_names is None:
            src, dest = plan.tx_src, plan.tx_dest
        else:
            keep = self._mapping_selection(mapping_names)[plan.tx_mapping]
            src, dest = plan.tx_src[keep], plan.tx_dest[keep]
        if src.size == 0:
            return
        delivered = self.transport.send_mask(src.size)
        if delivered.all():
            self._recv_mat[dest] = self._v2f_mat[src]
        elif delivered.any():
            self._recv_mat[dest[delivered]] = self._v2f_mat[src[delivered]]

    def _exchange_messages_dicts(self, mapping_names: Optional[set] = None) -> None:
        for feedback in self._feedbacks:
            for mapping_name in feedback.mapping_names:
                if mapping_names is not None and mapping_name not in mapping_names:
                    continue
                sender = self._owners[mapping_name]
                message = self._v2f[mapping_name][feedback.identifier]
                for other_mapping in feedback.mapping_names:
                    recipient = self._owners[other_mapping]
                    if recipient == sender:
                        continue
                    if not self.transport.try_send():
                        continue
                    self._received[recipient][(feedback.identifier, mapping_name)] = (
                        message.copy()
                    )

    def _compute_factor_messages(self) -> None:
        """Phase 3: every replica recomputes µ_{F→v} for its owned variables.

        All replicas of same-shape factors are updated together through the
        plan's arity buckets — the executor runs each bucket's compiled
        :class:`~repro.factorgraph.plan.FactorBatch` /
        :class:`~repro.factorgraph.plan.CountFactorBatch` kernel, the same
        path the vectorized global engine uses — instead of one scalar
        :meth:`Factor.message_to` call per directed message.  The executor
        gathers the kernel operands by fancy indexing into the concatenated
        µ_{v→F} / received pool and scatters the fresh rows back by edge id.
        """
        if self.backend == STATE_DICTS:
            self._compute_factor_messages_dicts()
            return
        pool = self._executor.message_pool(self._plan, self._v2f_mat, self._recv_mat)
        self._executor.factor_sweep(self._plan, self._kernels, pool, self._f2v_mat)
        self._posterior_cache = None

    def _compute_factor_messages_dicts(self) -> None:
        for batch, gather, scatter in self._batches:
            for target in range(batch.arity):
                incoming: List[Optional[np.ndarray]] = []
                for source in range(batch.arity):
                    cells = gather[target][source]
                    if cells is None:
                        incoming.append(None)
                        continue
                    incoming.append(np.stack([store[key] for store, key in cells]))
                fresh = normalize_rows(batch.messages_toward(target, incoming))
                for row, (store, key) in enumerate(scatter[target]):
                    store[key] = fresh[row]

    # -- public API ------------------------------------------------------------------------

    def _posterior_matrix(self) -> np.ndarray:
        """Beliefs of all mapping variables as one ``(mappings, 2)`` matrix.

        Memoised until the next factor sweep; never mutated in place, so
        slices handed out earlier stay valid snapshots.
        """
        if self._posterior_cache is None:
            products = segment_products(self._f2v_mat, self._plan.segment_starts)
            self._posterior_cache = normalize_rows(self._prior_matrix * products)
        return self._posterior_cache

    def posteriors(self) -> Dict[str, float]:
        """Current posterior P(correct) of every mapping variable."""
        if self.backend == STATE_ARRAYS:
            matrix = self._posterior_matrix()
            return {
                name: float(matrix[index, 0])
                for index, name in enumerate(self._mapping_list)
            }
        result: Dict[str, float] = {}
        for mapping_name in self._owners:
            belief = self._prior_vectors[mapping_name].copy()
            for incoming in self._f2v[mapping_name].values():
                belief = belief * incoming
            belief = normalize(belief)
            result[mapping_name] = float(belief[0])
        return result

    def run_round(self, mapping_names: Optional[Iterable[str]] = None) -> float:
        """Run one full round; return the largest posterior change.

        ``mapping_names`` restricts phases 1–2 to the given mappings — the
        primitive the lazy schedule uses to piggyback on query traffic.
        """
        selection = set(mapping_names) if mapping_names is not None else None
        if self.backend == STATE_ARRAYS:
            before = self._posterior_matrix()[:, 0]
            self._compute_variable_messages(selection)
            self._exchange_messages(selection)
            self._compute_factor_messages()
            after = self._posterior_matrix()[:, 0]
            return float(np.abs(after - before).max()) if after.size else 0.0
        before = self.posteriors()
        self._compute_variable_messages(selection)
        self._exchange_messages(selection)
        self._compute_factor_messages()
        after = self.posteriors()
        return max(
            abs(after[name] - before[name]) for name in after
        ) if after else 0.0

    def run(self) -> EmbeddedResult:
        """Iterate rounds until convergence or ``max_rounds``.

        Under message loss a single quiet round may simply mean the
        informative messages were dropped, so convergence requires the
        posterior change to stay below tolerance for a number of consecutive
        rounds inversely proportional to the transport's send probability.
        """
        history: List[Dict[str, float]] = []
        converged = False
        change = float("inf")
        rounds = 0
        quiet_rounds_needed = required_quiet_rounds(self.transport.send_probability)
        quiet_rounds = 0
        for rounds in range(1, self.options.max_rounds + 1):
            change = self.run_round()
            if self.options.record_history:
                history.append(self.posteriors())
            quiet_rounds = quiet_rounds + 1 if change < self.options.tolerance else 0
            if quiet_rounds >= quiet_rounds_needed:
                converged = True
                break
        if not converged and self.options.strict:
            raise ConvergenceError(
                f"embedded message passing did not converge within "
                f"{self.options.max_rounds} rounds (last change {change:.3g})"
            )
        stats = self.transport.statistics
        return EmbeddedResult(
            posteriors=self.posteriors(),
            iterations=rounds,
            converged=converged,
            final_change=change,
            history=history,
            messages_attempted=stats.attempted,
            messages_delivered=stats.delivered,
        )
