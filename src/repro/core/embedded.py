"""Embedded, decentralised message passing (the paper's §4).

Every peer owns the correctness variables of its outgoing mappings, keeps a
replica of each feedback factor its mappings participate in, and exchanges
*remote messages* with the other peers involved in those feedbacks.  One
"iteration" (a round) corresponds to every peer

1. computing its variable→factor messages from its prior and the current
   factor→variable messages,
2. sending each of those messages to the other peers holding a replica of
   the same feedback factor (each transmission succeeding with probability
   ``send_probability`` — the fault-tolerance experiment of Figure 11), and
3. recomputing its factor→variable messages and mapping posteriors from the
   factor replicas, its own fresh messages and the last *received* remote
   messages (initially the unit message, as prescribed in §4.3).

Because every factor replica applies the same sum–product update as the
corresponding factor of the global graph, the fixed points coincide with
those of centralised loopy BP — which is what the tests verify.

Compiled-kernel equivalence contract
------------------------------------
The factor→variable sweep of every round is routed through the same batched
:class:`~repro.factorgraph.compiled.FactorBatch` einsum kernels that power
the vectorized :class:`~repro.factorgraph.sum_product.SumProduct` backend:
the feedback-factor replicas are grouped by table shape once at construction
and each round computes all messages of a group with one ``einsum`` per
target slot.  The kernels evaluate exactly the sum–product expression the
scalar :meth:`repro.factorgraph.factors.Factor.message_to` evaluates, so
posteriors agree with the loop formulation to floating-point accuracy.
Convergence defaults (tolerance, round cap, seeding) are shared with the
centralised engine through :mod:`repro.constants`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_SEED,
    DEFAULT_SEND_PROBABILITY,
    DEFAULT_TOLERANCE,
)
from ..exceptions import ConvergenceError, FeedbackError
from ..factorgraph.compiled import FactorBatch, normalize_rows
from ..factorgraph.factors import Factor
from ..factorgraph.messages import normalize, unit_message
from ..factorgraph.variables import BinaryVariable
from .beliefs import PriorBeliefStore
from .feedback import Feedback, feedback_factor
from .local_graph import LocalFactorGraph, build_local_graphs, mapping_owner
from .pdms_factor_graph import variable_name_for

__all__ = [
    "MessageTransport",
    "TransportStatistics",
    "EmbeddedOptions",
    "EmbeddedResult",
    "EmbeddedMessagePassing",
]


@dataclass
class TransportStatistics:
    """Counts of remote messages attempted, delivered and dropped."""

    attempted: int = 0
    delivered: int = 0
    dropped: int = 0

    def record(self, delivered: bool) -> None:
        self.attempted += 1
        if delivered:
            self.delivered += 1
        else:
            self.dropped += 1

    @property
    def delivery_rate(self) -> float:
        if self.attempted == 0:
            return 1.0
        return self.delivered / self.attempted


class MessageTransport:
    """Unreliable transport between peers.

    Each remote message is delivered independently with probability
    ``send_probability``; dropped messages simply leave the recipient's last
    received value in place, which the algorithm tolerates by design
    (§4.3.2, Figure 11).

    ``seed`` defaults to :data:`repro.constants.DEFAULT_SEED` so lossy runs
    are reproducible unless an explicit seed is supplied (matching the
    centralised engine's fallback rng; pass a distinct seed per repetition
    for independent runs).
    """

    def __init__(
        self,
        send_probability: float = DEFAULT_SEND_PROBABILITY,
        seed: Optional[int] = DEFAULT_SEED,
    ) -> None:
        if not 0.0 < send_probability <= 1.0:
            raise FeedbackError(
                f"send_probability must be in (0, 1], got {send_probability}"
            )
        self.send_probability = send_probability
        self._rng = random.Random(seed)
        self.statistics = TransportStatistics()

    def try_send(self) -> bool:
        """Decide whether one message makes it through; update statistics."""
        delivered = (
            self.send_probability >= 1.0
            or self._rng.random() < self.send_probability
        )
        self.statistics.record(delivered)
        return delivered


@dataclass(frozen=True)
class EmbeddedOptions:
    """Tuning knobs of the embedded message-passing run.

    The defaults are shared with the centralised engine's
    :class:`~repro.factorgraph.sum_product.SumProductOptions` through
    :mod:`repro.constants`, so both formulations stop under the same rule.
    """

    max_rounds: int = DEFAULT_MAX_ITERATIONS
    tolerance: float = DEFAULT_TOLERANCE
    record_history: bool = True
    strict: bool = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise FeedbackError("max_rounds must be >= 1")
        if self.tolerance <= 0:
            raise FeedbackError("tolerance must be positive")


@dataclass
class EmbeddedResult:
    """Outcome of an embedded message-passing run."""

    posteriors: Dict[str, float]
    iterations: int
    converged: bool
    final_change: float
    history: List[Dict[str, float]] = field(default_factory=list)
    messages_attempted: int = 0
    messages_delivered: int = 0

    def probability_correct(self, mapping_name: str) -> float:
        """Posterior P(mapping correct) for the run's attribute."""
        return self.posteriors[mapping_name]

    def history_of(self, mapping_name: str) -> List[float]:
        """Per-round posterior trajectory of one mapping."""
        return [snapshot[mapping_name] for snapshot in self.history]


class EmbeddedMessagePassing:
    """Decentralised sum–product over per-peer local factor graphs.

    Parameters
    ----------
    feedbacks:
        Informative feedback evidence (all for the same attribute).
    priors:
        Prior beliefs (store, dict by mapping name, single float, or None
        for the 0.5 default).
    delta:
        Error-compensation probability Δ used in all feedback factors.
    transport:
        Unreliable message transport; defaults to a perfectly reliable one.
    options:
        Iteration control.
    owners:
        Optional explicit mapping→peer ownership (defaults to each mapping's
        source peer).
    """

    def __init__(
        self,
        feedbacks: Iterable[Feedback],
        priors: PriorBeliefStore | TMapping[str, float] | float | None = None,
        delta: float = 0.1,
        transport: Optional[MessageTransport] = None,
        options: Optional[EmbeddedOptions] = None,
        owners: Optional[TMapping[str, str]] = None,
    ) -> None:
        self.options = options or EmbeddedOptions()
        self.transport = transport or MessageTransport()
        self.delta = delta
        self._feedbacks: List[Feedback] = [f for f in feedbacks if f.is_informative]
        if not self._feedbacks:
            raise FeedbackError("embedded message passing needs informative feedback")
        self.attribute = self._feedbacks[0].attribute
        self.local_graphs: Dict[str, LocalFactorGraph] = build_local_graphs(
            self._feedbacks, attribute=self.attribute, owners=owners
        )
        self._owners: Dict[str, str] = {}
        for peer, fragment in self.local_graphs.items():
            for mapping_name in fragment.owned_mappings:
                self._owners[mapping_name] = peer

        # Priors, as plain vectors [P(correct), P(incorrect)].
        self._prior_vectors: Dict[str, np.ndarray] = {}
        for mapping_name in self._owners:
            prior = self._resolve_prior(priors, mapping_name)
            self._prior_vectors[mapping_name] = np.clip(
                np.array([prior, 1.0 - prior]), 1e-9, 1.0
            )

        # One factor object per feedback (shared by all replicas; the factor
        # table is identical everywhere so sharing is purely an optimisation).
        self._factors: Dict[str, Factor] = {}
        self._feedback_by_id: Dict[str, Feedback] = {}
        for feedback in self._feedbacks:
            variables = [
                BinaryVariable(variable_name_for(m, self.attribute))
                for m in feedback.mapping_names
            ]
            self._factors[feedback.identifier] = feedback_factor(
                feedback, delta, variables
            )
            self._feedback_by_id[feedback.identifier] = feedback

        # Message state.
        #   factor→variable messages held by the owner of the variable:
        #     _f2v[mapping_name][feedback_id]
        #   variable→factor messages computed by the owner each round:
        #     _v2f[mapping_name][feedback_id]
        #   remote messages received by a peer for a (feedback, remote mapping):
        #     _received[peer][(feedback_id, mapping_name)]
        self._f2v: Dict[str, Dict[str, np.ndarray]] = {}
        self._v2f: Dict[str, Dict[str, np.ndarray]] = {}
        for mapping_name, owner in self._owners.items():
            fragment = self.local_graphs[owner]
            feedback_ids = [
                f.identifier for f in fragment.feedbacks_for(mapping_name)
            ]
            self._f2v[mapping_name] = {fid: unit_message(2) for fid in feedback_ids}
            self._v2f[mapping_name] = {fid: unit_message(2) for fid in feedback_ids}
        self._received: Dict[str, Dict[Tuple[str, str], np.ndarray]] = {}
        for peer, fragment in self.local_graphs.items():
            incoming: Dict[Tuple[str, str], np.ndarray] = {}
            for feedback in fragment.feedbacks:
                for mapping_name in feedback.mapping_names:
                    if self._owners.get(mapping_name) == peer:
                        continue
                    incoming[(feedback.identifier, mapping_name)] = unit_message(2)
            self._received[peer] = incoming

        self._compile_batches()

    def _compile_batches(self) -> None:
        """Group the feedback-factor replicas into compiled einsum batches.

        For every batch of same-shape factors we precompute a gather plan:
        for each (target slot, source slot) pair, the list of message cells —
        either the owner's own fresh µ_{v→F} or the last *received* remote
        copy — that feed the batched factor→variable kernel, plus the µ_{F→v}
        cells the results scatter back into.  The inner dicts referenced here
        are created once in ``__init__`` and only ever updated in place, so
        the plan stays valid for the lifetime of the engine.
        """
        by_shape: Dict[Tuple[int, ...], List[Feedback]] = {}
        for feedback in self._feedbacks:
            shape = self._factors[feedback.identifier].table.shape
            by_shape.setdefault(shape, []).append(feedback)
        # Each entry: (batch, gather plan, scatter plan).  gather[t][m] and
        # scatter[t] are aligned with the batch's factor order.
        self._batches: List[
            Tuple[
                FactorBatch,
                List[List[Optional[List[Tuple[dict, object]]]]],
                List[List[Tuple[dict, str]]],
            ]
        ] = []
        for group in by_shape.values():
            batch = FactorBatch([self._factors[f.identifier] for f in group])
            arity = batch.arity
            gather: List[List[Optional[List[Tuple[dict, object]]]]] = []
            scatter: List[List[Tuple[dict, str]]] = []
            for target in range(arity):
                per_source: List[Optional[List[Tuple[dict, object]]]] = []
                targets: List[Tuple[dict, str]] = []
                for feedback in group:
                    target_mapping = feedback.mapping_names[target]
                    if feedback.identifier not in self._f2v[target_mapping]:
                        raise FeedbackError(
                            f"feedback {feedback.identifier!r} missing from the "
                            f"local graph of {target_mapping!r}'s owner"
                        )
                    targets.append((self._f2v[target_mapping], feedback.identifier))
                for source in range(arity):
                    if source == target:
                        per_source.append(None)
                        continue
                    cells: List[Tuple[dict, object]] = []
                    for feedback in group:
                        target_mapping = feedback.mapping_names[target]
                        source_mapping = feedback.mapping_names[source]
                        owner = self._owners[target_mapping]
                        if self._owners[source_mapping] == owner:
                            cells.append(
                                (self._v2f[source_mapping], feedback.identifier)
                            )
                        else:
                            cells.append(
                                (
                                    self._received[owner],
                                    (feedback.identifier, source_mapping),
                                )
                            )
                    per_source.append(cells)
                gather.append(per_source)
                scatter.append(targets)
            self._batches.append((batch, gather, scatter))

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _resolve_prior(
        priors: PriorBeliefStore | TMapping[str, float] | float | None,
        mapping_name: str,
    ) -> float:
        if priors is None:
            return 0.5
        if isinstance(priors, PriorBeliefStore):
            # attribute is bound later; the store is queried lazily instead
            raise FeedbackError(
                "pass PriorBeliefStore priors via priors_for_attribute()"
            )
        if isinstance(priors, (int, float)):
            return float(priors)
        return float(priors.get(mapping_name, 0.5))

    @classmethod
    def from_prior_store(
        cls,
        feedbacks: Iterable[Feedback],
        store: PriorBeliefStore,
        delta: float = 0.1,
        **kwargs,
    ) -> "EmbeddedMessagePassing":
        """Build an engine whose priors come from a :class:`PriorBeliefStore`."""
        feedback_list = [f for f in feedbacks if f.is_informative]
        if not feedback_list:
            raise FeedbackError("embedded message passing needs informative feedback")
        attribute = feedback_list[0].attribute
        mapping_names = {m for f in feedback_list for m in f.mapping_names}
        priors = {m: store.prior(m, attribute) for m in mapping_names}
        return cls(feedback_list, priors=priors, delta=delta, **kwargs)

    @property
    def mapping_names(self) -> Tuple[str, ...]:
        """All mappings with a correctness variable in the model."""
        return tuple(self._owners)

    @property
    def peer_names(self) -> Tuple[str, ...]:
        return tuple(self.local_graphs)

    def owner_of(self, mapping_name: str) -> str:
        return self._owners[mapping_name]

    # -- the three phases of a round ----------------------------------------------------

    def _compute_variable_messages(self, mapping_names: Optional[set] = None) -> None:
        """Phase 1: owners recompute µ_{v→F} for their mapping variables."""
        for mapping_name, per_feedback in self._v2f.items():
            if mapping_names is not None and mapping_name not in mapping_names:
                continue
            prior = self._prior_vectors[mapping_name]
            for feedback_id in per_feedback:
                message = prior.copy()
                for other_id, incoming in self._f2v[mapping_name].items():
                    if other_id == feedback_id:
                        continue
                    message = message * incoming
                per_feedback[feedback_id] = normalize(message)

    def _exchange_messages(self, mapping_names: Optional[set] = None) -> None:
        """Phase 2: send each µ_{v→F} to the other peers replicating F."""
        for feedback in self._feedbacks:
            for mapping_name in feedback.mapping_names:
                if mapping_names is not None and mapping_name not in mapping_names:
                    continue
                sender = self._owners[mapping_name]
                message = self._v2f[mapping_name][feedback.identifier]
                for other_mapping in feedback.mapping_names:
                    recipient = self._owners[other_mapping]
                    if recipient == sender:
                        continue
                    if not self.transport.try_send():
                        continue
                    self._received[recipient][(feedback.identifier, mapping_name)] = (
                        message.copy()
                    )

    def _compute_factor_messages(self) -> None:
        """Phase 3: every replica recomputes µ_{F→v} for its owned variables.

        All replicas of same-shape factors are updated together through the
        compiled :class:`~repro.factorgraph.compiled.FactorBatch` kernels —
        the same einsum path the vectorized global engine uses — instead of
        one scalar :meth:`Factor.message_to` call per directed message.
        """
        for batch, gather, scatter in self._batches:
            for target in range(batch.arity):
                incoming: List[Optional[np.ndarray]] = []
                for source in range(batch.arity):
                    cells = gather[target][source]
                    if cells is None:
                        incoming.append(None)
                        continue
                    incoming.append(np.stack([store[key] for store, key in cells]))
                fresh = normalize_rows(batch.messages_toward(target, incoming))
                for row, (store, key) in enumerate(scatter[target]):
                    store[key] = fresh[row]

    # -- public API ------------------------------------------------------------------------

    def posteriors(self) -> Dict[str, float]:
        """Current posterior P(correct) of every mapping variable."""
        result: Dict[str, float] = {}
        for mapping_name in self._owners:
            belief = self._prior_vectors[mapping_name].copy()
            for incoming in self._f2v[mapping_name].values():
                belief = belief * incoming
            belief = normalize(belief)
            result[mapping_name] = float(belief[0])
        return result

    def run_round(self, mapping_names: Optional[Iterable[str]] = None) -> float:
        """Run one full round; return the largest posterior change.

        ``mapping_names`` restricts phases 1–2 to the given mappings — the
        primitive the lazy schedule uses to piggyback on query traffic.
        """
        selection = set(mapping_names) if mapping_names is not None else None
        before = self.posteriors()
        self._compute_variable_messages(selection)
        self._exchange_messages(selection)
        self._compute_factor_messages()
        after = self.posteriors()
        return max(
            abs(after[name] - before[name]) for name in after
        ) if after else 0.0

    def run(self) -> EmbeddedResult:
        """Iterate rounds until convergence or ``max_rounds``.

        Under message loss a single quiet round may simply mean the
        informative messages were dropped, so convergence requires the
        posterior change to stay below tolerance for a number of consecutive
        rounds inversely proportional to the transport's send probability.
        """
        history: List[Dict[str, float]] = []
        converged = False
        change = float("inf")
        rounds = 0
        send_probability = self.transport.send_probability
        if send_probability >= 1.0:
            required_quiet_rounds = 1
        else:
            required_quiet_rounds = max(2, int(round(2.0 / send_probability)))
        quiet_rounds = 0
        for rounds in range(1, self.options.max_rounds + 1):
            change = self.run_round()
            if self.options.record_history:
                history.append(self.posteriors())
            quiet_rounds = quiet_rounds + 1 if change < self.options.tolerance else 0
            if quiet_rounds >= required_quiet_rounds:
                converged = True
                break
        if not converged and self.options.strict:
            raise ConvergenceError(
                f"embedded message passing did not converge within "
                f"{self.options.max_rounds} rounds (last change {change:.3g})"
            )
        stats = self.transport.statistics
        return EmbeddedResult(
            posteriors=self.posteriors(),
            iterations=rounds,
            converged=converged,
            final_change=change,
            history=history,
            messages_attempted=stats.attempted,
            messages_delivered=stats.delivered,
        )
