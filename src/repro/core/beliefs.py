"""Prior beliefs on mapping correctness and their EM-style updates.

Peers keep a prior probability of correctness for every (mapping, attribute)
pair.  The paper (§4.4) initialises unknown priors at 0.5 (maximum entropy),
lets experts pin validated mappings at 1.0, and updates priors as posterior
evidence accumulates with a simple Expectation-Maximization-flavoured
running average:

    P(m = correct) = (1/k) Σ_{i=1..k} P_i(m = correct | F_i)

so the prior slowly converges towards the average of the observed
posteriors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Tuple

from ..exceptions import ReproError

__all__ = ["PriorBeliefStore", "BeliefKey", "MAXIMUM_ENTROPY_PRIOR"]

#: Prior used when a peer has no information about a mapping (§4.4).
MAXIMUM_ENTROPY_PRIOR = 0.5

#: Keys are (mapping name, attribute name).
BeliefKey = Tuple[str, str]


@dataclass
class _BeliefState:
    """Internal running state of one prior belief."""

    prior: float
    evidence_sum: float = 0.0
    evidence_count: int = 0
    pinned: bool = False


class PriorBeliefStore:
    """Per-(mapping, attribute) prior beliefs with EM-style updates.

    Parameters
    ----------
    default_prior:
        Prior assigned to unseen (mapping, attribute) pairs.
    """

    def __init__(self, default_prior: float = MAXIMUM_ENTROPY_PRIOR) -> None:
        _validate_probability(default_prior, "default_prior")
        self.default_prior = default_prior
        self._beliefs: Dict[BeliefKey, _BeliefState] = {}

    # -- reads ------------------------------------------------------------------------

    def prior(self, mapping_name: str, attribute: str) -> float:
        """Current prior P(mapping correct) for ``attribute``."""
        state = self._beliefs.get((mapping_name, attribute))
        if state is None:
            return self.default_prior
        return state.prior

    def evidence_count(self, mapping_name: str, attribute: str) -> int:
        """How many posterior observations have been folded into the prior."""
        state = self._beliefs.get((mapping_name, attribute))
        return 0 if state is None else state.evidence_count

    def known_keys(self) -> Tuple[BeliefKey, ...]:
        return tuple(self._beliefs)

    # -- writes ------------------------------------------------------------------------

    def set_prior(
        self, mapping_name: str, attribute: str, prior: float, pinned: bool = False
    ) -> None:
        """Set a prior explicitly (e.g. expert-validated mapping, §4.4).

        ``pinned=True`` freezes the prior: later posterior evidence is still
        recorded but never changes the prior (the paper's "always treated as
        correct" case when pinned at 1.0).
        """
        _validate_probability(prior, "prior")
        self._beliefs[(mapping_name, attribute)] = _BeliefState(prior=prior, pinned=pinned)

    def bulk_set(self, priors: TMapping[BeliefKey, float]) -> None:
        """Set many priors at once (convenience for scenario builders)."""
        for (mapping_name, attribute), prior in priors.items():
            self.set_prior(mapping_name, attribute, prior)

    def record_posterior(
        self, mapping_name: str, attribute: str, posterior_correct: float
    ) -> float:
        """Fold a new posterior observation into the prior (EM step, §4.4).

        Returns the updated prior.  The update is the running average of all
        posterior observations so far; the very first observation therefore
        replaces a non-pinned default prior entirely, and subsequent
        observations move it increasingly slowly — the "slow convergence to
        a local maximum likelihood" behaviour the paper describes.
        """
        _validate_probability(posterior_correct, "posterior_correct")
        key = (mapping_name, attribute)
        state = self._beliefs.get(key)
        if state is None:
            state = _BeliefState(prior=self.default_prior)
            self._beliefs[key] = state
        state.evidence_sum += posterior_correct
        state.evidence_count += 1
        if not state.pinned:
            state.prior = state.evidence_sum / state.evidence_count
        return state.prior

    def record_posteriors(
        self, posteriors: TMapping[BeliefKey, float]
    ) -> Dict[BeliefKey, float]:
        """Fold many posterior observations at once; returns updated priors."""
        return {
            key: self.record_posterior(key[0], key[1], value)
            for key, value in posteriors.items()
        }

    # -- misc --------------------------------------------------------------------------

    def snapshot(self) -> Dict[BeliefKey, float]:
        """Copy of all current priors (useful for reports and tests)."""
        return {key: state.prior for key, state in self._beliefs.items()}

    def __len__(self) -> int:
        return len(self._beliefs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PriorBeliefStore(default={self.default_prior}, "
            f"tracked={len(self._beliefs)})"
        )


def _validate_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ReproError(f"{name} must be in [0, 1], got {value}")
