"""Feedback from mapping cycles and parallel paths, and its factor encoding.

This module implements §3.2.1 / §3.3 of the paper:

* A :class:`Feedback` records the outcome (positive / negative / neutral) of
  pushing one attribute around a mapping cycle or down two parallel paths.
* :func:`feedback_factor` turns an observed (non-neutral) feedback into a
  factor over the correctness variables of the involved mappings, using the
  conditional probability table

  ====================================  =================
  assignment of the mapping variables    P(f+ | assignment)
  ====================================  =================
  all mappings correct                   1
  exactly one mapping incorrect          0
  two or more mappings incorrect         Δ
  ====================================  =================

  where Δ is the probability that two or more mapping errors compensate one
  another along the structure (≈ 1 / number of attributes in the schema).
  For an observed *negative* feedback the factor value is
  ``1 − P(f+ | assignment)``.

Neutral feedback (an intermediate schema has no representation for the
attribute) produces no factor; instead the paper prescribes dropping the
correctness probability of the mapping lacking the attribute to zero, which
is handled by :class:`repro.core.quality.MappingQualityAssessor`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..constants import COUNT_KERNEL_MIN_ARITY
from ..exceptions import FeedbackError
from ..factorgraph.factors import CountFactor, Factor
from ..factorgraph.variables import BinaryVariable, CORRECT, INCORRECT, mapping_variable_name
from ..mapping import composition
from ..mapping.mapping import Mapping
from ..pdms.probing import MappingCycle, ParallelPaths

__all__ = [
    "FeedbackKind",
    "StructureKind",
    "Feedback",
    "compensation_probability",
    "positive_feedback_probability",
    "feedback_count_values",
    "feedback_factor",
    "feedback_from_cycle",
    "feedback_from_parallel_paths",
]


class FeedbackKind(str, Enum):
    """Observed outcome of a round-trip comparison."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    NEUTRAL = "neutral"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class StructureKind(str, Enum):
    """Topological structure that produced the feedback."""

    CYCLE = "cycle"
    PARALLEL_PATHS = "parallel-paths"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def compensation_probability(attribute_count: int) -> float:
    """Δ — probability that ≥2 mapping errors compensate along a structure.

    The paper approximates Δ by ``1 / (#attributes − 1)`` reasoning that an
    erroneous mapping points to a uniformly random wrong attribute, so the
    last error "lands back" on the correct attribute with that probability;
    with eleven attributes this gives the 1/10 used in §4.5.  We follow the
    same approximation and clamp it to a sane range.
    """
    if attribute_count < 2:
        raise FeedbackError(
            f"need at least two attributes to define Δ, got {attribute_count}"
        )
    return min(1.0, 1.0 / (attribute_count - 1))


@dataclass(frozen=True)
class Feedback:
    """One piece of evidence gathered from the mapping network.

    Parameters
    ----------
    identifier:
        Unique name of the feedback (used to name the corresponding factor).
    kind:
        Observed outcome (positive / negative / neutral).
    structure:
        Whether it came from a cycle or from parallel paths.
    mapping_names:
        Names of the mappings whose correctness the feedback constrains, in
        traversal order.
    attribute:
        The attribute the feedback is about (fine granularity, §4.1).
    origin:
        Peer that gathered the feedback (used by the embedded scheme).
    """

    identifier: str
    kind: FeedbackKind
    structure: StructureKind
    mapping_names: Tuple[str, ...]
    attribute: str
    origin: str = ""

    def __post_init__(self) -> None:
        if len(self.mapping_names) < 2:
            raise FeedbackError(
                f"feedback {self.identifier!r} needs at least two mappings, "
                f"got {self.mapping_names!r}"
            )
        if len(set(self.mapping_names)) != len(self.mapping_names):
            raise FeedbackError(
                f"feedback {self.identifier!r} lists a mapping twice: "
                f"{self.mapping_names!r}"
            )

    @property
    def is_informative(self) -> bool:
        """Neutral feedback carries no factor-graph evidence."""
        return self.kind is not FeedbackKind.NEUTRAL

    @property
    def size(self) -> int:
        return len(self.mapping_names)

    def variable_names(self) -> Tuple[str, ...]:
        """Factor-graph variable names of the involved mappings.

        The naming convention matches
        :func:`repro.factorgraph.variables.mapping_variable_name`:
        ``m[<mapping name>]@<attribute>``.
        """
        return tuple(f"m[{name}]@{self.attribute}" for name in self.mapping_names)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sign = {"positive": "+", "negative": "-", "neutral": "⊥"}[self.kind.value]
        return f"{self.identifier}{sign}[{' , '.join(self.mapping_names)}]@{self.attribute}"


def positive_feedback_probability(incorrect_count: int, delta: float) -> float:
    """``P(f+ | assignment)`` as a function of how many mappings are incorrect."""
    if incorrect_count < 0:
        raise FeedbackError("incorrect_count cannot be negative")
    if incorrect_count == 0:
        return 1.0
    if incorrect_count == 1:
        return 0.0
    return delta


def feedback_count_values(
    kind: FeedbackKind, delta: float, size: int
) -> np.ndarray:
    """The feedback CPT as a count-value vector ``f(k incorrect)``.

    ``f(k)`` is :func:`positive_feedback_probability` for a positive
    feedback and its complement for a negative one — the full CPT of the
    paper's table in O(size) memory instead of ``2**size``.  This is the
    vector the count-space kernels evaluate directly.
    """
    if not 0.0 <= delta <= 1.0:
        raise FeedbackError(f"Δ must be in [0, 1], got {delta}")
    if kind is FeedbackKind.NEUTRAL:
        raise FeedbackError("neutral feedback has no factor encoding")
    counts = np.arange(size + 1)
    positive = np.where(counts == 0, 1.0, np.where(counts == 1, 0.0, delta))
    values = positive if kind is FeedbackKind.POSITIVE else 1.0 - positive
    return np.clip(values, 0.0, 1.0)


def feedback_factor(
    feedback: Feedback,
    delta: float,
    variables: Optional[Sequence[BinaryVariable]] = None,
) -> Factor:
    """Build the factor encoding an observed feedback.

    ``variables`` may be supplied to reuse variable objects already present
    in a factor graph; otherwise fresh :class:`BinaryVariable` instances are
    created from the feedback's variable names.

    Short structures get a dense :class:`~repro.factorgraph.factors.Factor`
    table (the einsum kernels win there); structures of
    :data:`~repro.constants.COUNT_KERNEL_MIN_ARITY` or more mappings get a
    count-space :class:`~repro.factorgraph.factors.CountFactor`, which every
    engine routes through the count kernels — long cycles and parallel
    paths therefore never materialise a ``(2,)**size`` CPT anywhere.
    """
    if not 0.0 <= delta <= 1.0:
        raise FeedbackError(f"Δ must be in [0, 1], got {delta}")
    if not feedback.is_informative:
        raise FeedbackError(
            f"neutral feedback {feedback.identifier!r} has no factor encoding"
        )
    names = feedback.variable_names()
    if variables is None:
        variables = [BinaryVariable(name) for name in names]
    else:
        variables = list(variables)
        if tuple(v.name for v in variables) != names:
            raise FeedbackError(
                "supplied variables do not match the feedback's mappings: "
                f"{[v.name for v in variables]} vs {list(names)}"
            )
    size = len(variables)
    factor_name = f"feedback({feedback.identifier})"
    if size >= COUNT_KERNEL_MIN_ARITY:
        return CountFactor(
            factor_name,
            tuple(variables),
            feedback_count_values(feedback.kind, delta, size),
        )
    table = np.zeros((2,) * size)
    for states in itertools.product((CORRECT, INCORRECT), repeat=size):
        incorrect = sum(1 for state in states if state == INCORRECT)
        p_positive = positive_feedback_probability(incorrect, delta)
        value = p_positive if feedback.kind is FeedbackKind.POSITIVE else 1.0 - p_positive
        index = tuple(0 if state == CORRECT else 1 for state in states)
        table[index] = value
    # Guard against an identically-zero factor (can only happen for a
    # negative feedback over a single mapping, which __post_init__ forbids).
    table = np.clip(table, 0.0, 1.0)
    return Factor(factor_name, tuple(variables), table)


def feedback_from_cycle(
    cycle: MappingCycle,
    attribute: str,
    identifier: Optional[str] = None,
) -> Feedback:
    """Evaluate a mapping cycle for ``attribute`` and wrap the outcome.

    The outcome is computed by pushing the attribute around the cycle's
    transitive closure (§3.2.1).
    """
    outcome = composition.round_trip_outcome(list(cycle.mappings), attribute)
    kind = FeedbackKind(outcome)
    return Feedback(
        identifier=identifier or f"cycle[{'|'.join(cycle.mapping_names)}]",
        kind=kind,
        structure=StructureKind.CYCLE,
        mapping_names=cycle.mapping_names,
        attribute=attribute,
        origin=cycle.origin,
    )


def feedback_from_parallel_paths(
    paths: ParallelPaths,
    attribute: str,
    identifier: Optional[str] = None,
) -> Feedback:
    """Evaluate a pair of parallel paths for ``attribute`` and wrap the outcome."""
    outcome = composition.parallel_paths_outcome(
        list(paths.first), list(paths.second), attribute
    )
    kind = FeedbackKind(outcome)
    return Feedback(
        identifier=identifier or f"parallel[{'|'.join(paths.mapping_names)}]",
        kind=kind,
        structure=StructureKind.PARALLEL_PATHS,
        mapping_names=paths.mapping_names,
        attribute=attribute,
        origin=paths.source,
    )
