"""Network analysis: from a PDMS to the feedback evidence it can produce.

This is the glue between the PDMS substrate and the probabilistic model:
given a network and an attribute, it enumerates the cycles and parallel
paths (via :mod:`repro.pdms.probing`), evaluates each of them by pushing the
attribute through the transitive closure of its mappings, and returns the
resulting :class:`~repro.core.feedback.Feedback` evidence, ready to be
turned into factors.

It also reports, per mapping, whether the mapping provides *any*
correspondence for the attribute — the paper treats a missing correspondence
as correctness probability zero for that attribute (§3.2.1, the ⊥ case).

Amortised probing
-----------------
Cycle and parallel-path *structures* are attribute-independent (§3.2.1):
only their evaluation — pushing one attribute through the transitive
closure of the traversed correspondences — depends on the attribute.
:class:`NetworkStructureCache` exploits this: it probes the network once per
``(network version, ttl, include_parallel_paths)`` key and derives the
per-attribute :class:`NetworkEvidence` by re-evaluating the cached
structures, so assessing N attributes (or N EM rounds) costs one
exponential enumeration instead of N.

:class:`NeighborhoodStructureCache` is the same idea for the fully
decentralised view of §4.5: each *origin*'s local structures — the cycles
through it and the parallel paths departing from it, exactly what the peer's
own probes can discover — are cached per ``(origin, network version, ttl,
include_parallel_paths)``, so per-peer assessments over many origins,
attributes and EM rounds run exactly one neighbourhood probe per origin and
topology version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..constants import DEFAULT_TTL
from ..exceptions import FeedbackError
from ..mapping.mapping import Mapping
from ..pdms.network import PDMSNetwork
from ..pdms.probing import (
    MappingCycle,
    ParallelPaths,
    find_all_cycles,
    find_all_parallel_paths,
    find_cycles_through,
    find_parallel_paths_from,
    find_parallel_paths_through,
    probe_neighborhood,
    validate_ttl,
)
from .feedback import Feedback, FeedbackKind, feedback_from_cycle, feedback_from_parallel_paths

__all__ = [
    "NetworkEvidence",
    "StructureCacheStatistics",
    "NetworkStructureCache",
    "NeighborhoodStructureCache",
    "analyze_network",
    "analyze_neighborhood",
    "structure_signatures",
]


@dataclass(frozen=True)
class NetworkEvidence:
    """All evidence gathered for one attribute across (part of) a network."""

    attribute: str
    feedbacks: Tuple[Feedback, ...]
    unmappable: Tuple[str, ...]
    cycles: Tuple[MappingCycle, ...] = ()
    parallel_paths: Tuple[ParallelPaths, ...] = ()

    @property
    def informative_feedbacks(self) -> Tuple[Feedback, ...]:
        """Feedbacks that translate into factors (positive or negative)."""
        return tuple(f for f in self.feedbacks if f.is_informative)

    @property
    def positive_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.POSITIVE)

    @property
    def negative_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.NEGATIVE)

    @property
    def neutral_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.NEUTRAL)

    def mappings_with_evidence(self) -> Tuple[str, ...]:
        """Names of mappings constrained by at least one informative feedback."""
        names: Dict[str, None] = {}
        for feedback in self.informative_feedbacks:
            for name in feedback.mapping_names:
                names.setdefault(name, None)
        return tuple(names)


def _unmappable_mappings(network: PDMSNetwork, attribute: str) -> Tuple[str, ...]:
    """Mappings that provide no correspondence for ``attribute`` although
    their source schema declares it."""
    unmappable: List[str] = []
    for mapping in network.mappings:
        source_schema = network.peer(mapping.source).schema
        if not source_schema.has_attribute(attribute):
            continue
        if not mapping.maps_attribute(attribute):
            unmappable.append(mapping.name)
    return tuple(unmappable)


def structure_signatures(
    cycles: Sequence[MappingCycle],
    parallel_paths: Sequence[ParallelPaths],
) -> List[Tuple[str, Tuple[str, ...]]]:
    """``(identifier, mapping names)`` pairs in evidence order.

    This is the naming contract shared by the per-attribute evidence
    (:func:`analyze_network` / :meth:`NetworkStructureCache.evidence_for`)
    and the compiled :class:`~repro.core.batched.AssessmentPlan`: both must
    list the same structures under the same identifiers, index for index,
    for the batched engine to bind evidence to its plan.
    """
    signatures: List[Tuple[str, Tuple[str, ...]]] = [
        (f"f{index}", cycle.mapping_names)
        for index, cycle in enumerate(cycles, start=1)
    ]
    offset = len(cycles)
    signatures.extend(
        (f"f{offset + index}=>", paths.mapping_names)
        for index, paths in enumerate(parallel_paths, start=1)
    )
    return signatures


def _evidence_from_structures(
    cycles: Sequence[MappingCycle],
    parallel_paths: Sequence[ParallelPaths],
    attribute: str,
) -> List[Feedback]:
    signatures = structure_signatures(cycles, parallel_paths)
    feedbacks: List[Feedback] = []
    for (identifier, _), cycle in zip(signatures, cycles):
        feedbacks.append(
            feedback_from_cycle(cycle, attribute, identifier=identifier)
        )
    for (identifier, _), paths in zip(
        signatures[len(cycles):], parallel_paths
    ):
        feedbacks.append(
            feedback_from_parallel_paths(paths, attribute, identifier=identifier)
        )
    return feedbacks


@dataclass
class StructureCacheStatistics:
    """Hit/miss accounting of a :class:`NetworkStructureCache`.

    ``probes`` counts *full* cycle/parallel-path enumerations — the quantity
    the cache exists to minimise; ``hits`` and ``misses`` count lookups.  A
    miss is satisfied either by a full re-probe (``full_refreshes``, always
    equal to ``probes``) or — when the network's mutation log shows only
    mapping-level changes the cache can replay — by an incremental update of
    the affected structures (``partial_refreshes``).
    """

    probes: int = 0
    hits: int = 0
    misses: int = 0
    partial_refreshes: int = 0
    full_refreshes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class NetworkStructureCache:
    """Probe-once cache of a network's cycle / parallel-path structures.

    The cache is keyed on ``(network version, ttl, include_parallel_paths)``:
    a topology mutation (added/removed peer or mapping) bumps
    :attr:`~repro.pdms.network.PDMSNetwork.version` and transparently forces
    a refresh, and :meth:`invalidate` drops the cached structures
    explicitly for mutations the version counter cannot see (e.g. direct
    fiddling with network internals in tests).

    Incremental maintenance
    -----------------------
    When the network's mutation log (:meth:`PDMSNetwork.mutations_since`)
    shows only mapping-level changes since the cached version, the refresh
    updates just the structures touching the mutated mappings instead of
    re-enumerating the whole network:

    * ``remove_mapping`` drops the cycles and parallel paths traversing the
      removed mapping (exact: a structure stays valid iff all its own
      mappings still exist);
    * ``add_mapping`` enumerates only the structures *through the new
      edge*: the cycles from the new mapping's source peer that contain
      the new mapping (every genuinely new cycle must contain it) and —
      when parallel paths are enabled — the parallel-path pairs with one
      branch traversing it
      (:func:`~repro.pdms.probing.find_parallel_paths_through`; every
      genuinely new pair must route a branch through the new edge).
      Unseen structures are appended;
    * ``add_peer`` always falls back to a full re-probe.

    ``statistics.partial_refreshes`` / ``full_refreshes`` record which path
    served each miss.  Incrementally added structures are appended after the
    surviving ones, so feedback identifiers may be numbered differently than
    a fresh probe would number them, and incrementally discovered cycles are
    oriented from the added mapping's source peer (exactly what a real probe
    from that peer reports) rather than from the peer a fresh global
    enumeration happens to visit first.  The structure *set* — up to
    rotation — is identical; both orientations are valid probe outcomes of
    the same nondeterministic discovery the paper describes (§3.2.1).

    Correspondence-level edits (corruptions, repairs) deliberately do *not*
    invalidate: they change how a structure evaluates for an attribute — the
    per-call :meth:`evidence_for` always re-evaluates — not which structures
    exist.
    """

    def __init__(
        self,
        network: PDMSNetwork,
        ttl: int = DEFAULT_TTL,
        include_parallel_paths: Optional[bool] = None,
    ) -> None:
        self.network = network
        # Fail fast: a nonsense ttl would otherwise only surface at the
        # first (possibly much later) probe.
        self.ttl = validate_ttl(ttl)
        self.include_parallel_paths = include_parallel_paths
        self.statistics = StructureCacheStatistics()
        self._key: Optional[Tuple[int, int, bool]] = None
        self._cycles: Tuple[MappingCycle, ...] = ()
        self._parallel_paths: Tuple[ParallelPaths, ...] = ()

    def _resolved_include_parallel_paths(self) -> bool:
        if self.include_parallel_paths is None:
            return self.network.directed
        return self.include_parallel_paths

    @property
    def key(self) -> Optional[Tuple[int, int, bool]]:
        """The ``(version, ttl, include_parallel_paths)`` key of the cached
        structures, or ``None`` when nothing is cached yet.

        Consumers deriving further state from the structures (e.g. the
        compiled :class:`~repro.core.batched.AssessmentPlan` of the quality
        assessor) key their own caches on this value.
        """
        return self._key

    def structures(self) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        """The network's cycles and parallel paths, probing at most once per
        topology version (and only partially when the mutation log allows)."""
        include = self._resolved_include_parallel_paths()
        key = (self.network.version, self.ttl, include)
        if key == self._key:
            self.statistics.hits += 1
            return self._cycles, self._parallel_paths
        self.statistics.misses += 1
        if self._refresh_incrementally(key):
            self.statistics.partial_refreshes += 1
        else:
            self.statistics.probes += 1
            self.statistics.full_refreshes += 1
            self._cycles = find_all_cycles(self.network, ttl=self.ttl)
            self._parallel_paths = (
                find_all_parallel_paths(self.network, ttl=self.ttl) if include else ()
            )
        self._key = key
        return self._cycles, self._parallel_paths

    def _refresh_incrementally(self, key: Tuple[int, int, bool]) -> bool:
        """Replay the mutation log onto the cached structures when possible.

        Returns ``True`` when the cached cycles / parallel paths were brought
        up to ``key`` without a full enumeration; ``False`` requests a full
        re-probe (peer additions, truncated logs, or ttl / parallel-path
        flag changes).
        """
        if self._key is None or self._key[1:] != key[1:]:
            return False
        mutations = self.network.mutations_since(self._key[0])
        if mutations is None or not mutations:
            return False
        include = key[2]
        kinds = {kind for _, kind, _ in mutations}
        if "add_peer" in kinds:
            return False
        cycles = list(self._cycles)
        parallel_paths = list(self._parallel_paths)
        # Canonical keys are only needed to dedupe additions; remove-only
        # logs (the common case) never pay for the sets.
        seen: Optional[set] = None
        seen_paths: Optional[set] = None
        for _, kind, name in mutations:
            if kind == "remove_mapping":
                cycles = [c for c in cycles if name not in c.mapping_names]
                parallel_paths = [
                    p for p in parallel_paths if name not in p.mapping_names
                ]
                seen = None
                seen_paths = None
            elif kind == "add_mapping":
                if not self.network.has_mapping(name):
                    # Added and removed again later in the log; the removal
                    # entry keeps the cached set consistent.
                    continue
                mapping = self.network.mapping(name)
                if seen is None:
                    seen = {cycle.canonical_key() for cycle in cycles}
                for cycle in find_cycles_through(
                    self.network, mapping.source, ttl=self.ttl
                ):
                    if name not in cycle.mapping_names:
                        continue
                    cycle_key = cycle.canonical_key()
                    if cycle_key in seen:
                        continue
                    seen.add(cycle_key)
                    cycles.append(cycle)
                if include:
                    if seen_paths is None:
                        seen_paths = {
                            pair.canonical_key() for pair in parallel_paths
                        }
                    for pair in find_parallel_paths_through(
                        self.network, name, ttl=self.ttl
                    ):
                        pair_key = pair.canonical_key()
                        if pair_key in seen_paths:
                            continue
                        seen_paths.add(pair_key)
                        parallel_paths.append(pair)
            else:  # pragma: no cover - defensive: unknown mutation kind
                return False
        self._cycles = tuple(cycles)
        self._parallel_paths = tuple(parallel_paths)
        return True

    def evidence_for(self, attribute: str) -> NetworkEvidence:
        """Per-attribute evidence derived from the cached structures.

        Equivalent to :func:`analyze_network` — same structures, same
        feedback identifiers — but the exponential enumeration is amortised
        across attributes and EM rounds.
        """
        cycles, parallel_paths = self.structures()
        feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
        return NetworkEvidence(
            attribute=attribute,
            feedbacks=tuple(feedbacks),
            unmappable=_unmappable_mappings(self.network, attribute),
            cycles=cycles,
            parallel_paths=parallel_paths,
        )

    def invalidate(self) -> None:
        """Drop the cached structures; the next lookup re-probes."""
        self._key = None
        self._cycles = ()
        self._parallel_paths = ()


@dataclass
class _NeighborhoodEntry:
    """Cached local view of one origin: its structures at one cache key."""

    key: Tuple[int, int, bool]
    cycles: Tuple[MappingCycle, ...]
    parallel_paths: Tuple[ParallelPaths, ...]


class NeighborhoodStructureCache:
    """Probe-once cache of every peer's *local* structure view (§4.5).

    Where :class:`NetworkStructureCache` caches the global structure set,
    this cache keeps one entry per *origin*: the cycles through the origin
    and the parallel paths departing from it — exactly the evidence the
    peer's own TTL-bounded probes can discover.  Entries are keyed on
    ``(network version, ttl, include_parallel_paths)`` and refreshed lazily,
    so assessing the decentralised view over many origins, attributes and EM
    rounds costs exactly one neighbourhood probe per ``(origin, network
    version)``.

    Incremental maintenance
    -----------------------
    Mirrors :class:`NetworkStructureCache`, replayed per origin from the
    network's mutation log:

    * ``remove_mapping`` filters each origin's cached cycles and parallel
      paths (exact);
    * ``add_mapping`` enumerates the structures *through the new edge*
      once — the cycles containing the new mapping and, when parallel
      paths are enabled, the parallel-path pairs routing a branch through
      it (:func:`~repro.pdms.probing.find_parallel_paths_through`) — then
      grafts onto each cached origin the new cycles passing through it
      (rotated to start at that origin, the orientation its own probe
      would report) and the new pairs departing from it;
    * ``add_peer`` (or a truncated log) always falls back to a full
      re-probe of the origin on its next lookup.

    As with the global cache, incrementally appended cycles are numbered
    after the surviving ones, so feedback identifiers may differ from what a
    fresh probe would produce; the structure *set* is identical.
    """

    def __init__(
        self,
        network: PDMSNetwork,
        ttl: int = DEFAULT_TTL,
        include_parallel_paths: Optional[bool] = None,
    ) -> None:
        self.network = network
        # Fail fast: a nonsense ttl would otherwise only surface at the
        # first (possibly much later) probe.
        self.ttl = validate_ttl(ttl)
        self.include_parallel_paths = include_parallel_paths
        self.statistics = StructureCacheStatistics()
        self._entries: Dict[str, _NeighborhoodEntry] = {}
        # Structures through a freshly added mapping, shared across the
        # origins replaying the same log entry at the same topology version.
        self._added_cycles_memo: Dict[Tuple[int, str, int], Tuple[MappingCycle, ...]] = {}
        self._added_paths_memo: Dict[Tuple[int, str, int], Tuple[ParallelPaths, ...]] = {}
        # The unmappable-mapping scan is origin-independent; share it across
        # the per-origin evidence_for calls of one (attribute, version).
        self._unmappable_memo: Dict[Tuple[str, int], Tuple[str, ...]] = {}

    def _resolved_include_parallel_paths(self) -> bool:
        if self.include_parallel_paths is None:
            return self.network.directed
        return self.include_parallel_paths

    def current_key(self) -> Tuple[int, int, bool]:
        """The ``(version, ttl, include_parallel_paths)`` key a lookup made
        now would be served under (consumers key derived state on this)."""
        return (
            self.network.version,
            self.ttl,
            self._resolved_include_parallel_paths(),
        )

    def structures_for(
        self, origin: str
    ) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        """``origin``'s local cycles and parallel paths, probing at most once
        per topology version (and only partially when the log allows)."""
        key = self.current_key()
        entry = self._entries.get(origin)
        if entry is not None and entry.key == key:
            self.statistics.hits += 1
            return entry.cycles, entry.parallel_paths
        self.statistics.misses += 1
        if entry is not None and self._refresh_incrementally(entry, origin, key):
            self.statistics.partial_refreshes += 1
            entry.key = key
            return entry.cycles, entry.parallel_paths
        self.statistics.probes += 1
        self.statistics.full_refreshes += 1
        cycles = find_cycles_through(self.network, origin, ttl=self.ttl)
        parallel_paths = (
            find_parallel_paths_from(self.network, origin, ttl=self.ttl)
            if key[2]
            else ()
        )
        self._entries[origin] = _NeighborhoodEntry(key, cycles, parallel_paths)
        return cycles, parallel_paths

    def _cycles_through_added(self, entry_version: int, name: str) -> Tuple[MappingCycle, ...]:
        """All cycles containing the freshly added mapping ``name``.

        Enumerated once per (log entry, current topology version) from the
        mapping's source peer — every cycle containing the mapping passes
        through it — and shared across the origins replaying the same entry.
        """
        memo_key = (entry_version, name, self.network.version)
        cached = self._added_cycles_memo.get(memo_key)
        if cached is not None:
            return cached
        mapping = self.network.mapping(name)
        cycles = tuple(
            cycle
            for cycle in find_cycles_through(
                self.network, mapping.source, ttl=self.ttl
            )
            if name in cycle.mapping_names
        )
        if len(self._added_cycles_memo) > 64:
            self._added_cycles_memo.clear()
        self._added_cycles_memo[memo_key] = cycles
        return cycles

    def _paths_through_added(
        self, entry_version: int, name: str
    ) -> Tuple[ParallelPaths, ...]:
        """All parallel-path pairs routing a branch through the freshly added
        mapping ``name``, enumerated once per (log entry, current topology
        version) and shared across the origins replaying the same entry.
        Each pair carries the origin whose probe would discover it."""
        memo_key = (entry_version, name, self.network.version)
        cached = self._added_paths_memo.get(memo_key)
        if cached is not None:
            return cached
        pairs = find_parallel_paths_through(self.network, name, ttl=self.ttl)
        if len(self._added_paths_memo) > 64:
            self._added_paths_memo.clear()
        self._added_paths_memo[memo_key] = pairs
        return pairs

    @staticmethod
    def _rotate_to(cycle: MappingCycle, origin: str) -> Optional[MappingCycle]:
        """``cycle`` re-oriented to start at ``origin`` (``None`` when the
        cycle does not pass through it)."""
        for index, mapping in enumerate(cycle.mappings):
            if mapping.source == origin:
                if index == 0 and cycle.origin == origin:
                    return cycle
                return MappingCycle(
                    origin=origin,
                    mappings=cycle.mappings[index:] + cycle.mappings[:index],
                )
        return None

    def _refresh_incrementally(
        self, entry: _NeighborhoodEntry, origin: str, key: Tuple[int, int, bool]
    ) -> bool:
        """Replay the mutation log onto one origin's entry when possible."""
        if entry.key[1:] != key[1:]:
            return False
        mutations = self.network.mutations_since(entry.key[0])
        if mutations is None or not mutations:
            return False
        kinds = {kind for _, kind, _ in mutations}
        if "add_peer" in kinds:
            return False
        cycles = list(entry.cycles)
        parallel_paths = list(entry.parallel_paths)
        seen: Optional[set] = None
        seen_paths: Optional[set] = None
        for version, kind, name in mutations:
            if kind == "remove_mapping":
                cycles = [c for c in cycles if name not in c.mapping_names]
                parallel_paths = [
                    p for p in parallel_paths if name not in p.mapping_names
                ]
                seen = None
                seen_paths = None
            elif kind == "add_mapping":
                if not self.network.has_mapping(name):
                    # Added and removed again later in the log; the removal
                    # entry keeps the cached set consistent.
                    continue
                if seen is None:
                    seen = {cycle.canonical_key() for cycle in cycles}
                for cycle in self._cycles_through_added(version, name):
                    local = self._rotate_to(cycle, origin)
                    if local is None:
                        continue
                    cycle_key = local.canonical_key()
                    if cycle_key in seen:
                        continue
                    seen.add(cycle_key)
                    cycles.append(local)
                if key[2]:
                    # Parallel paths are only discoverable by the probe of
                    # their shared start peer, so the origin grafts exactly
                    # the new pairs departing from it.
                    if seen_paths is None:
                        seen_paths = {
                            pair.canonical_key() for pair in parallel_paths
                        }
                    for pair in self._paths_through_added(version, name):
                        if pair.source != origin:
                            continue
                        pair_key = pair.canonical_key()
                        if pair_key in seen_paths:
                            continue
                        seen_paths.add(pair_key)
                        parallel_paths.append(pair)
            else:  # pragma: no cover - defensive: unknown mutation kind
                return False
        entry.cycles = tuple(cycles)
        entry.parallel_paths = tuple(parallel_paths)
        return True

    def evidence_for(self, origin: str, attribute: str) -> NetworkEvidence:
        """``origin``'s per-attribute local evidence from the cached view.

        Equivalent to :func:`analyze_neighborhood` — same structures, same
        feedback identifiers — but the neighbourhood probe is amortised
        across attributes and EM rounds.
        """
        cycles, parallel_paths = self.structures_for(origin)
        feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
        memo_key = (attribute, self.network.version)
        unmappable = self._unmappable_memo.get(memo_key)
        if unmappable is None:
            unmappable = _unmappable_mappings(self.network, attribute)
            if len(self._unmappable_memo) > 256:
                self._unmappable_memo.clear()
            self._unmappable_memo[memo_key] = unmappable
        return NetworkEvidence(
            attribute=attribute,
            feedbacks=tuple(feedbacks),
            unmappable=unmappable,
            cycles=cycles,
            parallel_paths=parallel_paths,
        )

    def invalidate(self) -> None:
        """Drop every origin's cached view; the next lookups re-probe."""
        self._entries.clear()
        self._added_cycles_memo.clear()
        self._added_paths_memo.clear()
        self._unmappable_memo.clear()


def analyze_network(
    network: PDMSNetwork,
    attribute: str,
    ttl: int = DEFAULT_TTL,
    include_parallel_paths: Optional[bool] = None,
) -> NetworkEvidence:
    """Gather all feedback evidence for ``attribute`` across ``network``.

    ``include_parallel_paths`` defaults to the network's directedness:
    parallel paths are only meaningful in directed PDMS (§3.3) — in an
    undirected network they already appear as cycles.

    This probes the network from scratch on every call; use a
    :class:`NetworkStructureCache` when gathering evidence for several
    attributes (or repeatedly, as the EM update does) on the same topology.
    """
    if include_parallel_paths is None:
        include_parallel_paths = network.directed
    cycles = find_all_cycles(network, ttl=ttl)
    parallel_paths: Tuple[ParallelPaths, ...] = ()
    if include_parallel_paths:
        parallel_paths = find_all_parallel_paths(network, ttl=ttl)
    feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
    return NetworkEvidence(
        attribute=attribute,
        feedbacks=tuple(feedbacks),
        unmappable=_unmappable_mappings(network, attribute),
        cycles=cycles,
        parallel_paths=parallel_paths,
    )


def analyze_neighborhood(
    network: PDMSNetwork,
    origin: str,
    attribute: str,
    ttl: int = DEFAULT_TTL,
    include_parallel_paths: Optional[bool] = None,
) -> NetworkEvidence:
    """Gather the feedback evidence one peer can see by probing with ``ttl``.

    This is the fully decentralised view: only cycles through ``origin`` and
    parallel paths departing from ``origin`` are considered, which is
    exactly what the peer can learn from its own probes (§3.2.1, §4.5).
    """
    if include_parallel_paths is None:
        include_parallel_paths = network.directed
    probe = probe_neighborhood(network, origin, ttl=ttl)
    parallel_paths = probe.parallel_paths if include_parallel_paths else ()
    feedbacks = _evidence_from_structures(probe.cycles, parallel_paths, attribute)
    return NetworkEvidence(
        attribute=attribute,
        feedbacks=tuple(feedbacks),
        unmappable=_unmappable_mappings(network, attribute),
        cycles=probe.cycles,
        parallel_paths=parallel_paths,
    )
