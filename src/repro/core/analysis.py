"""Network analysis: from a PDMS to the feedback evidence it can produce.

This is the glue between the PDMS substrate and the probabilistic model:
given a network and an attribute, it enumerates the cycles and parallel
paths (via :mod:`repro.pdms.probing`), evaluates each of them by pushing the
attribute through the transitive closure of its mappings, and returns the
resulting :class:`~repro.core.feedback.Feedback` evidence, ready to be
turned into factors.

It also reports, per mapping, whether the mapping provides *any*
correspondence for the attribute — the paper treats a missing correspondence
as correctness probability zero for that attribute (§3.2.1, the ⊥ case).

Amortised probing
-----------------
Cycle and parallel-path *structures* are attribute-independent (§3.2.1):
only their evaluation — pushing one attribute through the transitive
closure of the traversed correspondences — depends on the attribute.
:class:`NetworkStructureCache` exploits this: it probes the network once per
``(network version, ttl, include_parallel_paths)`` key and derives the
per-attribute :class:`NetworkEvidence` by re-evaluating the cached
structures, so assessing N attributes (or N EM rounds) costs one
exponential enumeration instead of N.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import FeedbackError
from ..mapping.mapping import Mapping
from ..pdms.network import PDMSNetwork
from ..pdms.probing import (
    MappingCycle,
    ParallelPaths,
    find_all_cycles,
    find_all_parallel_paths,
    probe_neighborhood,
)
from .feedback import Feedback, FeedbackKind, feedback_from_cycle, feedback_from_parallel_paths

__all__ = [
    "NetworkEvidence",
    "StructureCacheStatistics",
    "NetworkStructureCache",
    "analyze_network",
    "analyze_neighborhood",
]


@dataclass(frozen=True)
class NetworkEvidence:
    """All evidence gathered for one attribute across (part of) a network."""

    attribute: str
    feedbacks: Tuple[Feedback, ...]
    unmappable: Tuple[str, ...]
    cycles: Tuple[MappingCycle, ...] = ()
    parallel_paths: Tuple[ParallelPaths, ...] = ()

    @property
    def informative_feedbacks(self) -> Tuple[Feedback, ...]:
        """Feedbacks that translate into factors (positive or negative)."""
        return tuple(f for f in self.feedbacks if f.is_informative)

    @property
    def positive_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.POSITIVE)

    @property
    def negative_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.NEGATIVE)

    @property
    def neutral_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.NEUTRAL)

    def mappings_with_evidence(self) -> Tuple[str, ...]:
        """Names of mappings constrained by at least one informative feedback."""
        names: Dict[str, None] = {}
        for feedback in self.informative_feedbacks:
            for name in feedback.mapping_names:
                names.setdefault(name, None)
        return tuple(names)


def _unmappable_mappings(network: PDMSNetwork, attribute: str) -> Tuple[str, ...]:
    """Mappings that provide no correspondence for ``attribute`` although
    their source schema declares it."""
    unmappable: List[str] = []
    for mapping in network.mappings:
        source_schema = network.peer(mapping.source).schema
        if not source_schema.has_attribute(attribute):
            continue
        if not mapping.maps_attribute(attribute):
            unmappable.append(mapping.name)
    return tuple(unmappable)


def _evidence_from_structures(
    cycles: Sequence[MappingCycle],
    parallel_paths: Sequence[ParallelPaths],
    attribute: str,
) -> List[Feedback]:
    feedbacks: List[Feedback] = []
    for index, cycle in enumerate(cycles, start=1):
        feedbacks.append(
            feedback_from_cycle(cycle, attribute, identifier=f"f{index}")
        )
    offset = len(cycles)
    for index, paths in enumerate(parallel_paths, start=1):
        feedbacks.append(
            feedback_from_parallel_paths(
                paths, attribute, identifier=f"f{offset + index}=>"
            )
        )
    return feedbacks


@dataclass
class StructureCacheStatistics:
    """Hit/miss accounting of a :class:`NetworkStructureCache`.

    ``probes`` counts actual cycle/parallel-path enumerations — the quantity
    the cache exists to minimise; ``hits`` and ``misses`` count lookups.
    """

    probes: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class NetworkStructureCache:
    """Probe-once cache of a network's cycle / parallel-path structures.

    The cache is keyed on ``(network version, ttl, include_parallel_paths)``:
    a topology mutation (added/removed peer or mapping) bumps
    :attr:`~repro.pdms.network.PDMSNetwork.version` and transparently forces
    a re-probe, and :meth:`invalidate` drops the cached structures
    explicitly for mutations the version counter cannot see (e.g. direct
    fiddling with network internals in tests).

    Correspondence-level edits (corruptions, repairs) deliberately do *not*
    invalidate: they change how a structure evaluates for an attribute — the
    per-call :meth:`evidence_for` always re-evaluates — not which structures
    exist.
    """

    def __init__(
        self,
        network: PDMSNetwork,
        ttl: int = 6,
        include_parallel_paths: Optional[bool] = None,
    ) -> None:
        self.network = network
        self.ttl = ttl
        self.include_parallel_paths = include_parallel_paths
        self.statistics = StructureCacheStatistics()
        self._key: Optional[Tuple[int, int, bool]] = None
        self._cycles: Tuple[MappingCycle, ...] = ()
        self._parallel_paths: Tuple[ParallelPaths, ...] = ()

    def _resolved_include_parallel_paths(self) -> bool:
        if self.include_parallel_paths is None:
            return self.network.directed
        return self.include_parallel_paths

    def structures(self) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        """The network's cycles and parallel paths, probing at most once per
        topology version."""
        include = self._resolved_include_parallel_paths()
        key = (self.network.version, self.ttl, include)
        if key == self._key:
            self.statistics.hits += 1
            return self._cycles, self._parallel_paths
        self.statistics.misses += 1
        self.statistics.probes += 1
        self._cycles = find_all_cycles(self.network, ttl=self.ttl)
        self._parallel_paths = (
            find_all_parallel_paths(self.network, ttl=self.ttl) if include else ()
        )
        self._key = key
        return self._cycles, self._parallel_paths

    def evidence_for(self, attribute: str) -> NetworkEvidence:
        """Per-attribute evidence derived from the cached structures.

        Equivalent to :func:`analyze_network` — same structures, same
        feedback identifiers — but the exponential enumeration is amortised
        across attributes and EM rounds.
        """
        cycles, parallel_paths = self.structures()
        feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
        return NetworkEvidence(
            attribute=attribute,
            feedbacks=tuple(feedbacks),
            unmappable=_unmappable_mappings(self.network, attribute),
            cycles=cycles,
            parallel_paths=parallel_paths,
        )

    def invalidate(self) -> None:
        """Drop the cached structures; the next lookup re-probes."""
        self._key = None
        self._cycles = ()
        self._parallel_paths = ()


def analyze_network(
    network: PDMSNetwork,
    attribute: str,
    ttl: int = 6,
    include_parallel_paths: Optional[bool] = None,
) -> NetworkEvidence:
    """Gather all feedback evidence for ``attribute`` across ``network``.

    ``include_parallel_paths`` defaults to the network's directedness:
    parallel paths are only meaningful in directed PDMS (§3.3) — in an
    undirected network they already appear as cycles.

    This probes the network from scratch on every call; use a
    :class:`NetworkStructureCache` when gathering evidence for several
    attributes (or repeatedly, as the EM update does) on the same topology.
    """
    if include_parallel_paths is None:
        include_parallel_paths = network.directed
    cycles = find_all_cycles(network, ttl=ttl)
    parallel_paths: Tuple[ParallelPaths, ...] = ()
    if include_parallel_paths:
        parallel_paths = find_all_parallel_paths(network, ttl=ttl)
    feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
    return NetworkEvidence(
        attribute=attribute,
        feedbacks=tuple(feedbacks),
        unmappable=_unmappable_mappings(network, attribute),
        cycles=cycles,
        parallel_paths=parallel_paths,
    )


def analyze_neighborhood(
    network: PDMSNetwork,
    origin: str,
    attribute: str,
    ttl: int = 6,
    include_parallel_paths: Optional[bool] = None,
) -> NetworkEvidence:
    """Gather the feedback evidence one peer can see by probing with ``ttl``.

    This is the fully decentralised view: only cycles through ``origin`` and
    parallel paths departing from ``origin`` are considered, which is
    exactly what the peer can learn from its own probes (§3.2.1, §4.5).
    """
    if include_parallel_paths is None:
        include_parallel_paths = network.directed
    probe = probe_neighborhood(network, origin, ttl=ttl)
    parallel_paths = probe.parallel_paths if include_parallel_paths else ()
    feedbacks = _evidence_from_structures(probe.cycles, parallel_paths, attribute)
    return NetworkEvidence(
        attribute=attribute,
        feedbacks=tuple(feedbacks),
        unmappable=_unmappable_mappings(network, attribute),
        cycles=probe.cycles,
        parallel_paths=parallel_paths,
    )
