"""Network analysis: from a PDMS to the feedback evidence it can produce.

This is the glue between the PDMS substrate and the probabilistic model:
given a network and an attribute, it enumerates the cycles and parallel
paths, evaluates each of them by pushing the attribute through the
transitive closure of its mappings, and returns the resulting
:class:`~repro.core.feedback.Feedback` evidence, ready to be turned into
factors.  It also reports, per mapping, whether the mapping provides *any*
correspondence for the attribute — the paper treats a missing correspondence
as correctness probability zero for that attribute (§3.2.1, the ⊥ case).

Structure discovery is organised along two independent axes:

**Cache scope** — *which* structures a consumer sees.
:class:`NetworkStructureCache` caches the experimenter's global view: every
cycle and parallel-path pair in the network, keyed on ``(network version,
ttl, include_parallel_paths)``.  :class:`NeighborhoodStructureCache` caches
the fully decentralised view of §4.5, one entry per *origin* peer: the
cycles through the origin and the parallel paths departing from it —
exactly what the peer's own TTL-bounded probes can discover.  Structures
are attribute-independent (§3.2.1), so either cache amortises one
enumeration across all attributes and EM rounds of a topology version; both
replay the network's typed event log (:func:`repro.pdms.discovery.replay_structure_log`
over :meth:`~repro.pdms.network.PDMSNetwork.events_since`) to refresh
incrementally when only mappings changed.

**Discovery executor** — *how* the probe work runs.  Neither cache walks
the network itself: both lower their full probes and their
incremental-refresh deltas onto :class:`~repro.pdms.discovery.ProbePlan`
frontiers of per-origin work units, executed by a pluggable
:class:`~repro.pdms.discovery.DiscoveryExecutor` (``probe_executor=``,
defaulting through ``REPRO_PROBE_EXECUTOR`` /
:data:`repro.constants.DEFAULT_PROBE_EXECUTOR`): ``"serial"`` runs the
walkers in-process, result-identical to the historical recursive sweeps;
``"process"`` shards the frontier by origin across a ``multiprocessing``
pool and merges the streamed results canonically, so both executors produce
identical structure sets at every cache scope.

The axes compose freely — any scope runs on any executor — and
:attr:`StructureCacheStatistics` accounts for both: lookups/refreshes per
scope, work units / sharded probes / probe wall time per executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..constants import DEFAULT_TTL
from ..exceptions import FeedbackError
from ..mapping.mapping import Mapping
from ..pdms.network import PDMSNetwork
from ..reliability import ReliabilityStatistics
from ..pdms.discovery import (
    TopologySnapshot,
    plan_full_probe,
    plan_mapping_delta,
    plan_neighborhood_probe,
    replay_structure_log,
    resolve_discovery_executor,
)
from ..pdms.probing import (
    MappingCycle,
    ParallelPaths,
    validate_ttl,
)
from .feedback import Feedback, FeedbackKind, feedback_from_cycle, feedback_from_parallel_paths

__all__ = [
    "NetworkEvidence",
    "StructureCacheStatistics",
    "NetworkStructureCache",
    "NeighborhoodStructureCache",
    "analyze_network",
    "analyze_neighborhood",
    "structure_signatures",
]


@dataclass(frozen=True)
class NetworkEvidence:
    """All evidence gathered for one attribute across (part of) a network."""

    attribute: str
    feedbacks: Tuple[Feedback, ...]
    unmappable: Tuple[str, ...]
    cycles: Tuple[MappingCycle, ...] = ()
    parallel_paths: Tuple[ParallelPaths, ...] = ()

    @property
    def informative_feedbacks(self) -> Tuple[Feedback, ...]:
        """Feedbacks that translate into factors (positive or negative)."""
        return tuple(f for f in self.feedbacks if f.is_informative)

    @property
    def positive_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.POSITIVE)

    @property
    def negative_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.NEGATIVE)

    @property
    def neutral_count(self) -> int:
        return sum(1 for f in self.feedbacks if f.kind is FeedbackKind.NEUTRAL)

    def mappings_with_evidence(self) -> Tuple[str, ...]:
        """Names of mappings constrained by at least one informative feedback."""
        names: Dict[str, None] = {}
        for feedback in self.informative_feedbacks:
            for name in feedback.mapping_names:
                names.setdefault(name, None)
        return tuple(names)


def _unmappable_mappings(network: PDMSNetwork, attribute: str) -> Tuple[str, ...]:
    """Mappings that provide no correspondence for ``attribute`` although
    their source schema declares it."""
    unmappable: List[str] = []
    for mapping in network.mappings:
        source_schema = network.peer(mapping.source).schema
        if not source_schema.has_attribute(attribute):
            continue
        if not mapping.maps_attribute(attribute):
            unmappable.append(mapping.name)
    return tuple(unmappable)


def structure_signatures(
    cycles: Sequence[MappingCycle],
    parallel_paths: Sequence[ParallelPaths],
) -> List[Tuple[str, Tuple[str, ...]]]:
    """``(identifier, mapping names)`` pairs in evidence order.

    This is the naming contract shared by the per-attribute evidence
    (:func:`analyze_network` / :meth:`NetworkStructureCache.evidence_for`)
    and the compiled :class:`~repro.core.batched.AssessmentPlan`: both must
    list the same structures under the same identifiers, index for index,
    for the batched engine to bind evidence to its plan.
    """
    signatures: List[Tuple[str, Tuple[str, ...]]] = [
        (f"f{index}", cycle.mapping_names)
        for index, cycle in enumerate(cycles, start=1)
    ]
    offset = len(cycles)
    signatures.extend(
        (f"f{offset + index}=>", paths.mapping_names)
        for index, paths in enumerate(parallel_paths, start=1)
    )
    return signatures


def _evidence_from_structures(
    cycles: Sequence[MappingCycle],
    parallel_paths: Sequence[ParallelPaths],
    attribute: str,
) -> List[Feedback]:
    signatures = structure_signatures(cycles, parallel_paths)
    feedbacks: List[Feedback] = []
    for (identifier, _), cycle in zip(signatures, cycles):
        feedbacks.append(
            feedback_from_cycle(cycle, attribute, identifier=identifier)
        )
    for (identifier, _), paths in zip(
        signatures[len(cycles):], parallel_paths
    ):
        feedbacks.append(
            feedback_from_parallel_paths(paths, attribute, identifier=identifier)
        )
    return feedbacks


@dataclass
class StructureCacheStatistics:
    """Lookup and probe-work accounting of a structure cache.

    ``probes`` counts *full* cycle/parallel-path enumerations — the quantity
    the cache exists to minimise; ``hits`` and ``misses`` count lookups.  A
    miss is satisfied either by a full re-probe (``full_refreshes``, always
    equal to ``probes``) or — when the network's mutation log shows only
    mapping-level changes the cache can replay — by an incremental update of
    the affected structures (``partial_refreshes``).

    The remaining fields account for the probe *work* the discovery executor
    performed on the cache's behalf: ``work_units`` counts the
    :class:`~repro.pdms.discovery.ProbeWorkUnit`\\ s executed (full probes
    and incremental deltas alike), ``sharded_probes`` the plan runs that
    actually fanned out to a worker pool (an inlined small plan is not
    sharded), and ``probe_seconds`` / ``last_probe_seconds`` the wall time
    spent inside plan runs — cumulative and for the most recent run.

    ``reliability`` accumulates the fault / retry / fallback accounting of
    a chaos-hardened executor (see
    :class:`~repro.reliability.ResilientDiscoveryExecutor`); it stays
    all-zero under fault-free executors.
    """

    probes: int = 0
    hits: int = 0
    misses: int = 0
    partial_refreshes: int = 0
    full_refreshes: int = 0
    work_units: int = 0
    sharded_probes: int = 0
    probe_seconds: float = 0.0
    last_probe_seconds: float = 0.0
    reliability: ReliabilityStatistics = field(
        default_factory=ReliabilityStatistics
    )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class _ProbeDriver:
    """Shared probe-execution plumbing of both structure caches.

    Owns the resolved :class:`~repro.pdms.discovery.DiscoveryExecutor`, a
    per-topology-version memo of the network snapshot plans are built on,
    and the probe-work accounting: every plan — full probe, neighbourhood
    batch or incremental delta — runs through :meth:`run`, which times it
    and updates the cache's :class:`StructureCacheStatistics`.
    """

    def __init__(
        self,
        network: PDMSNetwork,
        ttl: int,
        statistics: StructureCacheStatistics,
        probe_executor: object = None,
        probe_workers: Optional[int] = None,
        shard_timeout: Optional[float] = None,
        fault_plan: object = None,
    ) -> None:
        self.network = network
        self.ttl = ttl
        self.statistics = statistics
        self.executor = resolve_discovery_executor(
            probe_executor,
            workers=probe_workers,
            shard_timeout=shard_timeout,
            fault_plan=fault_plan,
        )
        self._snapshot: Optional[Tuple[int, TopologySnapshot]] = None

    def snapshot(self) -> TopologySnapshot:
        """The network's current topology snapshot, rebuilt only on mutation."""
        version = self.network.version
        if self._snapshot is None or self._snapshot[0] != version:
            self._snapshot = (version, TopologySnapshot.of(self.network))
        return self._snapshot[1]

    def run(self, plan):
        started = time.perf_counter()
        run = self.executor.run(plan)
        elapsed = time.perf_counter() - started
        stats = self.statistics
        stats.work_units += len(plan.work_units)
        stats.probe_seconds += elapsed
        stats.last_probe_seconds = elapsed
        if run.sharded:
            stats.sharded_probes += 1
        # Duck-typed: only the chaos-hardened executors expose per-run
        # reliability accounting (faults survived, retries, fallbacks).
        survived = getattr(self.executor, "last_run_statistics", None)
        if survived is not None:
            stats.reliability.merge(survived)
        return run

    def full_probe(
        self, include_parallel_paths: bool
    ) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        """The whole network's structures via one full-probe frontier."""
        plan = plan_full_probe(
            self.snapshot(), ttl=self.ttl, include_parallel_paths=include_parallel_paths
        )
        return self.run(plan).merged()

    def neighborhood_probe(
        self, origins: Sequence[str], include_parallel_paths: bool
    ) -> Dict[str, Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]]:
        """Each origin's local structures, batched into one (possibly
        sharded) neighbourhood plan."""
        plan = plan_neighborhood_probe(
            self.snapshot(),
            origins,
            ttl=self.ttl,
            include_parallel_paths=include_parallel_paths,
        )
        run = self.run(plan)
        return {
            unit.subject: (outcome.cycles, outcome.parallel_paths)
            for unit, outcome in zip(plan.work_units, run.outcomes)
        }

    def structures_through(
        self, mapping_name: str, include_parallel_paths: bool
    ) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        """The structures through a freshly added mapping (the graft set of
        an incremental refresh), via a mapping-delta plan."""
        plan = plan_mapping_delta(
            self.snapshot(),
            mapping_name,
            ttl=self.ttl,
            include_parallel_paths=include_parallel_paths,
        )
        return self.run(plan).merged()


class NetworkStructureCache:
    """Probe-once cache of a network's cycle / parallel-path structures.

    The cache is keyed on ``(network version, ttl, include_parallel_paths)``:
    a topology mutation (added/removed peer or mapping) bumps
    :attr:`~repro.pdms.network.PDMSNetwork.version` and transparently forces
    a refresh, and :meth:`invalidate` drops the cached structures
    explicitly for mutations the version counter cannot see (e.g. direct
    fiddling with network internals in tests).

    Incremental maintenance
    -----------------------
    When the network's typed event log (:meth:`PDMSNetwork.events_since`)
    shows only mapping-level changes since the cached version, the refresh
    updates just the structures touching the mutated mappings instead of
    re-enumerating the whole network:

    * :class:`~repro.pdms.events.MappingRemoved` drops the cycles and
      parallel paths traversing the removed mapping (exact: a structure
      stays valid iff all its own mappings still exist);
    * :class:`~repro.pdms.events.MappingAdded` enumerates only the
      structures *through the new edge*: the cycles from the new
      mapping's source peer that contain the new mapping (every genuinely
      new cycle must contain it) and — when parallel paths are enabled —
      the parallel-path pairs with one branch traversing it (a
      :func:`~repro.pdms.discovery.plan_mapping_delta` frontier; every
      genuinely new pair must route a branch through the new edge).
      Unseen structures are appended;
    * :class:`~repro.pdms.events.PeerAdded` /
      :class:`~repro.pdms.events.PeerRemoved` always fall back to a full
      re-probe — peer churn changes the reachable neighbourhood itself.

    Both the full probes and the incremental deltas run through the cache's
    discovery executor (``probe_executor=``); the replay itself is the
    shared :func:`~repro.pdms.discovery.replay_structure_log`.

    ``statistics.partial_refreshes`` / ``full_refreshes`` record which path
    served each miss.  Incrementally added structures are appended after the
    surviving ones, so feedback identifiers may be numbered differently than
    a fresh probe would number them, and incrementally discovered cycles are
    oriented from the added mapping's source peer (exactly what a real probe
    from that peer reports) rather than from the peer a fresh global
    enumeration happens to visit first.  The structure *set* — up to
    rotation — is identical; both orientations are valid probe outcomes of
    the same nondeterministic discovery the paper describes (§3.2.1).

    Correspondence-level edits (corruptions, repairs) deliberately do *not*
    invalidate: they change how a structure evaluates for an attribute — the
    per-call :meth:`evidence_for` always re-evaluates — not which structures
    exist.
    """

    def __init__(
        self,
        network: PDMSNetwork,
        ttl: int = DEFAULT_TTL,
        include_parallel_paths: Optional[bool] = None,
        probe_executor: object = None,
        probe_workers: Optional[int] = None,
        shard_timeout: Optional[float] = None,
        fault_plan: object = None,
    ) -> None:
        self.network = network
        # Fail fast: a nonsense ttl would otherwise only surface at the
        # first (possibly much later) probe.
        self.ttl = validate_ttl(ttl)
        self.include_parallel_paths = include_parallel_paths
        self.statistics = StructureCacheStatistics()
        self._driver = _ProbeDriver(
            network,
            self.ttl,
            self.statistics,
            probe_executor,
            probe_workers,
            shard_timeout,
            fault_plan,
        )
        self._key: Optional[Tuple[int, int, bool]] = None
        self._cycles: Tuple[MappingCycle, ...] = ()
        self._parallel_paths: Tuple[ParallelPaths, ...] = ()

    @property
    def probe_executor(self):
        """The resolved :class:`~repro.pdms.discovery.DiscoveryExecutor`
        running this cache's probe plans."""
        return self._driver.executor

    def _resolved_include_parallel_paths(self) -> bool:
        if self.include_parallel_paths is None:
            return self.network.directed
        return self.include_parallel_paths

    @property
    def key(self) -> Optional[Tuple[int, int, bool]]:
        """The ``(version, ttl, include_parallel_paths)`` key of the cached
        structures, or ``None`` when nothing is cached yet.

        Consumers deriving further state from the structures (e.g. the
        compiled :class:`~repro.core.batched.AssessmentPlan` of the quality
        assessor) key their own caches on this value.
        """
        return self._key

    def structures(self) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        """The network's cycles and parallel paths, probing at most once per
        topology version (and only partially when the mutation log allows)."""
        include = self._resolved_include_parallel_paths()
        key = (self.network.version, self.ttl, include)
        if key == self._key:
            self.statistics.hits += 1
            return self._cycles, self._parallel_paths
        self.statistics.misses += 1
        if self._refresh_incrementally(key):
            self.statistics.partial_refreshes += 1
        else:
            self.statistics.probes += 1
            self.statistics.full_refreshes += 1
            self._cycles, self._parallel_paths = self._driver.full_probe(include)
        self._key = key
        return self._cycles, self._parallel_paths

    def _refresh_incrementally(self, key: Tuple[int, int, bool]) -> bool:
        """Replay the mutation log onto the cached structures when possible.

        Returns ``True`` when the cached cycles / parallel paths were brought
        up to ``key`` without a full enumeration; ``False`` requests a full
        re-probe (peer additions, truncated logs, or ttl / parallel-path
        flag changes).  The replay is the shared
        :func:`~repro.pdms.discovery.replay_structure_log`; the graft sets of
        added mappings are mapping-delta plans run through the cache's
        discovery executor.
        """
        if self._key is None or self._key[1:] != key[1:]:
            return False
        mutations = self.network.events_since(self._key[0])
        if mutations is None or not mutations:
            return False
        include = key[2]
        refreshed = replay_structure_log(
            mutations,
            self._cycles,
            self._parallel_paths,
            include_parallel_paths=include,
            has_mapping=self.network.has_mapping,
            structures_through=lambda version, name: self._driver.structures_through(
                name, include
            ),
        )
        if refreshed is None:
            return False
        self._cycles, self._parallel_paths = refreshed
        return True

    def evidence_for(self, attribute: str) -> NetworkEvidence:
        """Per-attribute evidence derived from the cached structures.

        Equivalent to :func:`analyze_network` — same structures, same
        feedback identifiers — but the exponential enumeration is amortised
        across attributes and EM rounds.
        """
        cycles, parallel_paths = self.structures()
        feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
        return NetworkEvidence(
            attribute=attribute,
            feedbacks=tuple(feedbacks),
            unmappable=_unmappable_mappings(self.network, attribute),
            cycles=cycles,
            parallel_paths=parallel_paths,
        )

    def invalidate(self) -> None:
        """Drop the cached structures; the next lookup re-probes."""
        self._key = None
        self._cycles = ()
        self._parallel_paths = ()


@dataclass
class _NeighborhoodEntry:
    """Cached local view of one origin: its structures at one cache key."""

    key: Tuple[int, int, bool]
    cycles: Tuple[MappingCycle, ...]
    parallel_paths: Tuple[ParallelPaths, ...]


class NeighborhoodStructureCache:
    """Probe-once cache of every peer's *local* structure view (§4.5).

    Where :class:`NetworkStructureCache` caches the global structure set,
    this cache keeps one entry per *origin*: the cycles through the origin
    and the parallel paths departing from it — exactly the evidence the
    peer's own TTL-bounded probes can discover.  Entries are keyed on
    ``(network version, ttl, include_parallel_paths)`` and refreshed lazily,
    so assessing the decentralised view over many origins, attributes and EM
    rounds costs exactly one neighbourhood probe per ``(origin, network
    version)``.

    Incremental maintenance
    -----------------------
    Mirrors :class:`NetworkStructureCache`, replayed per origin from the
    network's mutation log:

    * ``remove_mapping`` filters each origin's cached cycles and parallel
      paths (exact);
    * ``add_mapping`` enumerates the structures *through the new edge*
      once — a :func:`~repro.pdms.discovery.plan_mapping_delta` frontier
      yielding the cycles containing the new mapping and, when parallel
      paths are enabled, the parallel-path pairs routing a branch through
      it — then grafts onto each cached origin the new cycles passing
      through it (rotated to start at that origin, the orientation its own
      probe would report) and the new pairs departing from it;
    * ``add_peer`` (or a truncated log) always falls back to a full
      re-probe of the origin on its next lookup.

    Full probes and deltas run through the cache's discovery executor
    (``probe_executor=``); :meth:`warm` batches many origins' pending full
    probes into one frontier so a sharded executor fans them out together
    instead of origin-by-origin.

    As with the global cache, incrementally appended cycles are numbered
    after the surviving ones, so feedback identifiers may differ from what a
    fresh probe would produce; the structure *set* is identical.
    """

    def __init__(
        self,
        network: PDMSNetwork,
        ttl: int = DEFAULT_TTL,
        include_parallel_paths: Optional[bool] = None,
        probe_executor: object = None,
        probe_workers: Optional[int] = None,
        shard_timeout: Optional[float] = None,
        fault_plan: object = None,
    ) -> None:
        self.network = network
        # Fail fast: a nonsense ttl would otherwise only surface at the
        # first (possibly much later) probe.
        self.ttl = validate_ttl(ttl)
        self.include_parallel_paths = include_parallel_paths
        self.statistics = StructureCacheStatistics()
        self._driver = _ProbeDriver(
            network,
            self.ttl,
            self.statistics,
            probe_executor,
            probe_workers,
            shard_timeout,
            fault_plan,
        )
        self._entries: Dict[str, _NeighborhoodEntry] = {}
        # Structures through a freshly added mapping, shared across the
        # origins replaying the same log entry at the same topology version.
        self._delta_memo: Dict[
            Tuple[int, str, int, bool],
            Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]],
        ] = {}
        # The unmappable-mapping scan is origin-independent; share it across
        # the per-origin evidence_for calls of one (attribute, version).
        self._unmappable_memo: Dict[Tuple[str, int], Tuple[str, ...]] = {}

    @property
    def probe_executor(self):
        """The resolved :class:`~repro.pdms.discovery.DiscoveryExecutor`
        running this cache's probe plans."""
        return self._driver.executor

    def _resolved_include_parallel_paths(self) -> bool:
        if self.include_parallel_paths is None:
            return self.network.directed
        return self.include_parallel_paths

    def current_key(self) -> Tuple[int, int, bool]:
        """The ``(version, ttl, include_parallel_paths)`` key a lookup made
        now would be served under (consumers key derived state on this)."""
        return (
            self.network.version,
            self.ttl,
            self._resolved_include_parallel_paths(),
        )

    def structures_for(
        self, origin: str
    ) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        """``origin``'s local cycles and parallel paths, probing at most once
        per topology version (and only partially when the log allows)."""
        key = self.current_key()
        entry = self._entries.get(origin)
        if entry is not None and entry.key == key:
            self.statistics.hits += 1
            return entry.cycles, entry.parallel_paths
        self.statistics.misses += 1
        if entry is not None and self._refresh_incrementally(entry, origin, key):
            self.statistics.partial_refreshes += 1
            entry.key = key
            return entry.cycles, entry.parallel_paths
        self.statistics.probes += 1
        self.statistics.full_refreshes += 1
        cycles, parallel_paths = self._driver.neighborhood_probe((origin,), key[2])[
            origin
        ]
        self._entries[origin] = _NeighborhoodEntry(key, cycles, parallel_paths)
        return cycles, parallel_paths

    def warm(self, origins: Sequence[str]) -> None:
        """Bring many origins' entries up to the current key in one pass.

        Fresh entries are left untouched (and unaccounted: no lookup
        happens), refreshable entries replay the mutation log exactly as a
        lazy lookup would, and the remaining origins' full probes are
        batched into a *single* neighbourhood frontier — the plan a sharded
        executor fans out across its worker pool.  Per-origin statistics
        (``misses`` / ``probes`` / ``partial_refreshes`` /
        ``full_refreshes``) are identical to probing the origins one
        :meth:`structures_for` call at a time.
        """
        key = self.current_key()
        pending: List[str] = []
        for origin in dict.fromkeys(origins):
            entry = self._entries.get(origin)
            if entry is not None and entry.key == key:
                continue
            if entry is not None and self._refresh_incrementally(entry, origin, key):
                self.statistics.misses += 1
                self.statistics.partial_refreshes += 1
                entry.key = key
                continue
            pending.append(origin)
        if not pending:
            return
        probed = self._driver.neighborhood_probe(tuple(pending), key[2])
        for origin in pending:
            cycles, parallel_paths = probed[origin]
            self.statistics.misses += 1
            self.statistics.probes += 1
            self.statistics.full_refreshes += 1
            self._entries[origin] = _NeighborhoodEntry(key, cycles, parallel_paths)

    def _structures_through_added(
        self, entry_version: int, name: str, include_parallel_paths: bool
    ) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        """The structures through the freshly added mapping ``name`` — the
        cycles containing it (oriented from its source peer) and the pairs
        routing a branch through it, each pair carrying the origin whose
        probe would discover it.

        Enumerated once per (log entry, current topology version) via a
        mapping-delta plan and shared across the origins replaying the same
        entry.
        """
        memo_key = (entry_version, name, self.network.version, include_parallel_paths)
        cached = self._delta_memo.get(memo_key)
        if cached is not None:
            return cached
        structures = self._driver.structures_through(name, include_parallel_paths)
        if len(self._delta_memo) > 64:
            self._delta_memo.clear()
        self._delta_memo[memo_key] = structures
        return structures

    @staticmethod
    def _rotate_to(cycle: MappingCycle, origin: str) -> Optional[MappingCycle]:
        """``cycle`` re-oriented to start at ``origin`` (``None`` when the
        cycle does not pass through it)."""
        for index, mapping in enumerate(cycle.mappings):
            if mapping.source == origin:
                if index == 0 and cycle.origin == origin:
                    return cycle
                return MappingCycle(
                    origin=origin,
                    mappings=cycle.mappings[index:] + cycle.mappings[:index],
                )
        return None

    def _refresh_incrementally(
        self, entry: _NeighborhoodEntry, origin: str, key: Tuple[int, int, bool]
    ) -> bool:
        """Replay the mutation log onto one origin's entry when possible.

        The replay is the shared
        :func:`~repro.pdms.discovery.replay_structure_log`, localised to the
        origin's view: grafted cycles are rotated to start at the origin
        (the orientation its own probe would report; cycles not passing
        through it are dropped), and grafted pairs are kept only when they
        depart from the origin — parallel paths are only discoverable by
        the probe of their shared start peer.
        """
        if entry.key[1:] != key[1:]:
            return False
        mutations = self.network.events_since(entry.key[0])
        if mutations is None or not mutations:
            return False
        include = key[2]
        refreshed = replay_structure_log(
            mutations,
            entry.cycles,
            entry.parallel_paths,
            include_parallel_paths=include,
            has_mapping=self.network.has_mapping,
            structures_through=lambda version, name: self._structures_through_added(
                version, name, include
            ),
            adapt_cycle=lambda cycle: self._rotate_to(cycle, origin),
            adapt_path=lambda pair: pair if pair.source == origin else None,
        )
        if refreshed is None:
            return False
        entry.cycles, entry.parallel_paths = refreshed
        return True

    def evidence_for(self, origin: str, attribute: str) -> NetworkEvidence:
        """``origin``'s per-attribute local evidence from the cached view.

        Equivalent to :func:`analyze_neighborhood` — same structures, same
        feedback identifiers — but the neighbourhood probe is amortised
        across attributes and EM rounds.
        """
        cycles, parallel_paths = self.structures_for(origin)
        feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
        memo_key = (attribute, self.network.version)
        unmappable = self._unmappable_memo.get(memo_key)
        if unmappable is None:
            unmappable = _unmappable_mappings(self.network, attribute)
            if len(self._unmappable_memo) > 256:
                self._unmappable_memo.clear()
            self._unmappable_memo[memo_key] = unmappable
        return NetworkEvidence(
            attribute=attribute,
            feedbacks=tuple(feedbacks),
            unmappable=unmappable,
            cycles=cycles,
            parallel_paths=parallel_paths,
        )

    def invalidate(self) -> None:
        """Drop every origin's cached view; the next lookups re-probe."""
        self._entries.clear()
        self._delta_memo.clear()
        self._unmappable_memo.clear()


def analyze_network(
    network: PDMSNetwork,
    attribute: str,
    ttl: int = DEFAULT_TTL,
    include_parallel_paths: Optional[bool] = None,
    probe_executor: object = None,
    probe_workers: Optional[int] = None,
) -> NetworkEvidence:
    """Gather all feedback evidence for ``attribute`` across ``network``.

    ``include_parallel_paths`` defaults to the network's directedness:
    parallel paths are only meaningful in directed PDMS (§3.3) — in an
    undirected network they already appear as cycles.

    The enumeration is a full-probe plan run through ``probe_executor``
    (default: the configured discovery executor); all executors yield the
    same evidence, identifiers included.

    This probes the network from scratch on every call; use a
    :class:`NetworkStructureCache` when gathering evidence for several
    attributes (or repeatedly, as the EM update does) on the same topology.
    """
    if include_parallel_paths is None:
        include_parallel_paths = network.directed
    executor = resolve_discovery_executor(probe_executor, workers=probe_workers)
    plan = plan_full_probe(
        network, ttl=ttl, include_parallel_paths=include_parallel_paths
    )
    cycles, parallel_paths = executor.run(plan).merged()
    feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
    return NetworkEvidence(
        attribute=attribute,
        feedbacks=tuple(feedbacks),
        unmappable=_unmappable_mappings(network, attribute),
        cycles=cycles,
        parallel_paths=parallel_paths,
    )


def analyze_neighborhood(
    network: PDMSNetwork,
    origin: str,
    attribute: str,
    ttl: int = DEFAULT_TTL,
    include_parallel_paths: Optional[bool] = None,
    probe_executor: object = None,
    probe_workers: Optional[int] = None,
) -> NetworkEvidence:
    """Gather the feedback evidence one peer can see by probing with ``ttl``.

    This is the fully decentralised view: only cycles through ``origin`` and
    parallel paths departing from ``origin`` are considered, which is
    exactly what the peer can learn from its own probes (§3.2.1, §4.5).
    The probe is a one-origin neighbourhood plan run through
    ``probe_executor`` (default: the configured discovery executor).
    """
    if include_parallel_paths is None:
        include_parallel_paths = network.directed
    executor = resolve_discovery_executor(probe_executor, workers=probe_workers)
    plan = plan_neighborhood_probe(
        network, (origin,), ttl=ttl, include_parallel_paths=include_parallel_paths
    )
    run = executor.run(plan)
    (outcome,) = run.outcomes
    cycles, parallel_paths = outcome.cycles, outcome.parallel_paths
    feedbacks = _evidence_from_structures(cycles, parallel_paths, attribute)
    return NetworkEvidence(
        attribute=attribute,
        feedbacks=tuple(feedbacks),
        unmappable=_unmappable_mappings(network, attribute),
        cycles=cycles,
        parallel_paths=parallel_paths,
    )
