"""Mapping quality assessment and θ-based routing decisions.

The :class:`MappingQualityAssessor` is the user-facing entry point of the
core contribution.  Given a PDMS network it

1. gathers cycle / parallel-path evidence for the attributes of interest
   through a :class:`~repro.core.analysis.NetworkStructureCache`, so the
   exponential structure enumeration runs once per topology version instead
   of once per attribute and per EM round,
2. runs the decentralised embedded message passing — all attributes at once
   on one compiled :class:`~repro.core.batched.AssessmentPlan` and stacked
   :class:`~repro.core.batched.BatchedEmbeddedMessagePassing` engine for
   multi-attribute sweeps, or per attribute through
   :mod:`repro.core.embedded` (the parity reference, and the single-attribute
   path), both lowering to the shared :mod:`repro.factorgraph.plan` IR and
   executing through the assessor-wide ``executor`` choice,
3. exposes the posterior correctness probabilities, both programmatically
   and as a quality oracle pluggable into the
   :class:`~repro.pdms.routing.QueryRouter`, and
4. optionally folds the posteriors back into the peers' prior beliefs
   (EM update, §4.4).

Mappings whose source schema declares an attribute but that provide no
correspondence for it get probability zero for that attribute (the ⊥ rule
of §3.2.1); mappings with no evidence at all fall back to their prior.
Topology mutations bump :attr:`~repro.pdms.network.PDMSNetwork.version` and
re-probe automatically; call :meth:`MappingQualityAssessor.invalidate` after
out-of-band network surgery.

Besides the global (experimenter's) view, the assessor exposes the fully
decentralised per-peer decision of §4.5: :meth:`assess_local` judges one
origin's own outgoing mappings from the evidence its own probes can see,
and :meth:`assess_locals` / :meth:`assess_local_all` run that decision for
many origins at once — one neighbourhood probe per (origin, network
version) through a :class:`~repro.core.analysis.NeighborhoodStructureCache`
and one block-diagonal
:class:`~repro.core.batched.BlockedEmbeddedMessagePassing` run with one
disjoint lane per origin.  Both views share the same resolution order
(⊥ rule → posterior → prior).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..constants import DEFAULT_SEED, DEFAULT_TTL
from ..exceptions import FactorGraphError, FeedbackError, ReproError
from ..mapping.mapping import Mapping
from ..pdms.network import PDMSNetwork
from ..pdms.routing import QueryRouter, RoutingPolicy
from .analysis import (
    NeighborhoodStructureCache,
    NetworkEvidence,
    NetworkStructureCache,
    analyze_network,
    structure_signatures,
)
from .batched import (
    AssessmentLane,
    AssessmentPlan,
    BatchedEmbeddedMessagePassing,
    BlockedEmbeddedMessagePassing,
    compile_assessment_plan,
)
from .beliefs import PriorBeliefStore
from .embedded import EmbeddedMessagePassing, EmbeddedOptions, EmbeddedResult, MessageTransport
from .feedback import compensation_probability

__all__ = ["AttributeAssessment", "MappingQualityAssessor"]


@dataclass
class AttributeAssessment:
    """Inference outcome for a single attribute."""

    attribute: str
    evidence: NetworkEvidence
    result: Optional[EmbeddedResult]
    posteriors: Dict[str, float]
    unmappable: Tuple[str, ...]

    @property
    def converged(self) -> bool:
        return self.result.converged if self.result is not None else True

    @property
    def iterations(self) -> int:
        return self.result.iterations if self.result is not None else 0


class MappingQualityAssessor:
    """Derives P(mapping correct) per attribute and answers θ decisions.

    Parameters
    ----------
    network:
        The PDMS under assessment.
    priors:
        Prior belief store shared with the peers; created empty (all priors
        at the maximum-entropy 0.5) when omitted.
    delta:
        Error-compensation probability Δ.  When ``None`` it is derived per
        attribute count of the network's schemas via
        :func:`~repro.core.feedback.compensation_probability`.
    ttl:
        Probe TTL used when gathering cycles and parallel paths.
    send_probability / seed:
        Reliability of the simulated transport used by the embedded runs.
        ``seed`` defaults to :data:`repro.constants.DEFAULT_SEED` so lossy
        assessments are reproducible unless an explicit seed is supplied
        (``seed=None`` opts into OS entropy).
    options:
        Iteration control for the embedded runs.
    use_structure_cache:
        When ``True`` (default), cycle / parallel-path discovery runs
        through a :class:`~repro.core.analysis.NetworkStructureCache` and is
        amortised across attributes and EM rounds; ``False`` restores the
        probe-per-call behaviour (mainly useful for benchmarking the cache).
    use_batched_engine:
        When ``True`` (default), multi-attribute assessments
        (:meth:`assess_attributes`, :meth:`assess_all_attributes`, the EM
        loop of :meth:`update_priors`) compile the cached structures once
        into an :class:`~repro.core.batched.AssessmentPlan` per network
        version and run every attribute simultaneously on one
        :class:`~repro.core.batched.BatchedEmbeddedMessagePassing` engine;
        ``False`` restores the engine-per-attribute behaviour (the parity
        reference, also used for benchmarking).  Requires the structure
        cache; single-attribute :meth:`assess_attribute` always uses the
        sequential engine.
    executor:
        Executor of the compiled sweep plans — an executor name
        (``"numpy"`` / ``"threaded"``), an executor object, or ``None``
        for the configured default
        (:data:`repro.constants.DEFAULT_EXECUTOR`).  Forwarded to every
        engine the assessor builds; bit-identical either way.
    probe_executor / probe_workers:
        Discovery executor of the probe plans — ``"serial"`` /
        ``"process"``, a :class:`~repro.pdms.discovery.DiscoveryExecutor`
        object, or ``None`` for the configured default
        (:data:`repro.constants.DEFAULT_PROBE_EXECUTOR`).  Forwarded to
        both structure caches; structure sets are identical across
        executors, so the choice only affects probe wall-clock.
        ``probe_workers`` sizes the process pool (``None`` = CPU count).
    shard_timeout / fault_plan:
        Fault policy of the probe fan-outs, forwarded to both structure
        caches: the per-shard deadline in seconds (``None`` for
        :data:`repro.constants.DEFAULT_SHARD_TIMEOUT`) and a chaos
        :class:`~repro.reliability.FaultPlan` (object, spec string, or
        ``None`` for the ``REPRO_FAULT_PLAN`` environment variable).
        Configuring a fault plan upgrades a ``"process"`` probe executor
        to the :class:`~repro.reliability.ResilientDiscoveryExecutor`;
        structure sets and posteriors stay bit-identical to a fault-free
        serial run, and the faults survived are tallied in
        :meth:`reliability_statistics`.
    """

    def __init__(
        self,
        network: PDMSNetwork,
        priors: Optional[PriorBeliefStore] = None,
        delta: Optional[float] = 0.1,
        ttl: int = DEFAULT_TTL,
        send_probability: float = 1.0,
        seed: Optional[int] = DEFAULT_SEED,
        options: Optional[EmbeddedOptions] = None,
        include_parallel_paths: Optional[bool] = None,
        use_structure_cache: bool = True,
        use_batched_engine: bool = True,
        executor: object = None,
        probe_executor: object = None,
        probe_workers: Optional[int] = None,
        shard_timeout: Optional[float] = None,
        fault_plan: object = None,
    ) -> None:
        self.network = network
        # Note: an empty PriorBeliefStore is falsy (it defines __len__), so
        # an explicit None check is required here.
        self.priors = priors if priors is not None else PriorBeliefStore()
        self.delta = delta
        self.ttl = ttl
        self.send_probability = send_probability
        self.seed = seed
        self.options = options or EmbeddedOptions()
        # Whether parallel-path feedback is gathered in addition to cycles.
        # ``None`` defaults to the network's directedness (§3.3).  On very
        # dense networks the number of parallel-path structures explodes and
        # the loopy approximation degrades — the paper's advice (§5.1.2) is
        # to bound the evidence considered; passing ``False`` here keeps the
        # cycle evidence only.
        self.include_parallel_paths = include_parallel_paths
        self.use_structure_cache = use_structure_cache
        self.use_batched_engine = use_batched_engine
        #: Executor of the compiled sweep plans (``"numpy"`` / ``"threaded"``
        #: / an executor object / ``None`` for the configured default),
        #: forwarded to every engine the assessor builds.  Executors are
        #: bit-identical; the choice only affects wall-clock.
        self.executor = executor
        #: Discovery executor of the probe plans (``"serial"`` /
        #: ``"process"`` / an executor object / ``None`` for the configured
        #: default), forwarded to both structure caches.  Executors produce
        #: identical structure sets; the choice only affects wall-clock.
        self.probe_executor = probe_executor
        self.probe_workers = probe_workers
        #: Fault policy of the probe fan-outs (per-shard deadline + chaos
        #: plan), forwarded to both structure caches' discovery executors.
        self.shard_timeout = shard_timeout
        self.fault_plan = fault_plan
        self.structure_cache = NetworkStructureCache(
            network,
            ttl=ttl,
            include_parallel_paths=include_parallel_paths,
            probe_executor=probe_executor,
            probe_workers=probe_workers,
            shard_timeout=shard_timeout,
            fault_plan=fault_plan,
        )
        self.neighborhood_cache = NeighborhoodStructureCache(
            network,
            ttl=ttl,
            include_parallel_paths=include_parallel_paths,
            probe_executor=probe_executor,
            probe_workers=probe_workers,
            shard_timeout=shard_timeout,
            fault_plan=fault_plan,
        )
        self._assessments: Dict[str, AttributeAssessment] = {}
        self._plan: Optional[AssessmentPlan] = None
        self._plan_key: Optional[Tuple[int, int, bool]] = None
        #: How many times an :class:`AssessmentPlan` was compiled — exactly
        #: once per (network version, ttl, parallel-path flag) when the
        #: batched engine is in use, however many attributes and EM rounds
        #: are assessed.
        self.plan_compile_count = 0
        # Compiled plan of the decentralised per-origin view: one block of
        # structures per origin, keyed on (cache key, origins tuple).
        self._local_plan: Optional[AssessmentPlan] = None
        self._local_plan_key: Optional[Tuple] = None
        self._local_blocks: Dict[str, Tuple[int, ...]] = {}
        #: :class:`AssessmentPlan` compiles of the local view — once per
        #: (network version, ttl, parallel-path flag, origins) however many
        #: attributes and EM rounds are assessed locally.
        self.local_plan_compile_count = 0
        #: Per-round edge-row counts of the most recent batched
        #: :meth:`assess_locals` run — the blocked engine's frozen-block
        #: compaction trajectory (shrinks as origins converge); empty until
        #: a batched local sweep has run.
        self.last_local_round_edge_counts: Tuple[int, ...] = ()
        # Cached per-attribute local views backing the local routing oracle,
        # keyed on the neighbourhood cache key so topology mutations refresh
        # them automatically.
        self._local_views: Dict[str, Tuple[Tuple, Dict[str, Dict[str, float]]]] = {}

    # -- inference --------------------------------------------------------------------------

    def _delta_for(self, attribute: str) -> float:
        if self.delta is not None:
            return self.delta
        counts = [
            len(peer.schema)
            for peer in self.network.peers
            if peer.schema.has_attribute(attribute)
        ]
        average = sum(counts) / len(counts) if counts else 10
        return compensation_probability(max(int(round(average)), 2))

    def assess_attribute(self, attribute: str) -> AttributeAssessment:
        """Run the full pipeline (probe → factor graph → embedded BP) for one
        attribute and cache the outcome.

        The probe step is served by the assessor's structure cache: the
        cycles and parallel paths are enumerated once per topology version
        and only re-*evaluated* for each attribute.
        """
        if self.use_structure_cache:
            evidence = self.structure_cache.evidence_for(attribute)
        else:
            evidence = analyze_network(
                self.network,
                attribute,
                ttl=self.ttl,
                include_parallel_paths=self.include_parallel_paths,
            )
        informative = evidence.informative_feedbacks
        posteriors: Dict[str, float] = {}
        result: Optional[EmbeddedResult] = None
        if informative:
            mapping_names = {m for f in informative for m in f.mapping_names}
            prior_map = {m: self.priors.prior(m, attribute) for m in mapping_names}
            engine = EmbeddedMessagePassing(
                informative,
                priors=prior_map,
                delta=self._delta_for(attribute),
                transport=MessageTransport(self.send_probability, seed=self.seed),
                options=self.options,
                executor=self.executor,
            )
            result = engine.run()
            posteriors = dict(result.posteriors)
        assessment = AttributeAssessment(
            attribute=attribute,
            evidence=evidence,
            result=result,
            posteriors=posteriors,
            unmappable=evidence.unmappable,
        )
        self._assessments[attribute] = assessment
        return assessment

    def _resolve_local_view(
        self,
        origin: str,
        attribute: str,
        unmappable: Sequence[str],
        posteriors: TMapping[str, float],
    ) -> Dict[str, float]:
        """The §4.5 decision over ``origin``'s own outgoing mappings.

        Applies the module's resolution order to every own mapping for which
        the attribute is in scope: the ⊥ rule first (the origin's schema
        declares the attribute but the mapping provides no correspondence →
        0.0), then the posterior from the embedded run, then the prior
        belief.  Shared by the sequential and the batched local paths so
        both return identical mapping sets and values.
        """
        unmappable_set = set(unmappable)
        view: Dict[str, float] = {}
        for mapping in self.network.peer(origin).outgoing_mappings:
            name = mapping.name
            if name in unmappable_set:
                view[name] = 0.0
            elif name in posteriors:
                view[name] = posteriors[name]
            elif mapping.maps_attribute(attribute):
                view[name] = self.priors.prior(name, attribute)
        return view

    def _local_evidence(self, origin: str, attribute: str) -> NetworkEvidence:
        if self.use_structure_cache:
            return self.neighborhood_cache.evidence_for(origin, attribute)
        from .analysis import analyze_neighborhood

        return analyze_neighborhood(
            self.network,
            origin,
            attribute,
            ttl=self.ttl,
            include_parallel_paths=self.include_parallel_paths,
        )

    def assess_local(self, origin: str, attribute: str) -> Dict[str, float]:
        """Posteriors for ``origin``'s own outgoing mappings, from its local view.

        This is the fully decentralised, per-peer decision of §4.5: only the
        cycles and parallel paths discovered by probing from ``origin`` are
        used, and only the origin's *own* outgoing mappings are judged.  Use
        this (rather than :meth:`assess_attribute`) when peers use
        heterogeneous attribute names, e.g. the EON ontology network — the
        attribute is interpreted in the origin's schema.

        The returned dict follows the module's resolution order for every
        own mapping in scope: 0.0 under the ⊥ rule, the posterior where the
        local run produced one, the prior belief otherwise.  The probe is
        served by the per-origin neighbourhood cache (at most one
        enumeration per origin and topology version); batch over origins
        with :meth:`assess_locals` / :meth:`assess_local_all`.
        """
        evidence = self._local_evidence(origin, attribute)
        informative = evidence.informative_feedbacks
        posteriors: Dict[str, float] = {}
        if informative:
            mapping_names = {m for f in informative for m in f.mapping_names}
            prior_map = {m: self.priors.prior(m, attribute) for m in mapping_names}
            engine = EmbeddedMessagePassing(
                informative,
                priors=prior_map,
                delta=self._delta_for(attribute),
                transport=MessageTransport(self.send_probability, seed=self.seed),
                options=self.options,
                executor=self.executor,
            )
            posteriors = engine.run().posteriors
        return self._resolve_local_view(
            origin, attribute, evidence.unmappable, posteriors
        )

    @staticmethod
    def _instance_name(origin: str, mapping_name: str) -> str:
        """Per-origin mapping instance name of the block-diagonal local plan.

        Instances are only ever mapped back by stripping the known origin
        prefix (never by parsing); pathological peer names that make two
        distinct (origin, mapping) pairs collide surface as the blocked
        engine's block-diagonality error rather than silent misbinding.
        """
        return f"{origin}::{mapping_name}"

    def _local_assessment_plan(
        self, origins: Sequence[str]
    ) -> Tuple[AssessmentPlan, Dict[str, Tuple[int, ...]]]:
        """Compiled plan of the per-origin view: one structure block per
        origin, concatenated in origin order.

        Mapping names are replaced by per-origin *instances*
        (``origin::mapping``) so the blocks are disjoint — each origin's
        local inference is an independent subproblem, exactly as in the
        per-call sequential engines — and the
        :class:`~repro.core.batched.BlockedEmbeddedMessagePassing` engine
        can pack them block-diagonally.  Compiled at most once per
        ``(network version, ttl, parallel-path flag, origins)`` and reused
        across attributes and EM rounds.  Each origin's block keeps its own
        probe enumeration order and cycle orientation, so per-origin lanes
        consume their rng streams exactly like the sequential per-call
        engines.
        """
        origins = tuple(origins)
        key = self.neighborhood_cache.current_key() + (origins,)
        if key == self._local_plan_key and self._local_plan is not None:
            return self._local_plan, self._local_blocks
        from .local_graph import mapping_owner

        signatures: List[Tuple[str, Tuple[str, ...]]] = []
        owners: Dict[str, str] = {}
        blocks: Dict[str, Tuple[int, ...]] = {}
        for origin in origins:
            cycles, parallel_paths = self.neighborhood_cache.structures_for(origin)
            block = structure_signatures(cycles, parallel_paths)
            start = len(signatures)
            for identifier, names in block:
                instances = tuple(
                    self._instance_name(origin, name) for name in names
                )
                for instance, name in zip(instances, names):
                    owners.setdefault(instance, mapping_owner(name))
                signatures.append((identifier, instances))
            blocks[origin] = tuple(range(start, start + len(block)))
        plan = compile_assessment_plan(signatures, owners=owners)
        self._local_plan = plan
        self._local_blocks = blocks
        self._local_plan_key = key
        self.local_plan_compile_count += 1
        return plan, blocks

    def assess_locals(
        self, origins: Iterable[str], attribute: str
    ) -> Dict[str, Dict[str, float]]:
        """The §4.5 decision of several origins in one stacked run.

        Semantically identical to ``{o: assess_local(o, attribute) for o in
        origins}`` — every peer judges only its own outgoing mappings from
        the structures its own probes discover — but with the batched engine
        (the default) all origins run simultaneously as disjoint lanes of
        one block-diagonal
        :class:`~repro.core.batched.BlockedEmbeddedMessagePassing` over one
        compiled per-origin plan, each lane drawing from its own rng stream
        seeded like the sequential per-call transports (so lossy runs replay
        bit for bit).  Probing is amortised to one neighbourhood enumeration
        per (origin, network version).
        """
        from dataclasses import replace

        origin_list = list(dict.fromkeys(origins))
        if not (self.use_batched_engine and self.use_structure_cache):
            return {
                origin: self.assess_local(origin, attribute)
                for origin in origin_list
            }
        # Batch the pending neighbourhood probes into one frontier so a
        # sharded discovery executor fans them out across its pool instead
        # of probing origin-by-origin inside the plan compilation below.
        self.neighborhood_cache.warm(origin_list)
        try:
            plan, blocks = self._local_assessment_plan(origin_list)
        except FactorGraphError:
            # Long structures no longer reject compilation (they route
            # through the count-space kernels at any arity), so this
            # fallback is purely defensive against degenerate plans.
            return {
                origin: self.assess_local(origin, attribute)
                for origin in origin_list
            }
        evidences = {
            origin: self.neighborhood_cache.evidence_for(origin, attribute)
            for origin in origin_list
        }
        delta = self._delta_for(attribute)
        lanes = []
        for origin in origin_list:
            # Per-lane priors keyed by the lane's own mapping instances —
            # built alongside the renaming so no instance name is parsed.
            lane_priors: Dict[str, float] = {}
            feedbacks = []
            for feedback in evidences[origin].feedbacks:
                instances = tuple(
                    self._instance_name(origin, name)
                    for name in feedback.mapping_names
                )
                for instance, name in zip(instances, feedback.mapping_names):
                    if instance not in lane_priors:
                        lane_priors[instance] = self.priors.prior(
                            name, attribute
                        )
                feedbacks.append(replace(feedback, mapping_names=instances))
            lanes.append(
                AssessmentLane(
                    key=origin,
                    feedbacks=tuple(feedbacks),
                    structure_indices=blocks[origin],
                    priors=lane_priors,
                    delta=delta,
                    transport=MessageTransport(
                        self.send_probability, seed=self.seed
                    ),
                )
            )
        engine = BlockedEmbeddedMessagePassing(
            plan, lanes, options=self.options, executor=self.executor
        )
        results = engine.run()
        self.last_local_round_edge_counts = tuple(engine.round_edge_counts)
        views: Dict[str, Dict[str, float]] = {}
        for origin in origin_list:
            result = results[origin]
            prefix_length = len(origin) + 2
            posteriors = (
                {
                    instance[prefix_length:]: value
                    for instance, value in result.posteriors.items()
                }
                if result is not None
                else {}
            )
            views[origin] = self._resolve_local_view(
                origin, attribute, evidences[origin].unmappable, posteriors
            )
        return views

    def assess_local_all(self, attribute: str) -> Dict[str, Dict[str, float]]:
        """Every peer's own-mapping posteriors for ``attribute``, batched.

        One compiled per-origin plan, one stacked engine run — the traffic
        model of a live PDMS, where *all* peers assess their mappings, not
        just an experimenter's global index.
        """
        return self.assess_locals(self.network.peer_names, attribute)

    def assess_mapping(self, mapping_name: str, attributes: Optional[Iterable[str]] = None) -> float:
        """Coarse-granularity quality of a whole mapping (§4.1).

        The paper's coarse mode keeps a single correctness value per mapping
        instead of one per attribute.  We derive it from the fine-grained
        posteriors: the coarse value is the *mean* posterior over the
        attributes the mapping actually maps (attributes without evidence
        contribute their prior).  A mapping that is wrong for one attribute
        but right for ten others therefore degrades gracefully instead of
        being written off entirely; use :meth:`probability` directly when a
        per-attribute decision is needed.

        A mapping with no correspondences at all scores 0.0 (the coarse ⊥
        case); passing an explicitly empty ``attributes`` iterable raises
        :class:`~repro.exceptions.FeedbackError` rather than inventing an
        attribute name.
        """
        mapping = self.network.mapping(mapping_name)
        if attributes is None:
            targets = list(mapping.source_attributes)
            if not targets:
                # A mapping providing no correspondence at all preserves
                # nothing — the coarse analogue of the ⊥ rule.
                return 0.0
        else:
            targets = list(attributes)
            if not targets:
                raise FeedbackError(
                    f"assess_mapping({mapping_name!r}) needs at least one "
                    "attribute; pass attributes=None to average over all "
                    "mapped attributes"
                )
        values = [self.probability(mapping, attribute) for attribute in targets]
        return sum(values) / len(values)

    def assessment_plan(self) -> AssessmentPlan:
        """The compiled plan for the current cached structures.

        Compiled at most once per ``(network version, ttl, parallel-path
        flag)`` — the same key the structure cache refreshes on — and reused
        across attributes and EM rounds.  Structures of any arity compile:
        long cycles and parallel paths route through the count-space
        kernels instead of rejecting (the historical arity-25 cliff).
        """
        cycles, parallel_paths = self.structure_cache.structures()
        key = self.structure_cache.key
        if key == self._plan_key and self._plan is not None:
            return self._plan
        self._plan = compile_assessment_plan(
            structure_signatures(cycles, parallel_paths)
        )
        self._plan_key = key
        self.plan_compile_count += 1
        return self._plan

    def assess_attributes(self, attributes: Iterable[str]) -> Dict[str, AttributeAssessment]:
        """Assess several attributes (fine granularity).

        With the batched engine (the default) every attribute runs
        simultaneously on one stacked engine over the shared compiled plan;
        otherwise one sequential engine is built per attribute.  Both paths
        produce the same posteriors to floating-point accuracy.
        """
        attribute_list = list(attributes)
        if not (self.use_batched_engine and self.use_structure_cache):
            return {
                attribute: self.assess_attribute(attribute)
                for attribute in attribute_list
            }
        try:
            plan = self.assessment_plan()
        except FactorGraphError:
            # Long structures no longer reject compilation (they route
            # through the count-space kernels at any arity), so this
            # fallback is purely defensive against degenerate plans.
            return {
                attribute: self.assess_attribute(attribute)
                for attribute in attribute_list
            }
        evidences = {
            attribute: self.structure_cache.evidence_for(attribute)
            for attribute in attribute_list
        }
        engine = BatchedEmbeddedMessagePassing(
            plan,
            {a: evidence.feedbacks for a, evidence in evidences.items()},
            priors={
                a: {m: self.priors.prior(m, a) for m in plan.mapping_names}
                for a in evidences
            },
            deltas={a: self._delta_for(a) for a in evidences},
            send_probability=self.send_probability,
            seed=self.seed,
            options=self.options,
            executor=self.executor,
        )
        results = engine.run()
        assessments: Dict[str, AttributeAssessment] = {}
        for attribute in attribute_list:
            evidence = evidences[attribute]
            result = results[attribute]
            assessment = AttributeAssessment(
                attribute=attribute,
                evidence=evidence,
                result=result,
                posteriors=dict(result.posteriors) if result is not None else {},
                unmappable=evidence.unmappable,
            )
            self._assessments[attribute] = assessment
            assessments[attribute] = assessment
        return assessments

    def assess_all_attributes(self) -> Dict[str, AttributeAssessment]:
        """Assess every attribute appearing in any peer schema.

        With the batched engine the factor tables and index plans are built
        exactly once per network version, however many attributes the
        universe holds.
        """
        return self.assess_attributes(self.network.attribute_universe())

    def assessment(self, attribute: str) -> AttributeAssessment:
        """Cached assessment for ``attribute`` (computing it if needed)."""
        if attribute not in self._assessments:
            return self.assess_attribute(attribute)
        return self._assessments[attribute]

    def invalidate(self) -> None:
        """Drop all cached state after a network mutation.

        Topology changes made through the :class:`PDMSNetwork` API bump the
        network version and re-probe automatically, but the per-attribute
        assessments still reflect the old evidence until re-assessed — and
        out-of-band surgery on network internals is invisible to the version
        counter entirely.  This clears the structure caches (global and
        per-origin), the compiled assessment plans (global and local), the
        assessment cache and the cached local views.
        """
        self.structure_cache.invalidate()
        self.neighborhood_cache.invalidate()
        self._assessments.clear()
        self._plan = None
        self._plan_key = None
        self._local_plan = None
        self._local_plan_key = None
        self._local_blocks = {}
        self._local_views.clear()

    def reliability_statistics(self):
        """Aggregate fault / retry / fallback accounting across every
        fan-out the assessor drives: both structure caches' probe executors
        and — when the sweep executor is a chaos-armed
        :class:`~repro.factorgraph.plan.ThreadedExecutor` — the sweep
        buckets.  All-zero (falsy) under fault-free execution."""
        from ..reliability import ReliabilityStatistics

        total = ReliabilityStatistics()
        total.merge(self.structure_cache.statistics.reliability)
        total.merge(self.neighborhood_cache.statistics.reliability)
        sweep = getattr(self.executor, "statistics", None)
        if isinstance(sweep, ReliabilityStatistics):
            total.merge(sweep)
        return total

    # -- queries -----------------------------------------------------------------------------

    def probability(self, mapping: Mapping | str, attribute: str) -> float:
        """P(attribute preserved by mapping) — the router's quality measure.

        Resolution order: ⊥ rule (no correspondence → 0), posterior from the
        embedded run, otherwise the prior belief.
        """
        mapping_name = mapping if isinstance(mapping, str) else mapping.name
        assessment = self.assessment(attribute)
        if mapping_name in assessment.unmappable:
            return 0.0
        if not isinstance(mapping, str) and not mapping.maps_attribute(attribute):
            return 0.0
        if mapping_name in assessment.posteriors:
            return assessment.posteriors[mapping_name]
        return self.priors.prior(mapping_name, attribute)

    def is_erroneous(self, mapping: Mapping | str, attribute: str, theta: float = 0.5) -> bool:
        """Decision: flag the mapping as erroneous for ``attribute`` at θ."""
        if not 0.0 <= theta <= 1.0:
            raise ReproError(f"theta must be in [0, 1], got {theta}")
        return self.probability(mapping, attribute) <= theta

    def flagged_mappings(self, attribute: str, theta: float = 0.5) -> Tuple[str, ...]:
        """Mappings flagged as erroneous for ``attribute`` at threshold θ.

        Consistent with :meth:`is_erroneous` over the *full* mapping set of
        the network: every mapping for which the attribute is in scope —
        it maps the attribute, or its source schema declares it (the ⊥
        case) — is judged by :meth:`probability`, so mappings without
        posterior evidence are flagged on their prior exactly as
        :meth:`is_erroneous` flags them, instead of silently escaping the
        scan.
        """
        if not 0.0 <= theta <= 1.0:
            raise ReproError(f"theta must be in [0, 1], got {theta}")
        assessment = self.assessment(attribute)
        unmappable = set(assessment.unmappable)
        flagged = [
            mapping.name
            for mapping in self.network.mappings
            if (mapping.name in unmappable or mapping.maps_attribute(attribute))
            and self.probability(mapping, attribute) <= theta
        ]
        return tuple(sorted(flagged))

    # -- integration -----------------------------------------------------------------------------

    def as_oracle(self):
        """Quality oracle compatible with :class:`~repro.pdms.routing.QueryRouter`."""

        def oracle(mapping: Mapping, attribute: str) -> float:
            return self.probability(mapping, attribute)

        return oracle

    def router(self, policy: Optional[RoutingPolicy] = None) -> QueryRouter:
        """A query router wired to this assessor's quality oracle."""
        return QueryRouter(self.network, policy=policy, quality_oracle=self.as_oracle())

    def local_probability(self, mapping: Mapping | str, attribute: str) -> float:
        """P(attribute preserved) as judged by the mapping's *own* peer.

        The decentralised counterpart of :meth:`probability`: the answer
        comes from the source peer's local view (§4.5) — the batched
        :meth:`assess_local_all` run for the attribute, computed lazily once
        per attribute and topology version (a version bump refreshes the
        cached views automatically; :meth:`invalidate` drops them for
        out-of-band mutations) — not from the global evidence index.  The
        resolution order is shared with the local views: ⊥ rule, local
        posterior, prior.
        """
        mapping_obj = (
            self.network.mapping(mapping) if isinstance(mapping, str) else mapping
        )
        key = self.neighborhood_cache.current_key()
        cached = self._local_views.get(attribute)
        if cached is None or cached[0] != key:
            views = self.assess_local_all(attribute)
            self._local_views[attribute] = (key, views)
        else:
            views = cached[1]
        view = views.get(mapping_obj.source, {})
        if mapping_obj.name in view:
            return view[mapping_obj.name]
        if not mapping_obj.maps_attribute(attribute):
            return 0.0
        return self.priors.prior(mapping_obj.name, attribute)

    def as_local_oracle(self):
        """Quality oracle answering each hop from the forwarding peer's own
        local view — what a truly decentralised router consults."""

        def oracle(mapping: Mapping, attribute: str) -> float:
            return self.local_probability(mapping, attribute)

        return oracle

    def local_router(self, policy: Optional[RoutingPolicy] = None) -> QueryRouter:
        """A query router whose forwarding decisions use each peer's own
        decentralised assessment (backed by the batched local view)."""
        return QueryRouter(
            self.network, policy=policy, quality_oracle=self.as_local_oracle()
        )

    def update_priors(self, attributes: Optional[Iterable[str]] = None) -> Dict[Tuple[str, str], float]:
        """Fold the cached posteriors into the prior store (EM step, §4.4).

        Attributes not yet assessed are computed first — in one batched run
        when the batched engine is enabled — so an EM round over many
        attributes shares a single compiled plan and stacked engine.
        Returns the updated priors keyed by (mapping, attribute).

        The cached local views backing :meth:`local_probability` are
        dropped: their prior-fallback entries were baked in from the
        pre-update store and would otherwise diverge from
        :meth:`probability`'s live prior reads after the EM step.
        """
        self._local_views.clear()
        updated: Dict[Tuple[str, str], float] = {}
        targets = list(attributes) if attributes is not None else list(self._assessments)
        missing = [a for a in targets if a not in self._assessments]
        if missing:
            self.assess_attributes(missing)
        for attribute in targets:
            assessment = self.assessment(attribute)
            for mapping_name, posterior in assessment.posteriors.items():
                updated[(mapping_name, attribute)] = self.priors.record_posterior(
                    mapping_name, attribute, posterior
                )
        return updated
