"""Evolving mapping networks: re-assessment under churn (§4.4).

The paper stresses that a PDMS never stands still: mappings are created,
modified and deleted all the time, and it is precisely this evolution that
feeds the EM-style prior updates — "peers get new posterior probabilities on
the correctness of the mappings as long as the network of mappings continues
to evolve".  This module provides a small driver for that lifecycle:

* :class:`MappingEvent` describes one change of the mapping network
  (addition, removal, or the corruption/repair of a single correspondence);
* :class:`EvolvingPDMS` applies events to a network, re-runs the quality
  assessment for the affected attributes after every change, and folds the
  resulting posteriors into the shared :class:`PriorBeliefStore` — so that
  knowledge accumulated about a mapping survives later rounds, exactly as
  §4.4 prescribes.

The class is deliberately synchronous and in-process (one event at a time);
it models the *information* flow of an evolving PDMS, not its physical
concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import PDMSError
from ..mapping.correspondence import Correspondence
from ..mapping.mapping import Mapping
from ..pdms.events import (
    MappingAdded,
    MappingRemoved,
    TopologyEvent,
    apply as apply_topology,
)
from ..pdms.network import PDMSNetwork
from .beliefs import PriorBeliefStore
from .quality import MappingQualityAssessor

__all__ = ["MappingEventKind", "MappingEvent", "AssessmentRound", "EvolvingPDMS"]


class MappingEventKind(str, Enum):
    """Kind of change applied to the mapping network."""

    ADD_MAPPING = "add-mapping"
    REMOVE_MAPPING = "remove-mapping"
    CORRUPT_CORRESPONDENCE = "corrupt-correspondence"
    REPAIR_CORRESPONDENCE = "repair-correspondence"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MappingEvent:
    """One change of the mapping network.

    Depending on ``kind``:

    * ``ADD_MAPPING`` — ``mapping`` is registered in the network;
    * ``REMOVE_MAPPING`` — the mapping called ``mapping_name`` is removed;
    * ``CORRUPT_CORRESPONDENCE`` — the correspondence of ``mapping_name``
      for ``attribute`` is redirected to ``new_target`` (ground-truth label
      becomes incorrect);
    * ``REPAIR_CORRESPONDENCE`` — the correspondence of ``mapping_name``
      for ``attribute`` is redirected to ``new_target`` (label becomes
      correct).
    """

    kind: MappingEventKind
    mapping: Optional[Mapping] = None
    mapping_name: str = ""
    attribute: str = ""
    new_target: str = ""

    def to_topology_event(self) -> Optional[TopologyEvent]:
        """The typed :mod:`repro.pdms.events` record for topology kinds.

        ``ADD_MAPPING`` / ``REMOVE_MAPPING`` are the same transitions the
        event-sourced network records — this adapter is how the evolution
        layer's vocabulary collapses onto the shared event types.
        Correspondence-level kinds (corrupt / repair) are *data* churn,
        not topology, and return ``None``.
        """
        if self.kind is MappingEventKind.ADD_MAPPING:
            if self.mapping is None:
                raise PDMSError("ADD_MAPPING events need a mapping")
            return MappingAdded(mapping=self.mapping)
        if self.kind is MappingEventKind.REMOVE_MAPPING:
            return MappingRemoved(name=self.mapping_name)
        return None

    @classmethod
    def from_topology_event(cls, event: TopologyEvent) -> "MappingEvent":
        """Wrap a typed topology event in the evolution vocabulary —
        the inverse of :meth:`to_topology_event`, for feeding gossiped
        mapping churn into an :class:`EvolvingPDMS`."""
        if isinstance(event, MappingAdded):
            return cls(kind=MappingEventKind.ADD_MAPPING, mapping=event.mapping)
        if isinstance(event, MappingRemoved):
            return cls(
                kind=MappingEventKind.REMOVE_MAPPING, mapping_name=event.name
            )
        raise PDMSError(
            f"no mapping-churn equivalent for topology event {event!r}"
        )


@dataclass
class AssessmentRound:
    """What one event did to the beliefs.

    ``local_posteriors`` is populated only when the evolving PDMS tracks
    the decentralised view: per affected attribute, each origin peer's own
    §4.5 decision over its outgoing mappings, computed in one batched
    per-origin run.
    """

    event: MappingEvent
    assessed_attributes: Tuple[str, ...]
    posteriors: Dict[Tuple[str, str], float]
    updated_priors: Dict[Tuple[str, str], float]
    local_posteriors: Dict[str, Dict[str, Dict[str, float]]] = field(
        default_factory=dict
    )


class EvolvingPDMS:
    """Applies mapping churn and keeps beliefs up to date across rounds.

    Parameters
    ----------
    network:
        The live network; events mutate it in place.
    priors:
        Shared prior store; created fresh (maximum entropy) when omitted.
    track_local_views:
        When ``True``, every round additionally runs the batched
        decentralised assessment
        (:meth:`~repro.core.quality.MappingQualityAssessor.assess_local_all`)
        for the affected attributes — the traffic model of a live PDMS,
        where each peer re-judges its own mappings after churn — and records
        the per-origin views in :attr:`AssessmentRound.local_posteriors`.
    probe_executor / probe_workers:
        Discovery executor of the probe plans (``"serial"`` /
        ``"process"`` / an executor object / ``None`` for the configured
        default) and its pool size, forwarded to every assessor's structure
        caches — structure sets are identical across executors, so churn
        replays are invariant to the choice.
    shard_timeout / fault_plan:
        Fault policy of the probe fan-outs (per-shard deadline and chaos
        :class:`~repro.reliability.FaultPlan`), forwarded to every
        assessor — churn replays stay bit-identical under injected faults
        because the resilient executor re-executes or serially re-walks
        every disturbed shard.
    assessor_kwargs:
        Extra keyword arguments forwarded to every
        :class:`~repro.core.quality.MappingQualityAssessor` built after an
        event (``ttl``, ``delta``, ``include_parallel_paths``, ...).
    """

    def __init__(
        self,
        network: PDMSNetwork,
        priors: Optional[PriorBeliefStore] = None,
        track_local_views: bool = False,
        probe_executor: object = None,
        probe_workers: Optional[int] = None,
        shard_timeout: Optional[float] = None,
        fault_plan: object = None,
        **assessor_kwargs,
    ) -> None:
        self.network = network
        self.priors = priors if priors is not None else PriorBeliefStore()
        self.track_local_views = track_local_views
        self.assessor_kwargs = dict(
            assessor_kwargs,
            probe_executor=probe_executor,
            probe_workers=probe_workers,
            shard_timeout=shard_timeout,
            fault_plan=fault_plan,
        )
        self.history: List[AssessmentRound] = []

    # -- event application -------------------------------------------------------

    def _apply(self, event: MappingEvent) -> Tuple[str, ...]:
        """Mutate the network; return the attributes whose evidence changed."""
        topology_event = event.to_topology_event()
        if topology_event is not None:
            # Topology kinds lower onto the one shared transition the
            # event-sourced network replays — no parallel mutation path.
            mapping = apply_topology(self.network, topology_event)
            return mapping.source_attributes

        if event.kind in (
            MappingEventKind.CORRUPT_CORRESPONDENCE,
            MappingEventKind.REPAIR_CORRESPONDENCE,
        ):
            if not event.attribute or not event.new_target:
                raise PDMSError(
                    f"{event.kind.value} events need an attribute and a new target"
                )
            mapping = self.network.mapping(event.mapping_name)
            existing = mapping.correspondence_for(event.attribute)
            is_correct = event.kind is MappingEventKind.REPAIR_CORRESPONDENCE
            if existing is None:
                replacement = Correspondence(
                    source_attribute=event.attribute,
                    target_attribute=event.new_target,
                    is_correct=is_correct,
                    provenance="evolution",
                )
            else:
                replacement = existing.with_target(event.new_target, is_correct=is_correct)
            mapping._by_source[event.attribute] = replacement
            return (event.attribute,)

        raise PDMSError(f"unknown event kind {event.kind!r}")  # pragma: no cover

    # -- public API ----------------------------------------------------------------

    def apply_event(self, event: MappingEvent) -> AssessmentRound:
        """Apply one event, re-assess the affected attributes, update priors.

        The affected attributes are assessed in one batched pass (one
        compiled plan, one stacked engine) rather than engine-per-attribute.
        """
        affected = self._apply(event)
        assessor = MappingQualityAssessor(
            self.network, priors=self.priors, **self.assessor_kwargs
        )
        posteriors: Dict[Tuple[str, str], float] = {}
        for attribute, assessment in assessor.assess_attributes(affected).items():
            for mapping_name, posterior in assessment.posteriors.items():
                posteriors[(mapping_name, attribute)] = posterior
        local_posteriors: Dict[str, Dict[str, Dict[str, float]]] = {}
        if self.track_local_views:
            # Every peer re-judges its own mappings after the event — one
            # stacked per-origin run per affected attribute.
            for attribute in affected:
                local_posteriors[attribute] = assessor.assess_local_all(attribute)
        updated = assessor.update_priors(affected)
        round_record = AssessmentRound(
            event=event,
            assessed_attributes=tuple(affected),
            posteriors=posteriors,
            updated_priors=updated,
            local_posteriors=local_posteriors,
        )
        self.history.append(round_record)
        return round_record

    def apply_events(self, events: Iterable[MappingEvent]) -> List[AssessmentRound]:
        """Apply a sequence of events, one assessment round each."""
        return [self.apply_event(event) for event in events]

    def apply_topology_event(self, event: TopologyEvent) -> AssessmentRound:
        """Apply a typed :mod:`repro.pdms.events` record directly.

        Mapping additions / removals arriving from a replicated event log
        (e.g. a :class:`~repro.pdms.events.GossipJournal`) re-assess and
        fold into the priors exactly like locally-decided churn.
        """
        return self.apply_event(MappingEvent.from_topology_event(event))

    def apply_topology_events(
        self, events: Iterable[TopologyEvent]
    ) -> List[AssessmentRound]:
        """Apply a sequence of typed topology events, one round each."""
        return [self.apply_topology_event(event) for event in events]

    def current_belief(self, mapping_name: str, attribute: str) -> float:
        """The prior the peers currently hold for a (mapping, attribute) pair."""
        return self.priors.prior(mapping_name, attribute)
