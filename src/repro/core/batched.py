"""Batched multi-attribute embedded message passing.

The self-organizing assessment loop of the paper runs the decentralised
message passing of §4 for *every* attribute of the schema network.  The
cycle / parallel-path structures those runs are built from are
attribute-independent (§3.2.1) — only the feedback *signs* (and therefore
the factor tables) change per attribute — yet the per-attribute
:class:`~repro.core.embedded.EmbeddedMessagePassing` engine re-derives the
full topology machinery (edge layouts, segment index plans, factor-batch
gather/scatter operands, factor tables) from scratch for each attribute.

This module splits that work along the topology/evidence boundary:

* :func:`compile_assessment_plan` compiles the structures **once** into an
  :class:`AssessmentPlan` — everything in ``EmbeddedMessagePassing.__init__``
  / ``_init_array_state`` / ``_compile_array_batches`` that depends only on
  which structures exist and which peers own their mappings.
* :class:`BatchedEmbeddedMessagePassing` binds one plan to the per-attribute
  evidence (feedback kinds, priors, Δ) and runs **all attributes
  simultaneously** on stacked ``(attributes, edges, 2)`` message matrices:
  phase 1 is one zero-aware segment product over the stacked
  factor→variable state, phase 2 one Bernoulli mask per attribute over the
  shared transmission list, phase 3 one
  :class:`~repro.factorgraph.compiled.StackedFactorBatch` einsum per arity
  bucket and target slot.  Per-attribute convergence masking freezes
  finished attributes so they stop contributing work.

Equivalence with the per-attribute engine
-----------------------------------------
The stacked state covers *all* structures, not only the ones informative for
a given attribute.  Structures that are neutral for an attribute carry an
all-ones factor table, whose sum–product messages are exactly uniform; a
uniform factor→variable row scales both belief components by the same power
of two, so every shared message — and therefore every posterior — matches
the sequential ``backend="arrays"`` engine to floating-point accuracy (the
parity tests pin the agreement well below ``1e-9``, lossless and lossy).
Mappings whose evidence is entirely neutral for an attribute are masked out
of that attribute's result, mirroring the sequential engine's restriction to
informative feedback.

Reproducibility contract
------------------------
The sequential assessor builds one freshly seeded
:class:`~repro.core.embedded.MessageTransport` per attribute.  The batched
engine keeps that contract: each attribute draws its Bernoulli keep/send
masks from its **own** ``random.Random`` stream (seeded identically to the
sequential run), and only for the transmissions of its *informative*
structures, in the same transmission order — so lossy batched runs replay
the sequential drop decisions exactly, attempt counts included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import DEFAULT_SEED, DEFAULT_SEND_PROBABILITY
from ..exceptions import ConvergenceError, FactorGraphError, FeedbackError
from ..factorgraph.compiled import (
    MAX_COMPILED_ARITY,
    StackedFactorBatch,
    normalize_rows,
    segment_exclusive_products,
    segment_products,
)
from .beliefs import PriorBeliefStore
from .embedded import (
    EmbeddedMessagePassing,
    EmbeddedOptions,
    EmbeddedResult,
    MessageTransport,
    required_quiet_rounds,
)
from .feedback import Feedback, FeedbackKind
from .local_graph import mapping_owner

__all__ = [
    "AssessmentPlan",
    "BatchedEmbeddedMessagePassing",
    "compile_assessment_plan",
]

#: Integer codes of the per-(attribute, structure) feedback kinds.
_KIND_NEUTRAL, _KIND_POSITIVE, _KIND_NEGATIVE = 0, 1, 2

_KIND_CODES = {
    FeedbackKind.NEUTRAL: _KIND_NEUTRAL,
    FeedbackKind.POSITIVE: _KIND_POSITIVE,
    FeedbackKind.NEGATIVE: _KIND_NEGATIVE,
}


@dataclass(frozen=True)
class _PlanBatch:
    """One arity bucket of the compiled plan.

    ``gather[target][source]`` holds, per structure of the bucket, the pool
    id of the message feeding slot ``source`` of the sweep toward slot
    ``target`` — ids below the plan's edge count select the owner's own
    fresh µ_{v→F} row, ids above it the last received remote copy.
    ``scatter[target]`` holds the µ_{F→v} edge rows the fresh messages are
    written back to.  ``incorrect_counts`` is the ``(2,)*arity`` tensor of
    how many slots of each table cell are in the *incorrect* state, from
    which the per-attribute CPTs are built in one vectorized expression.
    """

    arity: int
    feedback_indices: np.ndarray
    gather: Tuple[Tuple[Optional[np.ndarray], ...], ...]
    scatter: Tuple[np.ndarray, ...]
    incorrect_counts: np.ndarray


@dataclass(frozen=True)
class AssessmentPlan:
    """Topology-only compilation of a network's feedback structures.

    Holds everything the embedded engine derives from the structure list
    alone — directed owner-edge layout (grouped by mapping for the segment
    products), received-cell layout, the phase-2 transmission list and the
    arity-bucketed gather/scatter operands — so a multi-attribute assessment
    compiles them exactly once per network version and shares them across
    attributes and EM rounds.
    """

    identifiers: Tuple[str, ...]
    structure_mappings: Tuple[Tuple[str, ...], ...]
    owners: TMapping[str, str]
    mapping_names: Tuple[str, ...]
    mapping_index: TMapping[str, int]
    edge_mapping: np.ndarray
    segment_starts: np.ndarray
    edge_count: int
    recv_count: int
    tx_src: np.ndarray
    tx_dest: np.ndarray
    tx_feedback: np.ndarray
    batches: Tuple[_PlanBatch, ...]

    @property
    def structure_count(self) -> int:
        return len(self.identifiers)

    @property
    def mapping_count(self) -> int:
        return len(self.mapping_names)


def compile_assessment_plan(
    structures: Sequence[Tuple[str, Sequence[str]]],
    owners: Optional[TMapping[str, str]] = None,
) -> AssessmentPlan:
    """Compile ``(identifier, mapping names)`` structures into a plan.

    ``structures`` lists the network's cycles and parallel paths in the
    order :func:`repro.core.analysis.analyze_network` numbers them, so the
    per-attribute :class:`~repro.core.feedback.Feedback` evidence derived
    from the same structures aligns with the plan index for index.  Raises
    :class:`~repro.exceptions.FactorGraphError` for structures beyond the
    compiled arity limit (callers fall back to the sequential engine).
    """
    normalized: List[Tuple[str, Tuple[str, ...]]] = [
        (identifier, tuple(names)) for identifier, names in structures
    ]
    owner_map: Dict[str, str] = {}
    mapping_list: List[str] = []
    for identifier, names in normalized:
        if len(names) < 2:
            raise FeedbackError(
                f"structure {identifier!r} needs at least two mappings, "
                f"got {names!r}"
            )
        for name in names:
            if name not in owner_map:
                if owners is not None and name in owners:
                    owner_map[name] = owners[name]
                else:
                    owner_map[name] = mapping_owner(name)
                mapping_list.append(name)
    mapping_index = {name: index for index, name in enumerate(mapping_list)}

    # Directed owner edges (mapping, structure), grouped contiguously by
    # mapping so phase 1 and the posterior read are single segment products.
    structures_of: Dict[str, List[int]] = {name: [] for name in mapping_list}
    for structure_index, (_, names) in enumerate(normalized):
        for name in names:
            structures_of[name].append(structure_index)
    edge_rows: Dict[Tuple[str, int], int] = {}
    edge_mapping_list: List[int] = []
    for m_index, name in enumerate(mapping_list):
        for structure_index in structures_of[name]:
            edge_rows[(name, structure_index)] = len(edge_mapping_list)
            edge_mapping_list.append(m_index)
    edge_mapping = np.asarray(edge_mapping_list, dtype=np.int64)
    if len(edge_mapping):
        is_start = np.empty(len(edge_mapping), dtype=bool)
        is_start[0] = True
        is_start[1:] = edge_mapping[1:] != edge_mapping[:-1]
        segment_starts = np.flatnonzero(is_start)
    else:
        segment_starts = np.empty(0, dtype=np.int64)
    edge_count = len(edge_mapping)

    # Received cells (peer, structure, remote mapping): one per replica a
    # peer holds of a structure it does not own every mapping of.
    recv_rows: Dict[Tuple[str, int, str], int] = {}
    for structure_index, (_, names) in enumerate(normalized):
        for peer in dict.fromkeys(owner_map[name] for name in names):
            for name in names:
                if owner_map[name] != peer:
                    recv_rows.setdefault(
                        (peer, structure_index, name), len(recv_rows)
                    )

    # Transmission list in the exact order the sequential engine walks it
    # (structure → sender mapping → recipient mapping), so per-attribute rng
    # streams are consumed identically.
    tx_src: List[int] = []
    tx_dest: List[int] = []
    tx_feedback: List[int] = []
    for structure_index, (_, names) in enumerate(normalized):
        for name in names:
            sender = owner_map[name]
            source_edge = edge_rows[(name, structure_index)]
            for other in names:
                recipient = owner_map[other]
                if recipient == sender:
                    continue
                tx_src.append(source_edge)
                tx_dest.append(recv_rows[(recipient, structure_index, name)])
                tx_feedback.append(structure_index)

    # Arity buckets with index-array gather/scatter plans.
    by_arity: Dict[int, List[int]] = {}
    for structure_index, (_, names) in enumerate(normalized):
        by_arity.setdefault(len(names), []).append(structure_index)
    batches: List[_PlanBatch] = []
    for arity, structure_indices in by_arity.items():
        if arity > MAX_COMPILED_ARITY:
            raise FactorGraphError(
                f"structure arity {arity} exceeds the compiled limit "
                f"{MAX_COMPILED_ARITY}; use the sequential engine"
            )
        gather: List[Tuple[Optional[np.ndarray], ...]] = []
        scatter: List[np.ndarray] = []
        for target in range(arity):
            target_rows = np.asarray(
                [
                    edge_rows[(normalized[si][1][target], si)]
                    for si in structure_indices
                ],
                dtype=np.int64,
            )
            per_source: List[Optional[np.ndarray]] = []
            for source in range(arity):
                if source == target:
                    per_source.append(None)
                    continue
                pool_ids: List[int] = []
                for si in structure_indices:
                    names = normalized[si][1]
                    target_name, source_name = names[target], names[source]
                    owner = owner_map[target_name]
                    if owner_map[source_name] == owner:
                        pool_ids.append(edge_rows[(source_name, si)])
                    else:
                        pool_ids.append(
                            edge_count + recv_rows[(owner, si, source_name)]
                        )
                per_source.append(np.asarray(pool_ids, dtype=np.int64))
            gather.append(tuple(per_source))
            scatter.append(target_rows)
        batches.append(
            _PlanBatch(
                arity=arity,
                feedback_indices=np.asarray(structure_indices, dtype=np.int64),
                gather=tuple(gather),
                scatter=tuple(scatter),
                incorrect_counts=np.indices((2,) * arity).sum(axis=0),
            )
        )

    return AssessmentPlan(
        identifiers=tuple(identifier for identifier, _ in normalized),
        structure_mappings=tuple(names for _, names in normalized),
        owners=owner_map,
        mapping_names=tuple(mapping_list),
        mapping_index=mapping_index,
        edge_mapping=edge_mapping,
        segment_starts=segment_starts,
        edge_count=edge_count,
        recv_count=len(recv_rows),
        tx_src=np.asarray(tx_src, dtype=np.int64),
        tx_dest=np.asarray(tx_dest, dtype=np.int64),
        tx_feedback=np.asarray(tx_feedback, dtype=np.int64),
        batches=tuple(batches),
    )


class BatchedEmbeddedMessagePassing:
    """All-attribute embedded message passing on one compiled plan.

    Parameters
    ----------
    plan:
        The compiled topology (shared across attributes and EM rounds).
    feedback_sets:
        Per attribute, the evidence of **every** plan structure, aligned
        index for index (neutral feedbacks included — they mask themselves
        out via all-ones factor tables).  Attributes without a single
        informative feedback yield ``None`` results, like the sequential
        assessor.
    priors:
        ``None`` / a single float applied everywhere, or a mapping keyed by
        *attribute* whose values are whatever the sequential engine accepts
        (float, ``{mapping name: prior}`` dict, or ``None``).
    deltas:
        Error-compensation probability Δ, a float or per-attribute mapping.
    send_probability / seed / transports:
        One freshly seeded :class:`MessageTransport` is created per
        attribute (matching the sequential assessor); pass ``transports`` to
        supply them explicitly.
    options:
        Iteration control, shared by all attributes.
    """

    def __init__(
        self,
        plan: AssessmentPlan,
        feedback_sets: TMapping[str, Sequence[Feedback]],
        priors: object = None,
        deltas: TMapping[str, float] | float = 0.1,
        send_probability: float = DEFAULT_SEND_PROBABILITY,
        seed: Optional[int] = DEFAULT_SEED,
        transports: Optional[TMapping[str, MessageTransport]] = None,
        options: Optional[EmbeddedOptions] = None,
    ) -> None:
        self.plan = plan
        self.options = options or EmbeddedOptions()
        self.attributes: Tuple[str, ...] = tuple(feedback_sets)

        kinds: Dict[str, np.ndarray] = {}
        for attribute, feedbacks in feedback_sets.items():
            feedback_list = tuple(feedbacks)
            if len(feedback_list) != plan.structure_count:
                raise FeedbackError(
                    f"attribute {attribute!r} supplies {len(feedback_list)} "
                    f"feedbacks for a plan of {plan.structure_count} structures"
                )
            codes = np.empty(plan.structure_count, dtype=np.int8)
            for index, feedback in enumerate(feedback_list):
                if (
                    feedback.identifier != plan.identifiers[index]
                    or feedback.mapping_names != plan.structure_mappings[index]
                ):
                    raise FeedbackError(
                        f"feedback {feedback.identifier!r} of attribute "
                        f"{attribute!r} does not match plan structure "
                        f"{plan.identifiers[index]!r}"
                    )
                codes[index] = _KIND_CODES[feedback.kind]
            kinds[attribute] = codes

        # Lanes: attributes with at least one informative structure.
        self._lanes: Tuple[str, ...] = tuple(
            a for a in self.attributes if (kinds[a] != _KIND_NEUTRAL).any()
        )
        lane_count = len(self._lanes)
        self._kind_matrix = (
            np.stack([kinds[a] for a in self._lanes])
            if lane_count
            else np.zeros((0, plan.structure_count), dtype=np.int8)
        )

        self._deltas = np.asarray(
            [self._resolve_delta(deltas, a) for a in self._lanes], dtype=float
        )
        self._priors = self._stack_priors(priors)
        if transports is not None:
            self._transports = [
                transports.get(a) or MessageTransport(send_probability, seed=seed)
                for a in self._lanes
            ]
        else:
            self._transports = [
                MessageTransport(send_probability, seed=seed) for _ in self._lanes
            ]
        self._lossless = all(
            transport.send_probability >= 1.0 for transport in self._transports
        )

        # Per-lane informative transmissions (positions into the plan's
        # transmission list, in list order — the rng consumption order).
        informative_tx = (
            self._kind_matrix[:, plan.tx_feedback] != _KIND_NEUTRAL
            if plan.tx_feedback.size
            else np.zeros((lane_count, 0), dtype=bool)
        )
        self._lane_tx = [np.flatnonzero(row) for row in informative_tx]

        # Per-lane active mappings: constrained by ≥1 informative structure.
        self._active_indices: List[np.ndarray] = []
        for lane in range(lane_count):
            active = np.zeros(plan.mapping_count, dtype=bool)
            for si in np.flatnonzero(self._kind_matrix[lane] != _KIND_NEUTRAL):
                for name in plan.structure_mappings[si]:
                    active[plan.mapping_index[name]] = True
            self._active_indices.append(np.flatnonzero(active))

        # Stacked per-attribute factor tables, one kernel per arity bucket.
        self._kernels: List[StackedFactorBatch] = []
        for batch in plan.batches:
            kind_b = self._kind_matrix[:, batch.feedback_indices]
            counts = batch.incorrect_counts
            delta_shaped = self._deltas.reshape((lane_count,) + (1,) * batch.arity)
            positive = np.where(
                counts == 0, 1.0, np.where(counts == 1, 0.0, delta_shaped)
            )
            pos = positive[:, None]
            kind_shaped = kind_b.reshape(kind_b.shape + (1,) * batch.arity)
            tables = np.where(
                kind_shaped == _KIND_POSITIVE,
                pos,
                np.where(kind_shaped == _KIND_NEGATIVE, 1.0 - pos, 1.0),
            )
            self._kernels.append(StackedFactorBatch(tables))

        # Stacked message state, one lane per attribute.  The state arrays
        # only ever hold the *live* (not yet converged) lanes: when a lane
        # freezes it is compacted out (:meth:`_compact`), so finished
        # attributes stop contributing work to every phase.  ``_live`` maps
        # state rows back to lane indices.  The per-edge prior rows are
        # gathered once — phase 1 reuses them every round.
        self._live = np.arange(lane_count)
        self._prior_edges = self._priors[:, plan.edge_mapping]
        self._v2f = np.full((lane_count, plan.edge_count, 2), 0.5)
        self._f2v = np.full((lane_count, plan.edge_count, 2), 0.5)
        self._recv = np.full((lane_count, plan.recv_count, 2), 0.5)
        self._post = normalize_rows(
            self._priors * segment_products(self._f2v, plan.segment_starts)
        )
        self._final_post = self._post[:, :, 0].copy()

    # -- construction helpers ----------------------------------------------------------

    @staticmethod
    def _resolve_delta(deltas, attribute: str) -> float:
        if isinstance(deltas, (int, float)) and not isinstance(deltas, bool):
            value = float(deltas)
        else:
            try:
                value = float(deltas[attribute])
            except (KeyError, TypeError) as error:
                raise FeedbackError(
                    f"no Δ supplied for attribute {attribute!r}"
                ) from error
        if not 0.0 <= value <= 1.0:
            raise FeedbackError(f"Δ must be in [0, 1], got {value}")
        return value

    def _stack_priors(self, priors) -> np.ndarray:
        """One clipped ``(lanes, mappings, 2)`` prior matrix."""
        if isinstance(priors, PriorBeliefStore):
            raise FeedbackError(
                "pass per-attribute prior dicts, not a PriorBeliefStore"
            )
        if priors is not None and not isinstance(priors, (bool, int, float)):
            # The sequential engine takes a flat {mapping: prior} dict; this
            # engine needs one prior set *per attribute*.  Reading a flat
            # dict as attribute-keyed would silently degrade every prior to
            # the 0.5 default, so reject the shape explicitly.
            misread = [
                key for key in priors if key in self.plan.mapping_index
            ]
            if misread:
                raise FeedbackError(
                    f"priors must be keyed by attribute, but "
                    f"{misread[0]!r} is a mapping name; pass "
                    f"{{attribute: {{mapping: prior}}}} instead"
                )
        validate = EmbeddedMessagePassing._validate_prior
        correct = np.empty((len(self._lanes), self.plan.mapping_count))
        for lane, attribute in enumerate(self._lanes):
            per_attribute = priors
            if priors is not None and not isinstance(priors, (int, float)):
                per_attribute = priors.get(attribute)
            if per_attribute is None:
                correct[lane] = 0.5
            elif isinstance(per_attribute, (bool, int, float)):
                # bools are rejected by the shared validator, like the
                # sequential engine does.
                correct[lane] = validate(per_attribute, "*")
            else:
                get = per_attribute.get
                correct[lane] = [
                    validate(get(name, 0.5), name)
                    for name in self.plan.mapping_names
                ]
        return np.clip(
            np.stack((correct, 1.0 - correct), axis=-1), 1e-9, 1.0
        )

    # -- introspection ------------------------------------------------------------------

    @property
    def mapping_names(self) -> Tuple[str, ...]:
        return self.plan.mapping_names

    @property
    def lane_attributes(self) -> Tuple[str, ...]:
        """Attributes with informative evidence, in state-lane order."""
        return self._lanes

    def transport_for(self, attribute: str) -> MessageTransport:
        """The per-attribute transport (for statistics inspection)."""
        try:
            lane = self._lanes.index(attribute)
        except ValueError:
            known = ", ".join(self._lanes) or "<none>"
            raise FeedbackError(
                f"no transport for attribute {attribute!r} (only attributes "
                f"with informative evidence have one; known: {known})"
            ) from None
        return self._transports[lane]

    # -- the three phases, stacked ------------------------------------------------------

    def _run_round(self) -> None:
        """One full round over every live lane (no per-lane indexing)."""
        plan = self.plan
        # Phase 1: one exclusive segment product over all live lanes.
        exclusive = segment_exclusive_products(
            self._f2v, plan.segment_starts, plan.edge_mapping
        )
        self._v2f = normalize_rows(self._prior_edges * exclusive)
        # Phase 2: the transport exchange.
        self._exchange()
        # Phase 3: stacked einsum sweeps per arity bucket.
        if plan.recv_count:
            pool = np.concatenate((self._v2f, self._recv), axis=1)
        else:
            pool = self._v2f
        for batch, kernel in zip(plan.batches, self._kernels):
            for target in range(batch.arity):
                incoming = [
                    None if ids is None else pool[:, ids]
                    for ids in batch.gather[target]
                ]
                fresh = normalize_rows(kernel.messages_toward(target, incoming))
                self._f2v[:, batch.scatter[target]] = fresh
        # Posterior snapshot of the live lanes.
        products = segment_products(self._f2v, plan.segment_starts)
        self._post = normalize_rows(self._priors * products)

    def _exchange(self) -> None:
        plan = self.plan
        if plan.tx_src.size == 0:
            return
        if self._lossless:
            # Deliver everything in one stacked scatter; neutral cells are
            # only ever read by neutral (all-ones) factor sweeps.
            self._recv[:, plan.tx_dest] = self._v2f[:, plan.tx_src]
            for row, lane in enumerate(self._live):
                count = int(self._lane_tx[lane].size)
                if count:
                    self._transports[lane].statistics.record_many(count, count)
            return
        for row, lane in enumerate(self._live):
            positions = self._lane_tx[lane]
            if positions.size == 0:
                continue
            mask = self._transports[lane].send_mask(positions.size)
            if mask.all():
                delivered = positions
            elif mask.any():
                delivered = positions[mask]
            else:
                continue
            self._recv[row, plan.tx_dest[delivered]] = self._v2f[
                row, plan.tx_src[delivered]
            ]

    def _compact(self, keep: np.ndarray) -> None:
        """Drop frozen lanes from the live state (boolean ``keep`` mask)."""
        self._live = self._live[keep]
        self._v2f = self._v2f[keep]
        self._f2v = self._f2v[keep]
        self._recv = self._recv[keep]
        self._post = self._post[keep]
        self._priors = self._priors[keep]
        self._prior_edges = self._prior_edges[keep]
        self._kernels = [
            StackedFactorBatch(kernel.tables[keep]) for kernel in self._kernels
        ]

    # -- public API ---------------------------------------------------------------------

    def run(self) -> Dict[str, Optional[EmbeddedResult]]:
        """Iterate all attributes to convergence; one result per attribute.

        Attributes without informative evidence map to ``None``.  Every
        other attribute receives an :class:`EmbeddedResult` equal (to
        floating-point accuracy) to what a sequential
        ``EmbeddedMessagePassing(...).run()`` over its informative feedback
        would return — iteration counts, convergence flags, histories and
        transport statistics included.
        """
        results: Dict[str, Optional[EmbeddedResult]] = {
            attribute: None for attribute in self.attributes
        }
        lane_count = len(self._lanes)
        if lane_count == 0:
            return results
        options = self.options
        quiet_needed = np.asarray(
            [
                required_quiet_rounds(transport.send_probability)
                for transport in self._transports
            ],
            dtype=np.int64,
        )
        converged = np.zeros(lane_count, dtype=bool)
        quiet = np.zeros(lane_count, dtype=np.int64)
        rounds = np.zeros(lane_count, dtype=np.int64)
        final_change = np.zeros(lane_count, dtype=float)
        histories: Optional[List[List[np.ndarray]]] = (
            [[] for _ in range(lane_count)] if options.record_history else None
        )
        for round_number in range(1, options.max_rounds + 1):
            live = self._live
            if live.size == 0:
                break
            # _run_round rebinds (never mutates) the posterior matrix, so
            # views of the previous round's beliefs stay valid snapshots.
            before = self._post[:, :, 0]
            self._run_round()
            after = self._post[:, :, 0]
            if after.shape[1]:
                change = np.abs(after - before).max(axis=1)
            else:
                change = np.zeros(live.size)
            rounds[live] = round_number
            final_change[live] = change
            if histories is not None:
                for row, lane in enumerate(live):
                    histories[lane].append(after[row])
            quiet[live] = np.where(change < options.tolerance, quiet[live] + 1, 0)
            done = quiet[live] >= quiet_needed[live]
            if done.any():
                finished = live[done]
                converged[finished] = True
                self._final_post[finished] = after[done]
                self._compact(~done)
        self._final_post[self._live] = self._post[:, :, 0]
        if options.strict and not converged.all():
            stuck = ", ".join(
                self._lanes[lane] for lane in np.flatnonzero(~converged)
            )
            raise ConvergenceError(
                f"batched embedded message passing did not converge within "
                f"{options.max_rounds} rounds for: {stuck}"
            )
        for lane, attribute in enumerate(self._lanes):
            indices = self._active_indices[lane]
            names = [self.plan.mapping_names[i] for i in indices]
            posteriors = dict(
                zip(names, self._final_post[lane, indices].tolist())
            )
            history: List[Dict[str, float]] = []
            if histories is not None:
                history = [
                    dict(zip(names, snapshot[indices].tolist()))
                    for snapshot in histories[lane]
                ]
            statistics = self._transports[lane].statistics
            results[attribute] = EmbeddedResult(
                posteriors=posteriors,
                iterations=int(rounds[lane]),
                converged=bool(converged[lane]),
                final_change=float(final_change[lane]),
                history=history,
                messages_attempted=statistics.attempted,
                messages_delivered=statistics.delivered,
            )
        return results
