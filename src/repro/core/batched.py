"""Batched multi-attribute embedded message passing.

The self-organizing assessment loop of the paper runs the decentralised
message passing of §4 for *every* attribute of the schema network.  The
cycle / parallel-path structures those runs are built from are
attribute-independent (§3.2.1) — only the feedback *signs* (and therefore
the factor tables) change per attribute — yet the per-attribute
:class:`~repro.core.embedded.EmbeddedMessagePassing` engine re-derives the
full topology machinery (edge layouts, segment index plans, factor-batch
gather/scatter operands, factor tables) from scratch for each attribute.

This module splits that work along the topology/evidence boundary, on the
same two axes the engine matrix in :mod:`repro.core.embedded` documents
(normative statement of the underlying layering/determinism/process-safety
contracts: ``ARCHITECTURE.md`` at the repository root, enforced by
``repro-lint`` / :mod:`repro.lintkit`) —
*plan-IR lowering* × *executor choice* (plus the upstream probe-executor
row of that matrix: the structure lists compiled here arrive from the
discovery frontier of :mod:`repro.pdms.discovery`, serial or
origin-sharded via ``probe_executor=``, identical either way):

* :func:`compile_assessment_plan` lowers the structures **once** into an
  :class:`AssessmentPlan` (an alias of the shared
  :class:`~repro.factorgraph.plan.SweepPlan` IR, built by
  :func:`~repro.factorgraph.plan.compile_sweep_plan`) — everything in
  ``EmbeddedMessagePassing.__init__`` / ``_init_array_state`` /
  ``_compile_array_batches`` that depends only on which structures exist
  and which peers own their mappings: edge row space, segment index plans,
  transmission list, arity-bucketed kernel batches.  The kernel family per
  bucket follows the crossover rule stated in :mod:`repro.core.embedded`
  (dense einsum below :data:`repro.constants.COUNT_KERNEL_MIN_ARITY`,
  count space at or beyond it — structures of *any* arity compile; the
  historical arity-25 cliff is gone).
* :class:`BatchedEmbeddedMessagePassing` binds one plan to per-**lane**
  evidence and runs **all lanes simultaneously** on stacked
  ``(lanes, edges, 2)`` message matrices, delegating each round to a
  pluggable executor (``executor=``, defaulting to
  :data:`repro.constants.DEFAULT_EXECUTOR`): phase 1 is one zero-aware
  segment product over the stacked factor→variable state, phase 2 one
  Bernoulli mask per lane over the plan's transmission list (engine-side —
  executors never touch the rng), phase 3 one stacked kernel sweep per
  arity bucket
  (:class:`~repro.factorgraph.plan.StackedFactorBatch` einsum or
  count-space :class:`~repro.factorgraph.plan.StackedCountFactorBatch`).
  Per-lane convergence masking freezes finished lanes so they stop
  contributing work.

Both axes also keep the resilience row of that matrix: a deterministic
:class:`~repro.reliability.FaultPlan` (``fault_plan=`` on the assessor,
``REPRO_FAULT_PLAN`` process-wide) upgrades the probe row to the retrying
:class:`~repro.reliability.ResilientDiscoveryExecutor` and arms the
threaded sweep executor's synchronous per-bucket NumPy fallback — the
compiled plan, the structure lists and every lane's posteriors are
bit-identical to the fault-free serial run, with the injected/survived
fault counts reported by
:meth:`~repro.core.quality.MappingQualityAssessor.reliability_statistics`.

A lane is any ``(evidence subset, priors, Δ, rng stream)`` tuple
(:class:`AssessmentLane`) bound to a subset of the plan's structures:

* the multi-attribute assessor makes one lane per *attribute*, each
  covering the full structure list (the classic keyword constructor);
* the decentralised per-peer view of §4.5 makes one lane per *origin* on a
  plan concatenating every origin's local structure block over per-origin
  mapping instances.  Such lanes are *disjoint*, so stacking them on a
  dense lane axis would waste an L× factor of permanently-uniform rows;
  :class:`BlockedEmbeddedMessagePassing` packs them block-diagonally into
  one shared row space instead, keeping per-lane rng streams, convergence
  counters and results while a round costs one set of numpy calls over the
  blocks' combined rows.  (:meth:`BatchedEmbeddedMessagePassing.from_lanes`
  remains the general executor for arbitrary — possibly overlapping — lane
  subsets.)

Equivalence with the sequential engine
--------------------------------------
The stacked state covers *all* plan structures, not only the ones a lane
binds informative evidence to.  Structures that are neutral for (or outside
the evidence subset of) a lane carry an all-ones factor table, whose
sum–product messages are exactly uniform; a uniform factor→variable row
scales both belief components by the same power of two, so every shared
message — and therefore every posterior — matches the sequential
``backend="arrays"`` engine run on the lane's informative evidence alone, to
floating-point accuracy (the parity tests pin the agreement well below
``1e-9``, lossless and lossy).  Mappings not constrained by any informative
structure of a lane are masked out of that lane's result, mirroring the
sequential engine's restriction to informative feedback.

Reproducibility contract
------------------------
The sequential assessor builds one freshly seeded
:class:`~repro.core.embedded.MessageTransport` per call — per attribute for
the global sweeps, per origin for ``assess_local``.  The batched engine
keeps that contract: each lane draws its Bernoulli keep/send masks from its
**own** ``random.Random`` stream (seeded identically to the sequential
run), and only for the transmissions of its *informative* structures, in
the same transmission order — each lane's structure indices are strictly
increasing in plan order and each structure keeps the lane's own traversal
orientation — so lossy batched runs replay the sequential drop decisions
exactly, attempt counts included.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import DEFAULT_SEED, DEFAULT_SEND_PROBABILITY
from ..exceptions import ConvergenceError, FeedbackError
from ..factorgraph.plan import (
    KIND_NEGATIVE as _KIND_NEGATIVE,
    KIND_NEUTRAL as _KIND_NEUTRAL,
    KIND_POSITIVE as _KIND_POSITIVE,
    BucketPlan,
    StackedCountFactorBatch,
    StackedFactorBatch,
    SweepPlan,
    SweepState,
    bucket_kernel as _bucket_kernel,
    bucket_tables as _bucket_tables,
    compile_sweep_plan,
    get_executor,
    make_bucket,
    normalize_rows,
    segment_plan,
    segment_products,
)
from .beliefs import PriorBeliefStore
from .embedded import (
    EmbeddedMessagePassing,
    EmbeddedOptions,
    EmbeddedResult,
    MessageTransport,
    required_quiet_rounds,
)
from .feedback import Feedback, FeedbackKind
from .local_graph import mapping_owner

__all__ = [
    "AssessmentLane",
    "AssessmentPlan",
    "BatchedEmbeddedMessagePassing",
    "BlockedEmbeddedMessagePassing",
    "compile_assessment_plan",
]

_KIND_CODES = {
    FeedbackKind.NEUTRAL: _KIND_NEUTRAL,
    FeedbackKind.POSITIVE: _KIND_POSITIVE,
    FeedbackKind.NEGATIVE: _KIND_NEGATIVE,
}


def _validated_lane_codes(
    plan: "AssessmentPlan", lane: "AssessmentLane"
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate one lane's evidence against the plan.

    Shared by both batched engines so they accept exactly the same lanes.
    Returns ``(indices, codes)``: the lane's plan structure indices and a
    full-width ``(structure_count,)`` kind-code vector, neutral outside the
    lane's subset.
    """
    feedback_list = tuple(lane.feedbacks)
    if lane.structure_indices is None:
        indices = np.arange(plan.structure_count, dtype=np.int64)
    else:
        indices = np.asarray(lane.structure_indices, dtype=np.int64)
        if indices.size and (
            indices[0] < 0
            or indices[-1] >= plan.structure_count
            or (np.diff(indices) <= 0).any()
        ):
            raise FeedbackError(
                f"lane {lane.key!r} structure indices must be strictly "
                f"increasing within the plan's {plan.structure_count} "
                f"structures"
            )
    if len(feedback_list) != indices.size:
        raise FeedbackError(
            f"lane {lane.key!r} supplies {len(feedback_list)} feedbacks "
            f"for {indices.size} plan structures"
        )
    codes = np.zeros(plan.structure_count, dtype=np.int8)
    for index, feedback in zip(indices, feedback_list):
        if (
            feedback.identifier != plan.identifiers[index]
            or feedback.mapping_names != plan.structure_mappings[index]
        ):
            raise FeedbackError(
                f"feedback {feedback.identifier!r} of lane {lane.key!r} "
                f"does not match plan structure {plan.identifiers[index]!r}"
            )
        codes[index] = _KIND_CODES[feedback.kind]
    return indices, codes


def _lane_result(
    plan: "AssessmentPlan",
    active_indices: np.ndarray,
    final_values: np.ndarray,
    snapshots: Sequence[np.ndarray],
    statistics,
    iterations: int,
    converged: bool,
    final_change: float,
) -> EmbeddedResult:
    """Assemble one lane's :class:`EmbeddedResult` (shared by both engines).

    ``final_values`` and each history ``snapshot`` are already sliced to
    the lane's ``active_indices``.
    """
    names = [plan.mapping_names[i] for i in active_indices]
    return EmbeddedResult(
        posteriors=dict(zip(names, final_values.tolist())),
        iterations=iterations,
        converged=converged,
        final_change=final_change,
        history=[dict(zip(names, snapshot.tolist())) for snapshot in snapshots],
        messages_attempted=statistics.attempted,
        messages_delivered=statistics.delivered,
    )


#: The assessment plan *is* the shared sweep-plan IR — the historical name
#: is kept because it is public API (re-exported by :mod:`repro.core`).
AssessmentPlan = SweepPlan


def compile_assessment_plan(
    structures: Sequence[Tuple[str, Sequence[str]]],
    owners: Optional[TMapping[str, str]] = None,
) -> AssessmentPlan:
    """Compile ``(identifier, mapping names)`` structures into a plan.

    ``structures`` lists the network's cycles and parallel paths in the
    order :func:`repro.core.analysis.analyze_network` numbers them, so the
    per-attribute :class:`~repro.core.feedback.Feedback` evidence derived
    from the same structures aligns with the plan index for index.  A thin
    assessment-flavoured wrapper over
    :func:`repro.factorgraph.plan.compile_sweep_plan`: owners default to
    the mapping-name convention (:func:`~repro.core.local_graph.
    mapping_owner`) and structures keep the historical two-mapping floor.
    """
    return compile_sweep_plan(
        structures, owners=owners, min_mappings=2, default_owner=mapping_owner
    )


@dataclass(frozen=True)
class AssessmentLane:
    """One inference lane of the stacked engine.

    A lane binds an evidence subset to its priors, Δ and rng stream.  The
    multi-attribute assessor builds one lane per attribute over the full
    plan; the decentralised view builds one lane per origin over that
    origin's block of plan structures.

    Parameters
    ----------
    key:
        Result key of the lane (attribute name, origin peer, ...); must be
        unique within one engine.
    feedbacks:
        The lane's evidence, aligned index for index with
        ``structure_indices`` (neutral feedbacks included — they mask
        themselves out via all-ones factor tables).
    structure_indices:
        The plan structure indices ``feedbacks`` binds to, **strictly
        increasing** so the lane consumes its rng stream in the plan's
        transmission order (the order the sequential engine walks).
        ``None`` binds the full plan, index for index.
    priors:
        ``None`` (0.5 everywhere), a single float, or a ``{mapping name:
        prior}`` dict — whatever the sequential engine accepts.
    delta:
        Error-compensation probability Δ of the lane's factor tables.
        ``None`` means unspecified, which is an error only if the lane
        turns out to have informative evidence (mirroring the keyword
        constructor, which never required a Δ for all-neutral attributes).
    transport:
        Optional explicit :class:`MessageTransport`; when ``None`` the
        engine seeds a fresh one per lane (matching the sequential
        assessor's per-call transports).
    """

    key: str
    feedbacks: Tuple[Feedback, ...]
    structure_indices: Optional[Tuple[int, ...]] = None
    priors: object = None
    delta: Optional[float] = 0.1
    transport: Optional[MessageTransport] = None


class BatchedEmbeddedMessagePassing:
    """All-lane embedded message passing on one compiled plan.

    The keyword constructor is the multi-attribute entry point (one lane per
    attribute, full plan alignment); :meth:`from_lanes` is the general one
    (any evidence subsets, e.g. one lane per origin for the decentralised
    per-peer view).

    Parameters
    ----------
    plan:
        The compiled topology (shared across attributes and EM rounds).
    feedback_sets:
        Per attribute, the evidence of **every** plan structure, aligned
        index for index (neutral feedbacks included — they mask themselves
        out via all-ones factor tables).  Attributes without a single
        informative feedback yield ``None`` results, like the sequential
        assessor.
    priors:
        ``None`` / a single float applied everywhere, or a mapping keyed by
        *attribute* whose values are whatever the sequential engine accepts
        (float, ``{mapping name: prior}`` dict, or ``None``).
    deltas:
        Error-compensation probability Δ, a float or per-attribute mapping.
    send_probability / seed / transports:
        One freshly seeded :class:`MessageTransport` is created per
        attribute (matching the sequential assessor); pass ``transports`` to
        supply them explicitly.
    options:
        Iteration control, shared by all lanes.
    executor:
        Sweep executor (name or instance) the compiled plan runs on; the
        default resolves :data:`repro.constants.DEFAULT_EXECUTOR`.
    """

    def __init__(
        self,
        plan: AssessmentPlan,
        feedback_sets: TMapping[str, Sequence[Feedback]],
        priors: object = None,
        deltas: TMapping[str, float] | float = 0.1,
        send_probability: float = DEFAULT_SEND_PROBABILITY,
        seed: Optional[int] = DEFAULT_SEED,
        transports: Optional[TMapping[str, MessageTransport]] = None,
        options: Optional[EmbeddedOptions] = None,
        executor: object = None,
    ) -> None:
        if isinstance(priors, PriorBeliefStore):
            raise FeedbackError(
                "pass per-attribute prior dicts, not a PriorBeliefStore"
            )
        if priors is not None and not isinstance(priors, (bool, int, float)):
            # The sequential engine takes a flat {mapping: prior} dict; this
            # engine needs one prior set *per attribute*.  Reading a flat
            # dict as attribute-keyed would silently degrade every prior to
            # the 0.5 default, so reject the shape explicitly.
            misread = [key for key in priors if key in plan.mapping_index]
            if misread:
                raise FeedbackError(
                    f"priors must be keyed by attribute, but "
                    f"{misread[0]!r} is a mapping name; pass "
                    f"{{attribute: {{mapping: prior}}}} instead"
                )
        lanes: List[AssessmentLane] = []
        for attribute, feedbacks in feedback_sets.items():
            per_attribute = priors
            if priors is not None and not isinstance(priors, (int, float)):
                per_attribute = priors.get(attribute)
            lanes.append(
                AssessmentLane(
                    key=attribute,
                    feedbacks=tuple(feedbacks),
                    structure_indices=None,
                    priors=per_attribute,
                    delta=self._resolve_delta(deltas, attribute),
                    transport=transports.get(attribute) if transports else None,
                )
            )
        self._setup(plan, lanes, send_probability, seed, options, executor)

    @classmethod
    def from_lanes(
        cls,
        plan: AssessmentPlan,
        lanes: Sequence[AssessmentLane],
        send_probability: float = DEFAULT_SEND_PROBABILITY,
        seed: Optional[int] = DEFAULT_SEED,
        options: Optional[EmbeddedOptions] = None,
        executor: object = None,
    ) -> "BatchedEmbeddedMessagePassing":
        """Build an engine from explicit lanes (evidence subsets).

        ``send_probability`` / ``seed`` configure the per-lane transports of
        lanes that do not carry an explicit one — each lane gets its own
        freshly seeded rng stream, exactly like the sequential assessor's
        per-call transports.
        """
        engine = object.__new__(cls)
        engine._setup(plan, list(lanes), send_probability, seed, options, executor)
        return engine

    def _setup(
        self,
        plan: AssessmentPlan,
        lanes: List[AssessmentLane],
        send_probability: float,
        seed: Optional[int],
        options: Optional[EmbeddedOptions],
        executor: object = None,
    ) -> None:
        self.plan = plan
        self.options = options or EmbeddedOptions()
        self._executor = get_executor(executor)
        self.lane_keys: Tuple[str, ...] = tuple(lane.key for lane in lanes)
        #: Historical alias of :attr:`lane_keys` (attribute names when built
        #: through the keyword constructor).
        self.attributes = self.lane_keys
        if len(set(self.lane_keys)) != len(self.lane_keys):
            raise FeedbackError(
                f"duplicate lane keys: {sorted(self.lane_keys)}"
            )

        kinds: Dict[str, np.ndarray] = {}
        for lane in lanes:
            _, codes = _validated_lane_codes(plan, lane)
            kinds[lane.key] = codes

        # Live lanes: those with at least one informative structure.
        live_lanes = [
            lane for lane in lanes if (kinds[lane.key] != _KIND_NEUTRAL).any()
        ]
        self._lanes: Tuple[str, ...] = tuple(lane.key for lane in live_lanes)
        lane_count = len(live_lanes)
        self._kind_matrix = (
            np.stack([kinds[lane.key] for lane in live_lanes])
            if lane_count
            else np.zeros((0, plan.structure_count), dtype=np.int8)
        )

        self._deltas = np.asarray(
            [self._check_delta(lane.delta, lane.key) for lane in live_lanes],
            dtype=float,
        )
        self._priors = self._stack_priors([lane.priors for lane in live_lanes])
        self._transports = [
            lane.transport or MessageTransport(send_probability, seed=seed)
            for lane in live_lanes
        ]
        self._lossless = all(
            transport.send_probability >= 1.0 for transport in self._transports
        )

        # Per-lane informative transmissions (positions into the plan's
        # transmission list, in list order — the rng consumption order).
        informative_tx = (
            self._kind_matrix[:, plan.tx_feedback] != _KIND_NEUTRAL
            if plan.tx_feedback.size
            else np.zeros((lane_count, 0), dtype=bool)
        )
        self._lane_tx = [np.flatnonzero(row) for row in informative_tx]

        # Per-lane active mappings: constrained by ≥1 informative structure.
        self._active_indices: List[np.ndarray] = []
        for lane in range(lane_count):
            active = np.zeros(plan.mapping_count, dtype=bool)
            for si in np.flatnonzero(self._kind_matrix[lane] != _KIND_NEUTRAL):
                for name in plan.structure_mappings[si]:
                    active[plan.mapping_index[name]] = True
            self._active_indices.append(np.flatnonzero(active))

        # Stacked per-attribute factor tables, one kernel per arity bucket
        # (dense einsum below the count-kernel crossover, count space above).
        self._kernels: List[StackedFactorBatch | StackedCountFactorBatch] = []
        for batch in plan.batches:
            kind_b = self._kind_matrix[:, batch.feedback_indices]
            tables = _bucket_tables(kind_b, self._deltas[:, None], batch)
            self._kernels.append(_bucket_kernel(tables, batch))

        # Stacked message state, one lane per attribute.  The state arrays
        # only ever hold the *live* (not yet converged) lanes: when a lane
        # freezes it is compacted out (:meth:`_compact`), so finished
        # attributes stop contributing work to every phase.  ``_live`` maps
        # state rows back to lane indices.  The per-edge prior rows are
        # gathered once — phase 1 reuses them every round.
        self._live = np.arange(lane_count)
        self._prior_edges = self._priors[:, plan.edge_mapping]
        self._v2f = np.full((lane_count, plan.edge_count, 2), 0.5)
        self._f2v = np.full((lane_count, plan.edge_count, 2), 0.5)
        self._recv = np.full((lane_count, plan.recv_count, 2), 0.5)
        self._post = normalize_rows(
            self._priors * segment_products(self._f2v, plan.segment_starts)
        )
        self._final_post = self._post[:, :, 0].copy()

    # -- construction helpers ----------------------------------------------------------

    @staticmethod
    def _resolve_delta(deltas, attribute: str) -> Optional[float]:
        """The Δ spec of one attribute; ``None`` when the dict lacks it.

        A missing Δ only becomes an error if the lane turns out to have
        informative evidence (:meth:`_check_delta` in ``_setup``), matching
        the historical behaviour of resolving Δ for live lanes only.
        """
        if isinstance(deltas, (int, float)) and not isinstance(deltas, bool):
            return float(deltas)
        try:
            return float(deltas[attribute])
        except (KeyError, TypeError):
            return None

    @staticmethod
    def _check_delta(value: Optional[float], key: str) -> float:
        if value is None:
            raise FeedbackError(f"no Δ supplied for attribute {key!r}")
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise FeedbackError(f"Δ must be in [0, 1], got {value}")
        return value

    def _stack_priors(self, prior_specs: Sequence[object]) -> np.ndarray:
        """One clipped ``(lanes, mappings, 2)`` prior matrix from the live
        lanes' prior specs (``None`` / float / ``{mapping: prior}``)."""
        validate = EmbeddedMessagePassing._validate_prior
        correct = np.empty((len(prior_specs), self.plan.mapping_count))
        for lane, spec in enumerate(prior_specs):
            if spec is None:
                correct[lane] = 0.5
            elif isinstance(spec, (bool, int, float)):
                # bools are rejected by the shared validator, like the
                # sequential engine does.
                correct[lane] = validate(spec, "*")
            elif isinstance(spec, PriorBeliefStore):
                raise FeedbackError(
                    "pass per-lane prior dicts, not a PriorBeliefStore"
                )
            else:
                get = spec.get
                correct[lane] = [
                    validate(get(name, 0.5), name)
                    for name in self.plan.mapping_names
                ]
        return np.clip(
            np.stack((correct, 1.0 - correct), axis=-1), 1e-9, 1.0
        )

    # -- introspection ------------------------------------------------------------------

    @property
    def mapping_names(self) -> Tuple[str, ...]:
        return self.plan.mapping_names

    @property
    def lane_attributes(self) -> Tuple[str, ...]:
        """Attributes with informative evidence, in state-lane order."""
        return self._lanes

    def transport_for(self, attribute: str) -> MessageTransport:
        """The per-attribute transport (for statistics inspection)."""
        try:
            lane = self._lanes.index(attribute)
        except ValueError:
            known = ", ".join(self._lanes) or "<none>"
            raise FeedbackError(
                f"no transport for attribute {attribute!r} (only attributes "
                f"with informative evidence have one; known: {known})"
            ) from None
        return self._transports[lane]

    # -- the three phases, stacked ------------------------------------------------------

    def _run_round(self) -> None:
        """One full round over every live lane (no per-lane indexing).

        Phases 1 and 3 are the executor's (:meth:`NumpyExecutor.run_round`
        over the shared plan); the transport exchange rides in the phase-2
        callback slot and the posterior snapshot stays engine-side.
        """
        plan = self.plan
        state = SweepState(
            v2f=self._v2f,
            f2v=self._f2v,
            recv=self._recv,
            kernels=self._kernels,
            prior_edges=self._prior_edges,
        )
        self._executor.run_round(plan, state, exchange=self._exchange)
        self._v2f = state.v2f
        # Posterior snapshot of the live lanes.
        products = segment_products(self._f2v, plan.segment_starts)
        self._post = normalize_rows(self._priors * products)

    def _exchange(self, state: SweepState) -> None:
        plan = self.plan
        if plan.tx_src.size == 0:
            return
        if self._lossless:
            # Deliver everything in one stacked scatter; neutral cells are
            # only ever read by neutral (all-ones) factor sweeps.
            self._recv[:, plan.tx_dest] = state.v2f[:, plan.tx_src]
            for row, lane in enumerate(self._live):
                count = int(self._lane_tx[lane].size)
                if count:
                    self._transports[lane].statistics.record_many(count, count)
            return
        for row, lane in enumerate(self._live):
            positions = self._lane_tx[lane]
            if positions.size == 0:
                continue
            mask = self._transports[lane].send_mask(positions.size)
            if mask.all():
                delivered = positions
            elif mask.any():
                delivered = positions[mask]
            else:
                continue
            self._recv[row, plan.tx_dest[delivered]] = state.v2f[
                row, plan.tx_src[delivered]
            ]

    def _compact(self, keep: np.ndarray) -> None:
        """Drop frozen lanes from the live state (boolean ``keep`` mask)."""
        self._live = self._live[keep]
        self._v2f = self._v2f[keep]
        self._f2v = self._f2v[keep]
        self._recv = self._recv[keep]
        self._post = self._post[keep]
        self._priors = self._priors[keep]
        self._prior_edges = self._prior_edges[keep]
        self._kernels = [
            type(kernel)(kernel.tables[keep]) for kernel in self._kernels
        ]

    # -- public API ---------------------------------------------------------------------

    def run(self) -> Dict[str, Optional[EmbeddedResult]]:
        """Iterate all attributes to convergence; one result per attribute.

        Attributes without informative evidence map to ``None``.  Every
        other attribute receives an :class:`EmbeddedResult` equal (to
        floating-point accuracy) to what a sequential
        ``EmbeddedMessagePassing(...).run()`` over its informative feedback
        would return — iteration counts, convergence flags, histories and
        transport statistics included.
        """
        results: Dict[str, Optional[EmbeddedResult]] = {
            attribute: None for attribute in self.attributes
        }
        lane_count = len(self._lanes)
        if lane_count == 0:
            return results
        options = self.options
        quiet_needed = np.asarray(
            [
                required_quiet_rounds(transport.send_probability)
                for transport in self._transports
            ],
            dtype=np.int64,
        )
        converged = np.zeros(lane_count, dtype=bool)
        quiet = np.zeros(lane_count, dtype=np.int64)
        rounds = np.zeros(lane_count, dtype=np.int64)
        final_change = np.zeros(lane_count, dtype=float)
        histories: Optional[List[List[np.ndarray]]] = (
            [[] for _ in range(lane_count)] if options.record_history else None
        )
        for round_number in range(1, options.max_rounds + 1):
            live = self._live
            if live.size == 0:
                break
            # _run_round rebinds (never mutates) the posterior matrix, so
            # views of the previous round's beliefs stay valid snapshots.
            before = self._post[:, :, 0]
            self._run_round()
            after = self._post[:, :, 0]
            if after.shape[1]:
                change = np.abs(after - before).max(axis=1)
            else:
                change = np.zeros(live.size)
            rounds[live] = round_number
            final_change[live] = change
            if histories is not None:
                for row, lane in enumerate(live):
                    histories[lane].append(after[row])
            quiet[live] = np.where(change < options.tolerance, quiet[live] + 1, 0)
            done = quiet[live] >= quiet_needed[live]
            if done.any():
                finished = live[done]
                converged[finished] = True
                self._final_post[finished] = after[done]
                self._compact(~done)
        self._final_post[self._live] = self._post[:, :, 0]
        if options.strict and not converged.all():
            stuck = ", ".join(
                self._lanes[lane] for lane in np.flatnonzero(~converged)
            )
            raise ConvergenceError(
                f"batched embedded message passing did not converge within "
                f"{options.max_rounds} rounds for: {stuck}"
            )
        for lane, attribute in enumerate(self._lanes):
            indices = self._active_indices[lane]
            results[attribute] = _lane_result(
                self.plan,
                indices,
                self._final_post[lane, indices],
                [snapshot[indices] for snapshot in histories[lane]]
                if histories is not None
                else (),
                self._transports[lane].statistics,
                int(rounds[lane]),
                bool(converged[lane]),
                float(final_change[lane]),
            )
        return results


class BlockedEmbeddedMessagePassing:
    """Disjoint-lane embedded message passing packed into one shared state.

    :class:`BatchedEmbeddedMessagePassing` stacks L lanes on ``(L, edges,
    2)`` state, every lane spanning every plan structure — the right layout
    when lanes share structures (multi-attribute sweeps over one topology).
    The per-origin decentralised view of §4.5 is the opposite regime: each
    lane binds a *disjoint* block of structures over its own per-origin
    mapping instances, so stacked lanes would carry an L× dead weight of
    permanently-uniform rows.  This engine packs such disjoint lanes
    block-diagonally into one shared row space: per-round work covers the
    *sum* of the blocks — the per-origin sequential engines' combined
    problem size — in one fixed set of numpy calls, while each lane keeps
    its own rng stream, convergence counter, history and transport
    statistics, so every lane's result equals its sequential run bit for
    bit.  When a lane converges its result is snapshotted and its block —
    edge rows, received cells, transmissions and factor structures — is
    *compacted out* of the live state (:meth:`_compact_frozen`), so
    per-round work shrinks monotonically as origins freeze instead of every
    row riding the phase-1/3 sweeps until the last origin finishes.
    Because the blocks are disjoint, dropping a frozen block leaves the
    remaining lanes' sweeps bit-identical; :attr:`round_edge_counts`
    records the per-round row counts for inspection.

    Parameters
    ----------
    plan:
        A **block-diagonal** compiled plan: every mapping must appear only
        in the structures of a single lane's block (callers rename mapping
        instances per lane — e.g. ``"origin::mapping"`` — and pass explicit
        owners to :func:`compile_assessment_plan`).
    lanes:
        :class:`AssessmentLane` entries whose ``structure_indices`` are
        strictly increasing and pairwise disjoint across lanes.  Lane priors
        are read per mapping instance of the lane's block.
    send_probability / seed / options:
        As in :meth:`BatchedEmbeddedMessagePassing.from_lanes`.
    """

    def __init__(
        self,
        plan: AssessmentPlan,
        lanes: Sequence[AssessmentLane],
        send_probability: float = DEFAULT_SEND_PROBABILITY,
        seed: Optional[int] = DEFAULT_SEED,
        options: Optional[EmbeddedOptions] = None,
        executor: object = None,
    ) -> None:
        self.plan = plan
        self.options = options or EmbeddedOptions()
        self._executor = get_executor(executor)
        lanes = list(lanes)
        self.lane_keys: Tuple[str, ...] = tuple(lane.key for lane in lanes)
        if len(set(self.lane_keys)) != len(self.lane_keys):
            raise FeedbackError(f"duplicate lane keys: {sorted(self.lane_keys)}")
        lane_count = len(lanes)
        structure_count = plan.structure_count

        # Kind codes and the structure → lane assignment (disjoint blocks).
        structure_lane = np.full(structure_count, -1, dtype=np.int64)
        kind_codes = np.zeros(structure_count, dtype=np.int8)
        lane_indices: List[np.ndarray] = []
        for lane_id, lane in enumerate(lanes):
            indices, codes = _validated_lane_codes(plan, lane)
            if indices.size and (structure_lane[indices] != -1).any():
                raise FeedbackError(
                    f"lane {lane.key!r} overlaps another lane's structures; "
                    "the blocked engine needs disjoint blocks (use "
                    "BatchedEmbeddedMessagePassing.from_lanes for "
                    "overlapping lanes)"
                )
            structure_lane[indices] = lane_id
            kind_codes[indices] = codes[indices]
            lane_indices.append(indices)

        # Block-diagonality: no mapping instance may span two lanes (its
        # segment products would couple the blocks).
        mapping_lane = np.full(plan.mapping_count, -1, dtype=np.int64)
        for structure_index, names in enumerate(plan.structure_mappings):
            lane_id = structure_lane[structure_index]
            for name in names:
                mapping_id = plan.mapping_index[name]
                if mapping_lane[mapping_id] == -1:
                    mapping_lane[mapping_id] = lane_id
                elif mapping_lane[mapping_id] != lane_id:
                    raise FeedbackError(
                        f"mapping {name!r} appears in structures of two "
                        "lanes; the blocked engine needs a block-diagonal "
                        "plan (rename per-lane mapping instances)"
                    )
        self._mapping_lane = mapping_lane
        self._kind_codes = kind_codes

        # Live lanes (≥1 informative structure) — needed before Δ
        # resolution, which is only required for them.
        informative = kind_codes != _KIND_NEUTRAL
        self._lane_informative = np.asarray(
            [bool(informative[indices].any()) for indices in lane_indices],
            dtype=bool,
        )

        # Per-structure Δ (the owning lane's), per-mapping priors.
        lane_deltas = np.asarray(
            [
                BatchedEmbeddedMessagePassing._check_delta(lane.delta, lane.key)
                if self._lane_informative[lane_id]
                else 0.0
                for lane_id, lane in enumerate(lanes)
            ],
            dtype=float,
        )
        structure_delta = np.where(
            structure_lane >= 0, lane_deltas[structure_lane], 0.0
        ) if structure_count else np.zeros(0)
        validate = EmbeddedMessagePassing._validate_prior
        correct = np.full(plan.mapping_count, 0.5)
        for mapping_id, name in enumerate(plan.mapping_names):
            lane_id = mapping_lane[mapping_id]
            if lane_id < 0:
                continue
            spec = lanes[lane_id].priors
            if spec is None:
                continue
            if isinstance(spec, PriorBeliefStore):
                raise FeedbackError(
                    "pass per-lane prior dicts, not a PriorBeliefStore"
                )
            if isinstance(spec, (bool, int, float)):
                correct[mapping_id] = validate(spec, name)
            else:
                correct[mapping_id] = validate(spec.get(name, 0.5), name)
        self._priors = np.clip(
            np.stack((correct, 1.0 - correct), axis=-1), 1e-9, 1.0
        )

        self._transports = [
            lane.transport or MessageTransport(send_probability, seed=seed)
            for lane in lanes
        ]

        # Per-lane informative transmissions, in plan (= rng) order.
        if plan.tx_feedback.size:
            tx_lane = structure_lane[plan.tx_feedback]
            tx_informative = informative[plan.tx_feedback]
        else:
            tx_lane = np.zeros(0, dtype=np.int64)
            tx_informative = np.zeros(0, dtype=bool)
        self._lane_tx = [
            np.flatnonzero((tx_lane == lane_id) & tx_informative)
            for lane_id in range(lane_count)
        ]

        # Per-lane active mappings: constrained by ≥1 informative structure.
        self._active_indices: List[np.ndarray] = []
        for lane_id in range(lane_count):
            active = np.zeros(plan.mapping_count, dtype=bool)
            for structure_index in lane_indices[lane_id][
                informative[lane_indices[lane_id]]
            ]:
                for name in plan.structure_mappings[structure_index]:
                    active[plan.mapping_index[name]] = True
            self._active_indices.append(np.flatnonzero(active))

        # Per-structure factor tables, stacked with a unit lane axis so the
        # shared stacked kernels (dense einsum or count space) apply
        # unchanged.  Kernels and the per-bucket structure → lane ownership
        # ride beside the live plan; compaction rebuilds all three.
        self._kernels: List[StackedFactorBatch | StackedCountFactorBatch] = []
        self._bucket_lanes: List[np.ndarray] = []
        for batch in plan.batches:
            kind_b = kind_codes[batch.feedback_indices]
            tables = _bucket_tables(
                kind_b, structure_delta[batch.feedback_indices], batch
            )
            self._kernels.append(_bucket_kernel(tables[None], batch))
            self._bucket_lanes.append(structure_lane[batch.feedback_indices])

        # Shared block-diagonal state (unit lane axis).  ``_plan_live`` is
        # the *live* view of the compiled plan: initially the plan itself,
        # and _compact_frozen rebinds it (``dataclasses.replace``, never
        # mutation) to the still-running blocks as lanes converge.  Per-row
        # lane ownership (edges via their mapping, received cells via the
        # structure of the transmissions writing them, transmissions via
        # their structure) is what compaction keys on.
        self._plan_live: SweepPlan = plan
        self._edge_lane = (
            mapping_lane[plan.edge_mapping]
            if plan.edge_count
            else np.zeros(0, dtype=np.int64)
        )
        recv_lane = np.full(plan.recv_count, -1, dtype=np.int64)
        if plan.tx_feedback.size:
            recv_lane[plan.tx_dest] = structure_lane[plan.tx_feedback]
        self._recv_lane = recv_lane
        self._tx_lane = tx_lane
        self._tx_informative = tx_informative
        # The mapping id behind each posterior row (the live plan's segment
        # owners) and their prior rows.
        self._post_priors = self._priors[plan.segment_mapping]
        #: Current posterior row of each lane's active mappings (equal to
        #: ``_active_indices`` until a compaction renumbers the rows).
        self._active_rows: List[np.ndarray] = list(self._active_indices)
        #: Lanes whose blocks have been compacted out of the live view.
        self._lane_compacted = np.zeros(lane_count, dtype=bool)
        #: Edge rows swept in each round — the per-round work trajectory the
        #: compaction exists to shrink (strictly decreasing whenever an
        #: origin froze in the previous round).
        self.round_edge_counts: List[int] = []

        self._prior_edges = self._priors[plan.edge_mapping][None]
        self._v2f = np.full((1, plan.edge_count, 2), 0.5)
        self._f2v = np.full((1, plan.edge_count, 2), 0.5)
        self._recv = np.full((1, plan.recv_count, 2), 0.5)
        self._post = normalize_rows(
            self._priors[None] * segment_products(self._f2v, plan.segment_starts)
        )

    # -- introspection ------------------------------------------------------------------

    @property
    def mapping_names(self) -> Tuple[str, ...]:
        return self.plan.mapping_names

    def transport_for(self, key: str) -> MessageTransport:
        """The per-lane transport (for statistics inspection)."""
        try:
            lane_id = self.lane_keys.index(key)
        except ValueError:
            known = ", ".join(self.lane_keys) or "<none>"
            raise FeedbackError(
                f"no transport for lane {key!r} (known: {known})"
            ) from None
        return self._transports[lane_id]

    # -- the three phases over the shared state -----------------------------------------

    def _run_round(self, sending: Sequence[int]) -> None:
        """One full round over the live view; ``sending`` lists the lane ids
        still exchanging."""
        plan = self._plan_live
        self.round_edge_counts.append(int(plan.edge_count))
        state = SweepState(
            v2f=self._v2f,
            f2v=self._f2v,
            recv=self._recv,
            kernels=self._kernels,
            prior_edges=self._prior_edges,
        )
        self._executor.run_round(
            plan, state, exchange=lambda s: self._exchange(sending, s)
        )
        self._v2f = state.v2f
        self._post = normalize_rows(
            self._post_priors[None]
            * segment_products(self._f2v, plan.segment_starts)
        )

    def _exchange(self, sending: Sequence[int], state: SweepState) -> None:
        tx_src = self._plan_live.tx_src
        tx_dest = self._plan_live.tx_dest
        for lane_id in sending:
            positions = self._lane_tx[lane_id]
            if positions.size == 0:
                continue
            transport = self._transports[lane_id]
            if transport.send_probability >= 1.0:
                self._recv[0, tx_dest[positions]] = state.v2f[
                    0, tx_src[positions]
                ]
                transport.statistics.record_many(
                    int(positions.size), int(positions.size)
                )
                continue
            mask = transport.send_mask(positions.size)
            if mask.all():
                delivered = positions
            elif mask.any():
                delivered = positions[mask]
            else:
                continue
            self._recv[0, tx_dest[delivered]] = state.v2f[
                0, tx_src[delivered]
            ]

    def _compact_frozen(self, frozen: Sequence[int]) -> None:
        """Drop the rows and structures of ``frozen`` lanes from the live view.

        The blocks are disjoint, so removing a frozen lane's edge rows,
        received cells, transmissions and factor structures leaves every
        remaining lane's segment products and kernel sweeps operating on
        exactly the same values as before — results are bit-identical —
        while per-round work shrinks to the surviving blocks.  Only the live
        view is rebound; the compiled plan is shared and never touched.
        """
        lane_count = len(self.lane_keys)
        dead = np.zeros(lane_count, dtype=bool)
        dead[np.asarray(list(frozen), dtype=np.int64)] = True
        self._lane_compacted |= dead

        def keep_rows(lane_of: np.ndarray) -> np.ndarray:
            # Rows outside every lane (lane id -1, possible when the lanes
            # cover only part of the plan) belong to no block and are kept.
            keep = np.ones(lane_of.size, dtype=bool)
            in_lane = lane_of >= 0
            keep[in_lane] = ~dead[lane_of[in_lane]]
            return keep

        old = self._plan_live
        old_edge_count = old.edge_count
        keep_edges = keep_rows(self._edge_lane)
        keep_recv = keep_rows(self._recv_lane)
        edge_renumber = np.cumsum(keep_edges) - 1
        recv_renumber = np.cumsum(keep_recv) - 1
        new_edge_count = int(keep_edges.sum())

        def remap_pool(ids: np.ndarray) -> np.ndarray:
            remapped = np.empty_like(ids)
            is_edge = ids < old_edge_count
            remapped[is_edge] = edge_renumber[ids[is_edge]]
            remapped[~is_edge] = new_edge_count + recv_renumber[
                ids[~is_edge] - old_edge_count
            ]
            return remapped

        batches: List[BucketPlan] = []
        kernels: List[StackedFactorBatch | StackedCountFactorBatch] = []
        bucket_lanes: List[np.ndarray] = []
        for bucket, kernel, lanes in zip(
            old.batches, self._kernels, self._bucket_lanes
        ):
            keep = keep_rows(lanes)
            if not keep.any():
                continue
            gather = [
                [
                    None if ids is None else remap_pool(ids[keep])
                    for ids in per_target
                ]
                for per_target in bucket.gather
            ]
            scatter = [edge_renumber[rows[keep]] for rows in bucket.scatter]
            batches.append(
                make_bucket(
                    bucket.arity,
                    bucket.feedback_indices[keep],
                    gather,
                    scatter,
                    bucket.use_count_kernel,
                    incorrect_counts=bucket.incorrect_counts,
                )
            )
            kernels.append(type(kernel)(kernel.tables[:, keep]))
            bucket_lanes.append(lanes[keep])
        self._kernels = kernels
        self._bucket_lanes = bucket_lanes

        self._v2f = self._v2f[:, keep_edges]
        self._f2v = self._f2v[:, keep_edges]
        self._recv = self._recv[:, keep_recv]
        self._prior_edges = self._prior_edges[:, keep_edges]
        self._edge_lane = self._edge_lane[keep_edges]
        self._recv_lane = self._recv_lane[keep_recv]
        edge_mapping = old.edge_mapping[keep_edges]
        starts, seg_of_edge, seg_ids = segment_plan(edge_mapping)
        self._post_priors = self._priors[seg_ids]

        keep_tx = keep_rows(self._tx_lane)
        self._plan_live = replace(
            old,
            edge_mapping=edge_mapping,
            edge_structure=old.edge_structure[keep_edges],
            segment_starts=starts,
            segment_of_edge=seg_of_edge,
            segment_mapping=seg_ids,
            edge_count=new_edge_count,
            recv_count=int(keep_recv.sum()),
            recv_cells=tuple(
                cell for cell, kept in zip(old.recv_cells, keep_recv) if kept
            ),
            tx_src=edge_renumber[old.tx_src[keep_tx]],
            tx_dest=recv_renumber[old.tx_dest[keep_tx]],
            tx_feedback=old.tx_feedback[keep_tx],
            tx_mapping=old.tx_mapping[keep_tx],
            batches=tuple(batches),
        )

        mapping_row = np.full(self.plan.mapping_count, -1, dtype=np.int64)
        mapping_row[seg_ids] = np.arange(seg_ids.size)
        self._active_rows = [
            np.empty(0, dtype=np.int64)
            if self._lane_compacted[lane_id] or not self._lane_informative[lane_id]
            else mapping_row[self._active_indices[lane_id]]
            for lane_id in range(lane_count)
        ]

        self._tx_lane = self._tx_lane[keep_tx]
        self._tx_informative = self._tx_informative[keep_tx]
        self._lane_tx = [
            np.flatnonzero((self._tx_lane == lane_id) & self._tx_informative)
            for lane_id in range(lane_count)
        ]

        # Re-derive the posterior snapshot over the compacted segments; the
        # surviving rows carry exactly the values they had before.
        self._post = normalize_rows(
            self._post_priors[None]
            * segment_products(self._f2v, starts)
        )

    # -- public API ---------------------------------------------------------------------

    def run(self) -> Dict[str, Optional[EmbeddedResult]]:
        """Iterate all lanes to their own convergence; one result per lane.

        Lanes without informative evidence map to ``None``.  Every other
        lane receives an :class:`EmbeddedResult` equal to what a sequential
        ``EmbeddedMessagePassing(...).run()`` over its informative feedback
        would return — iteration counts, convergence flags, histories and
        transport statistics included.  Because the blocks are disjoint, a
        frozen lane's block simply stops exchanging messages; its result is
        the snapshot taken the round it converged.
        """
        results: Dict[str, Optional[EmbeddedResult]] = {
            key: None for key in self.lane_keys
        }
        lane_count = len(self.lane_keys)
        live = [
            lane_id
            for lane_id in range(lane_count)
            if self._lane_informative[lane_id]
        ]
        if not live:
            return results
        # Lanes without informative evidence never run a round; their rows
        # are dead weight from the start, so compact them out immediately.
        idle = [
            lane_id
            for lane_id in range(lane_count)
            if not self._lane_informative[lane_id]
        ]
        if idle:
            self._compact_frozen(idle)
        options = self.options
        quiet_needed = np.asarray(
            [
                required_quiet_rounds(transport.send_probability)
                for transport in self._transports
            ],
            dtype=np.int64,
        )
        converged = np.zeros(lane_count, dtype=bool)
        quiet = np.zeros(lane_count, dtype=np.int64)
        rounds = np.zeros(lane_count, dtype=np.int64)
        final_change = np.zeros(lane_count, dtype=float)
        histories: Optional[List[List[np.ndarray]]] = (
            [[] for _ in range(lane_count)] if options.record_history else None
        )
        final_post = self._priors[:, 0].copy()
        for round_number in range(1, options.max_rounds + 1):
            if not live:
                break
            before = self._post[0, :, 0]
            self._run_round(live)
            after = self._post[0, :, 0]
            still_live: List[int] = []
            frozen_now: List[int] = []
            for lane_id in live:
                rows = self._active_rows[lane_id]
                change = (
                    float(np.abs(after[rows] - before[rows]).max())
                    if rows.size
                    else 0.0
                )
                rounds[lane_id] = round_number
                final_change[lane_id] = change
                if histories is not None:
                    histories[lane_id].append(after[rows])
                quiet[lane_id] = quiet[lane_id] + 1 if change < options.tolerance else 0
                if quiet[lane_id] >= quiet_needed[lane_id]:
                    converged[lane_id] = True
                    final_post[self._active_indices[lane_id]] = after[rows]
                    frozen_now.append(lane_id)
                else:
                    still_live.append(lane_id)
            live = still_live
            if frozen_now and live:
                self._compact_frozen(frozen_now)
        for lane_id in live:
            final_post[self._active_indices[lane_id]] = self._post[
                0, self._active_rows[lane_id], 0
            ]
        if options.strict and not converged[self._lane_informative].all():
            stuck = ", ".join(
                self.lane_keys[lane_id]
                for lane_id in np.flatnonzero(
                    self._lane_informative & ~converged
                )
            )
            raise ConvergenceError(
                f"blocked embedded message passing did not converge within "
                f"{options.max_rounds} rounds for: {stuck}"
            )
        for lane_id, key in enumerate(self.lane_keys):
            if not self._lane_informative[lane_id]:
                continue
            indices = self._active_indices[lane_id]
            results[key] = _lane_result(
                self.plan,
                indices,
                final_post[indices],
                histories[lane_id] if histories is not None else (),
                self._transports[lane_id].statistics,
                int(rounds[lane_id]),
                bool(converged[lane_id]),
                float(final_change[lane_id]),
            )
        return results
