"""Message-passing schedules: periodic and lazy (§4.3.1 / §4.3.2).

The embedded engine (:class:`~repro.core.embedded.EmbeddedMessagePassing`)
performs one *round* of decentralised sum–product per call; the schedules in
this module decide *when* rounds happen:

* :class:`PeriodicSchedule` — peers proactively exchange messages every
  ``tau`` time units, regardless of query traffic.  Suited to highly dynamic
  networks; costs up to ``Σ_ci (l_ci − 1)`` remote messages per peer per
  period (one per other mapping of every cycle through the peer).
* :class:`LazySchedule` — no dedicated traffic at all: whenever a query is
  forwarded through a mapping, the inference messages pertaining to that
  mapping are piggybacked on the query message.  Convergence speed is then
  proportional to the query load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..pdms.trace import QueryTrace
from .embedded import EmbeddedMessagePassing, EmbeddedResult, required_quiet_rounds

__all__ = ["PeriodicSchedule", "LazySchedule", "ScheduleReport"]


@dataclass
class ScheduleReport:
    """What a schedule did: rounds run, messages used, convergence status."""

    rounds: int
    converged: bool
    final_change: float
    messages_attempted: int
    messages_delivered: int
    posterior_history: List[Dict[str, float]] = field(default_factory=list)
    elapsed_time: float = 0.0

    @property
    def messages_per_round(self) -> float:
        if self.rounds == 0:
            return 0.0
        return self.messages_attempted / self.rounds


class PeriodicSchedule:
    """Proactive schedule: one full round of message passing every ``tau``.

    ``tau`` is expressed in arbitrary simulated time units (the paper notes
    it may range from seconds to months depending on network churn); the
    schedule merely advances a virtual clock so reports can speak of elapsed
    time.
    """

    def __init__(self, engine: EmbeddedMessagePassing, tau: float = 1.0) -> None:
        if tau <= 0:
            raise ReproError(f"tau must be positive, got {tau}")
        self.engine = engine
        self.tau = tau
        self.clock = 0.0

    def estimated_messages_per_period(self, peer_name: str) -> int:
        """Upper bound on remote messages the peer sends each period.

        The paper gives ``Σ_ci (l_ci − 1)`` where ``ci`` ranges over the
        cycles (and parallel-path structures) through the peer and ``l_ci``
        is their length.
        """
        fragment = self.engine.local_graphs.get(peer_name)
        if fragment is None:
            return 0
        total = 0
        for feedback in fragment.feedbacks:
            owned_in_feedback = sum(
                1
                for mapping_name in feedback.mapping_names
                if self.engine.owner_of(mapping_name) == peer_name
            )
            total += owned_in_feedback * (feedback.size - owned_in_feedback)
        return total

    def run(
        self,
        periods: int,
        tolerance: Optional[float] = None,
        stop_on_convergence: bool = True,
    ) -> ScheduleReport:
        """Run up to ``periods`` periods (one engine round each).

        ``converged`` in the report reflects the *final* rounds, using the
        same quiet-rounds rule as :meth:`EmbeddedMessagePassing.run`: under
        message loss a run only counts as converged after enough consecutive
        quiet rounds, and a run that goes quiet but moves again afterwards
        (possible when ``stop_on_convergence=False`` keeps it going) is not
        reported as converged on the strength of the earlier lull.
        """
        if periods < 1:
            raise ReproError("periods must be >= 1")
        tolerance = tolerance if tolerance is not None else self.engine.options.tolerance
        history: List[Dict[str, float]] = []
        start_attempted = self.engine.transport.statistics.attempted
        start_delivered = self.engine.transport.statistics.delivered
        quiet_rounds_needed = required_quiet_rounds(
            self.engine.transport.send_probability
        )
        quiet_rounds = 0
        change = float("inf")
        rounds = 0
        for rounds in range(1, periods + 1):
            change = self.engine.run_round()
            self.clock += self.tau
            history.append(self.engine.posteriors())
            quiet_rounds = quiet_rounds + 1 if change < tolerance else 0
            if stop_on_convergence and quiet_rounds >= quiet_rounds_needed:
                break
        converged = quiet_rounds >= quiet_rounds_needed
        stats = self.engine.transport.statistics
        return ScheduleReport(
            rounds=rounds,
            converged=converged,
            final_change=change,
            messages_attempted=stats.attempted - start_attempted,
            messages_delivered=stats.delivered - start_delivered,
            posterior_history=history,
            elapsed_time=self.clock,
        )


class LazySchedule:
    """Lazy schedule: piggyback message passing on query traffic.

    Every time a query trace shows a forwarded hop through mapping ``m``,
    the inference messages pertaining to ``m`` (and only those) are
    exchanged.  No extra network messages are generated beyond what the
    queries already cost — the communication overhead of the detection
    scheme is literally zero.
    """

    def __init__(self, engine: EmbeddedMessagePassing) -> None:
        self.engine = engine
        self.processed_queries = 0
        self.piggybacked_mappings = 0

    def _process(self, trace: QueryTrace) -> Tuple[float, bool]:
        """Piggyback on one trace; return ``(posterior change, ran a round)``.

        A trace that traverses no mapping of the feedback graph exchanges no
        inference messages at all — it must not be mistaken for a quiet
        round by the convergence check.
        """
        used = [
            mapping_name
            for mapping_name in trace.used_mappings()
            if mapping_name in self.engine.mapping_names
        ]
        self.processed_queries += 1
        if not used:
            return 0.0, False
        self.piggybacked_mappings += len(used)
        return self.engine.run_round(mapping_names=used), True

    def process_trace(self, trace: QueryTrace) -> float:
        """Piggyback on one resolved query; return the posterior change."""
        change, _ = self._process(trace)
        return change

    def process_traces(
        self,
        traces: Iterable[QueryTrace],
        tolerance: Optional[float] = None,
    ) -> ScheduleReport:
        """Piggyback on a whole query workload, stopping once converged.

        Only traces that actually exchanged inference messages count as
        rounds and advance the convergence check; a workload that skirts the
        feedback graph (its queries traverse none of the modelled mappings)
        therefore never yields a false convergence claim.
        """
        tolerance = tolerance if tolerance is not None else self.engine.options.tolerance
        history: List[Dict[str, float]] = []
        start_attempted = self.engine.transport.statistics.attempted
        start_delivered = self.engine.transport.statistics.delivered
        converged = False
        change = float("inf")
        rounds = 0
        for trace in traces:
            trace_change, ran_round = self._process(trace)
            if not ran_round:
                continue
            change = trace_change
            rounds += 1
            history.append(self.engine.posteriors())
            if change < tolerance and rounds > 1:
                converged = True
                break
        stats = self.engine.transport.statistics
        return ScheduleReport(
            rounds=rounds,
            converged=converged,
            final_change=change,
            messages_attempted=stats.attempted - start_attempted,
            messages_delivered=stats.delivered - start_delivered,
            posterior_history=history,
        )
