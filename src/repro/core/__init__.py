"""Core contribution: probabilistic detection of faulty mappings in a PDMS.

The pipeline is: gather cycle / parallel-path feedback
(:mod:`repro.core.analysis`), encode it as factors
(:mod:`repro.core.feedback`), build global or per-peer factor graphs
(:mod:`repro.core.pdms_factor_graph`, :mod:`repro.core.local_graph`), run the
decentralised embedded message passing (:mod:`repro.core.embedded`) under a
periodic or lazy schedule (:mod:`repro.core.schedules`), and expose the
posteriors for routing and prior updates (:mod:`repro.core.quality`,
:mod:`repro.core.beliefs`).
"""

from .feedback import (
    Feedback,
    FeedbackKind,
    StructureKind,
    compensation_probability,
    feedback_factor,
    feedback_from_cycle,
    feedback_from_parallel_paths,
    positive_feedback_probability,
)
from .analysis import (
    NeighborhoodStructureCache,
    NetworkEvidence,
    NetworkStructureCache,
    StructureCacheStatistics,
    analyze_neighborhood,
    analyze_network,
)
from .beliefs import MAXIMUM_ENTROPY_PRIOR, PriorBeliefStore
from .pdms_factor_graph import (
    PDMSFactorGraph,
    build_factor_graph,
    build_factor_graph_from_evidence,
    variable_name_for,
)
from .local_graph import LocalFactorGraph, build_local_graphs, mapping_owner
from .batched import (
    AssessmentLane,
    AssessmentPlan,
    BatchedEmbeddedMessagePassing,
    BlockedEmbeddedMessagePassing,
    compile_assessment_plan,
)
from .embedded import (
    EmbeddedMessagePassing,
    EmbeddedOptions,
    EmbeddedResult,
    MessageTransport,
    TransportStatistics,
)
from .schedules import LazySchedule, PeriodicSchedule, ScheduleReport
from .quality import AttributeAssessment, MappingQualityAssessor
from .evolution import AssessmentRound, EvolvingPDMS, MappingEvent, MappingEventKind

__all__ = [
    "Feedback",
    "FeedbackKind",
    "StructureKind",
    "compensation_probability",
    "feedback_factor",
    "feedback_from_cycle",
    "feedback_from_parallel_paths",
    "positive_feedback_probability",
    "NeighborhoodStructureCache",
    "NetworkEvidence",
    "NetworkStructureCache",
    "StructureCacheStatistics",
    "analyze_neighborhood",
    "analyze_network",
    "MAXIMUM_ENTROPY_PRIOR",
    "PriorBeliefStore",
    "PDMSFactorGraph",
    "build_factor_graph",
    "build_factor_graph_from_evidence",
    "variable_name_for",
    "LocalFactorGraph",
    "build_local_graphs",
    "mapping_owner",
    "AssessmentLane",
    "AssessmentPlan",
    "BatchedEmbeddedMessagePassing",
    "BlockedEmbeddedMessagePassing",
    "compile_assessment_plan",
    "EmbeddedMessagePassing",
    "EmbeddedOptions",
    "EmbeddedResult",
    "MessageTransport",
    "TransportStatistics",
    "LazySchedule",
    "PeriodicSchedule",
    "ScheduleReport",
    "AttributeAssessment",
    "MappingQualityAssessor",
    "AssessmentRound",
    "EvolvingPDMS",
    "MappingEvent",
    "MappingEventKind",
]
