"""Per-peer local factor graphs.

The paper (§4.1, Figure 6) shows that the global PDMS factor graph can be
split into per-peer fragments: a peer stores, for each of its *outgoing*
mappings, the mapping variable, its prior factor, and one replica of every
feedback factor involving that mapping.  The other mapping variables of
those feedback factors live at other peers ("virtual peers" in the figure);
the peer only keeps the last message it received from them.

This module derives the fragments from network evidence; the actual
decentralised message exchange is implemented in
:mod:`repro.core.embedded`, which consumes these fragments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..exceptions import FeedbackError, PDMSError
from ..factorgraph.factors import prior_factor
from ..factorgraph.graph import FactorGraph
from ..factorgraph.variables import BinaryVariable
from ..pdms.network import PDMSNetwork
from .beliefs import PriorBeliefStore
from .feedback import Feedback, feedback_factor
from .pdms_factor_graph import variable_name_for

__all__ = ["LocalFactorGraph", "build_local_graphs", "mapping_owner"]


def mapping_owner(mapping_name: str) -> str:
    """Peer owning a mapping: the peer the mapping departs from.

    Mapping names follow the ``source->target[#label]`` convention of
    :class:`repro.mapping.mapping.MappingIdentifier`.
    """
    if "->" not in mapping_name:
        raise PDMSError(f"malformed mapping name {mapping_name!r}")
    return mapping_name.split("->", 1)[0]


@dataclass
class LocalFactorGraph:
    """The fragment of the global factor graph stored at one peer.

    Attributes
    ----------
    peer_name:
        The peer owning this fragment.
    attribute:
        Attribute the fragment reasons about (fine granularity).
    owned_mappings:
        Names of this peer's outgoing mappings that appear in at least one
        informative feedback.
    feedbacks:
        The informative feedbacks involving at least one owned mapping; the
        peer holds a replica of each corresponding feedback factor.
    remote_participants:
        For every feedback identifier, the mapping names that belong to
        *other* peers, with their owning peer — the peers this fragment
        exchanges remote messages with.
    """

    peer_name: str
    attribute: str
    owned_mappings: Tuple[str, ...]
    feedbacks: Tuple[Feedback, ...]
    remote_participants: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @property
    def remote_peers(self) -> Tuple[str, ...]:
        """All peers this fragment needs to exchange messages with."""
        peers: Dict[str, None] = {}
        for participants in self.remote_participants.values():
            for owner in participants.values():
                peers.setdefault(owner, None)
        return tuple(peers)

    def feedbacks_for(self, mapping_name: str) -> Tuple[Feedback, ...]:
        """Feedbacks involving one of the peer's owned mappings."""
        return tuple(
            f for f in self.feedbacks if mapping_name in f.mapping_names
        )

    def to_factor_graph(
        self,
        priors: PriorBeliefStore | TMapping[str, float] | float | None = None,
        delta: float = 0.1,
    ) -> FactorGraph:
        """Materialise the fragment as a standalone :class:`FactorGraph`.

        Remote mapping variables are included (with uninformative priors)
        because the factor replicas span them; this materialised view is
        what Figure 6 depicts and is mainly useful for inspection, testing
        and documentation — the embedded engine works on the fragment
        directly.
        """
        graph = FactorGraph(name=f"local({self.peer_name})@{self.attribute}")
        variables: Dict[str, BinaryVariable] = {}

        def prior_for(mapping_name: str) -> float:
            if priors is None:
                return 0.5
            if isinstance(priors, PriorBeliefStore):
                return priors.prior(mapping_name, self.attribute)
            if isinstance(priors, (int, float)):
                return float(priors)
            return float(priors.get(mapping_name, 0.5))

        for feedback in self.feedbacks:
            for mapping_name in feedback.mapping_names:
                if mapping_name in variables:
                    continue
                variable = BinaryVariable(variable_name_for(mapping_name, self.attribute))
                variables[mapping_name] = variable
                graph.add_variable(variable)
                if mapping_name in self.owned_mappings:
                    graph.add_factor(prior_factor(variable, prior_for(mapping_name)))
        for feedback in self.feedbacks:
            graph.add_factor(
                feedback_factor(
                    feedback, delta, [variables[m] for m in feedback.mapping_names]
                )
            )
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalFactorGraph(peer={self.peer_name!r}, attribute={self.attribute!r}, "
            f"owned={len(self.owned_mappings)}, feedbacks={len(self.feedbacks)})"
        )


def build_local_graphs(
    feedbacks: Iterable[Feedback],
    attribute: Optional[str] = None,
    owners: Optional[TMapping[str, str]] = None,
) -> Dict[str, LocalFactorGraph]:
    """Split feedback evidence into per-peer local factor graph fragments.

    Parameters
    ----------
    feedbacks:
        Informative feedbacks (neutral ones are skipped automatically).
    attribute:
        Attribute of the fragments; inferred when omitted.
    owners:
        Optional explicit ``{mapping name: peer name}`` ownership map; by
        default the owner is the mapping's source peer.

    Returns
    -------
    dict
        ``{peer name: LocalFactorGraph}`` for every peer owning at least one
        mapping with evidence.
    """
    informative = [f for f in feedbacks if f.is_informative]
    if not informative:
        raise FeedbackError("no informative feedback to build local graphs from")
    attributes = {f.attribute for f in informative}
    if attribute is None:
        if len(attributes) != 1:
            raise FeedbackError(
                f"feedbacks concern several attributes {sorted(attributes)}; "
                "build local graphs per attribute"
            )
        attribute = next(iter(attributes))

    def owner_of(mapping_name: str) -> str:
        if owners is not None and mapping_name in owners:
            return owners[mapping_name]
        return mapping_owner(mapping_name)

    per_peer_feedbacks: Dict[str, List[Feedback]] = {}
    per_peer_owned: Dict[str, Dict[str, None]] = {}
    for feedback in informative:
        involved_owners = {owner_of(m) for m in feedback.mapping_names}
        for peer in involved_owners:
            owned_here = [m for m in feedback.mapping_names if owner_of(m) == peer]
            if not owned_here:
                continue
            per_peer_feedbacks.setdefault(peer, [])
            if feedback not in per_peer_feedbacks[peer]:
                per_peer_feedbacks[peer].append(feedback)
            per_peer_owned.setdefault(peer, {})
            for mapping_name in owned_here:
                per_peer_owned[peer].setdefault(mapping_name, None)

    fragments: Dict[str, LocalFactorGraph] = {}
    for peer, peer_feedbacks in per_peer_feedbacks.items():
        remote: Dict[str, Dict[str, str]] = {}
        for feedback in peer_feedbacks:
            remote[feedback.identifier] = {
                mapping_name: owner_of(mapping_name)
                for mapping_name in feedback.mapping_names
                if owner_of(mapping_name) != peer
            }
        fragments[peer] = LocalFactorGraph(
            peer_name=peer,
            attribute=attribute,
            owned_mappings=tuple(per_peer_owned[peer]),
            feedbacks=tuple(peer_feedbacks),
            remote_participants=remote,
        )
    return fragments
