"""Building PDMS factor graphs from feedback evidence.

Following §3.2/§3.3, the global factor graph for one attribute contains

* one binary correctness variable per mapping that appears in at least one
  informative feedback (mappings without any evidence keep their prior and
  need no inference),
* one unary prior factor per such variable, and
* one feedback factor per informative (positive or negative) feedback,
  linking all the mapping variables of that cycle / pair of parallel paths.

The same builder also serves the *local* per-peer fragments (§4.1): a peer
simply passes the subset of feedbacks it knows about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..exceptions import FactorGraphError, FeedbackError
from ..factorgraph.compiled import CompiledFactorGraph
from ..factorgraph.factors import prior_factor
from ..factorgraph.graph import FactorGraph
from ..factorgraph.variables import BinaryVariable
from .analysis import NetworkEvidence
from .beliefs import PriorBeliefStore
from .feedback import Feedback, feedback_factor

__all__ = ["PDMSFactorGraph", "build_factor_graph", "variable_name_for"]


def variable_name_for(mapping_name: str, attribute: str) -> str:
    """Canonical factor-graph variable name for a (mapping, attribute) pair."""
    return f"m[{mapping_name}]@{attribute}"


@dataclass(frozen=True)
class PDMSFactorGraph:
    """A factor graph for one attribute plus its bookkeeping.

    Attributes
    ----------
    graph:
        The underlying :class:`~repro.factorgraph.graph.FactorGraph`.
    attribute:
        Attribute the graph reasons about.
    mapping_names:
        Mapping names with a correctness variable in the graph, in insertion
        order.
    delta:
        Error-compensation probability used in all feedback factors.
    """

    graph: FactorGraph
    attribute: str
    mapping_names: Tuple[str, ...]
    delta: float

    def variable_name(self, mapping_name: str) -> str:
        """Variable name of ``mapping_name`` (must be part of the graph)."""
        name = variable_name_for(mapping_name, self.attribute)
        if not self.graph.has_variable(name):
            raise FactorGraphError(
                f"mapping {mapping_name!r} has no variable in this factor graph"
            )
        return name

    def has_mapping(self, mapping_name: str) -> bool:
        return self.graph.has_variable(variable_name_for(mapping_name, self.attribute))

    def compiled(self) -> CompiledFactorGraph:
        """Compile the graph into the vectorized message-passing form.

        PDMS factor graphs are always compilable (all variables are binary
        correctness variables), so unlike
        :func:`~repro.factorgraph.compiled.compile_factor_graph` this raises
        instead of returning ``None`` on failure.
        """
        return CompiledFactorGraph(self.graph)


def build_factor_graph(
    feedbacks: Iterable[Feedback],
    priors: PriorBeliefStore | TMapping[str, float] | float | None = None,
    delta: float = 0.1,
    attribute: Optional[str] = None,
    name: str = "pdms-factor-graph",
) -> PDMSFactorGraph:
    """Build the factor graph encoding a set of feedbacks.

    Parameters
    ----------
    feedbacks:
        Feedback evidence; neutral feedbacks are ignored (they carry no
        factor).  All feedbacks must concern the same attribute.
    priors:
        Prior beliefs, given either as a :class:`PriorBeliefStore`, a plain
        ``{mapping name: prior}`` dict, a single float applied to every
        mapping, or ``None`` for the maximum-entropy default of 0.5.
    delta:
        Error-compensation probability Δ.
    attribute:
        Attribute the graph is about; inferred from the feedbacks when
        omitted.
    """
    informative = [f for f in feedbacks if f.is_informative]
    if not informative:
        raise FeedbackError(
            "cannot build a factor graph without at least one informative "
            "(positive or negative) feedback"
        )
    attributes = {f.attribute for f in informative}
    if attribute is None:
        if len(attributes) != 1:
            raise FeedbackError(
                f"feedbacks concern several attributes {sorted(attributes)}; "
                "build one factor graph per attribute (fine granularity)"
            )
        attribute = next(iter(attributes))
    else:
        mismatched = attributes - {attribute}
        if mismatched:
            raise FeedbackError(
                f"feedbacks concern attributes {sorted(mismatched)} but the "
                f"graph is being built for {attribute!r}"
            )
    if not 0.0 <= delta <= 1.0:
        raise FeedbackError(f"Δ must be in [0, 1], got {delta}")

    graph = FactorGraph(name=f"{name}@{attribute}")
    mapping_names: List[str] = []
    variables: Dict[str, BinaryVariable] = {}

    def prior_for(mapping_name: str) -> float:
        if priors is None:
            return 0.5
        if isinstance(priors, PriorBeliefStore):
            return priors.prior(mapping_name, attribute)
        if isinstance(priors, (int, float)):
            return float(priors)
        return float(priors.get(mapping_name, 0.5))

    # Variables and prior factors (top two layers of the paper's figures).
    for feedback in informative:
        for mapping_name in feedback.mapping_names:
            if mapping_name in variables:
                continue
            variable = BinaryVariable(variable_name_for(mapping_name, attribute))
            variables[mapping_name] = variable
            mapping_names.append(mapping_name)
            graph.add_variable(variable)
            graph.add_factor(
                prior_factor(variable, prior_for(mapping_name))
            )

    # Feedback factors (bottom two layers).
    for feedback in informative:
        factor_variables = [variables[name] for name in feedback.mapping_names]
        graph.add_factor(feedback_factor(feedback, delta, factor_variables))

    return PDMSFactorGraph(
        graph=graph,
        attribute=attribute,
        mapping_names=tuple(mapping_names),
        delta=delta,
    )


def build_factor_graph_from_evidence(
    evidence: NetworkEvidence,
    priors: PriorBeliefStore | TMapping[str, float] | float | None = None,
    delta: float = 0.1,
    name: str = "pdms-factor-graph",
) -> PDMSFactorGraph:
    """Convenience wrapper building the graph straight from
    :class:`~repro.core.analysis.NetworkEvidence`."""
    return build_factor_graph(
        evidence.feedbacks,
        priors=priors,
        delta=delta,
        attribute=evidence.attribute,
        name=name,
    )
