"""First-class rule set encoding the repository's architectural invariants.

Five families, generated from the tables in :mod:`repro.lintkit.contracts`:

``layering``
    ``layering-import-dag`` — the sanctioned import DAG between layers;
    ``layering-plan-kernels`` — engines reach compiled kernels through the
    plan IR only; ``layering-discovery-walkers`` — the core reaches
    structure discovery through probe plans, never the raw walkers.
``determinism``
    ``determinism-global-rng`` — no hidden-global-state randomness;
    ``determinism-unseeded-rng`` — rng factories take explicit seeds;
    ``determinism-wallclock`` — no wall-clock reads in kernel/sweep/
    discovery code paths.
``process``
    ``process-closure`` — no lambdas/local functions at executor
    submission sites; ``process-boundary`` — worker entries are
    module-level functions and inline-constructed wire payloads are
    registered in the picklable-boundary allowlist.
``knob``
    ``knob-env-read`` — ``os.environ`` only inside the validated resolver
    modules; everything else goes through
    :func:`repro.constants.read_env`.
``numeric``
    ``numeric-float-equality`` — no ``==``/``!=`` against float literals;
    ``numeric-mutable-default`` — no mutable default arguments.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence

from . import contracts
from .engine import ParsedModule
from .model import Finding, Rule

__all__ = ["DEFAULT_RULES", "all_rules", "rules_by_id"]


def _attribute_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty list for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _in_scope(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------


class ImportDagRule:
    """Top-level imports must follow the sanctioned layer DAG."""

    rule_id = "layering-import-dag"
    family = "layering"
    description = (
        "cross-layer imports must follow the sanctioned DAG declared in "
        "repro.lintkit.contracts (deferred cycle-breakers allowlisted)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        source_layer = contracts.layer_of(module.module)
        if not source_layer:
            return
        allowed = contracts.IMPORT_DAG[source_layer]
        for record in module.imports:
            targets = [record.base]
            # `from repro.pdms import discovery` imports the submodule —
            # classify by the most specific declared prefix.
            for name in record.names:
                candidate = f"{record.base}.{name}"
                if contracts.layer_of(candidate) != contracts.layer_of(
                    record.base
                ):
                    targets.append(candidate)
            for target in targets:
                if not target.startswith("repro"):
                    continue
                target_layer = contracts.layer_of(target)
                if not target_layer or target_layer == source_layer:
                    continue
                if module.is_package and target.startswith(
                    module.module + "."
                ):
                    continue  # package __init__ re-exporting its subtree
                if target_layer in allowed:
                    continue
                if (
                    record.deferred
                    and (source_layer, target_layer)
                    in contracts.DEFERRED_EDGES
                ):
                    continue
                yield module.finding(
                    self.rule_id,
                    record.lineno,
                    f"layer {source_layer!r} must not import "
                    f"{target!r} (layer {target_layer!r}); sanctioned "
                    f"dependencies: "
                    f"{sorted(allowed) if allowed else 'none'}",
                )


class PlanKernelRule:
    """Engines import kernels from the plan IR, not the compiled module."""

    rule_id = "layering-plan-kernels"
    family = "layering"
    description = (
        "engine-layer modules must import compiled kernels via "
        "repro.factorgraph.plan, never repro.factorgraph.compiled"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not _in_scope(module.module, contracts.ENGINE_LAYER_PREFIXES):
            return
        implementation = contracts.KERNEL_IMPLEMENTATION_MODULE
        for record in module.imports:
            if record.is_from:
                if not record.base.endswith("factorgraph.compiled"):
                    continue
                for name in record.names:
                    if name in contracts.KERNEL_NAMES or name == "*":
                        yield module.finding(
                            self.rule_id,
                            record.lineno,
                            f"imports kernel {name!r} from "
                            f"{implementation}; use "
                            f"{contracts.KERNEL_SURFACE_MODULE} instead",
                        )
            elif "factorgraph.compiled" in record.base:
                yield module.finding(
                    self.rule_id,
                    record.lineno,
                    f"imports module {record.base!r}; engines lower "
                    f"through {contracts.KERNEL_SURFACE_MODULE}",
                )


class DiscoveryWalkerRule:
    """The core reaches discovery through probe plans, not raw walkers."""

    rule_id = "layering-discovery-walkers"
    family = "layering"
    description = (
        "engine-layer modules must not import enumeration walkers from "
        "repro.pdms.probing; discovery flows through repro.pdms.discovery "
        "plans"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not _in_scope(module.module, contracts.ENGINE_LAYER_PREFIXES):
            return
        for record in module.imports:
            if not record.is_from or not record.base.endswith("pdms.probing"):
                continue
            for name in record.names:
                if name in contracts.WALKER_NAMES or name == "*":
                    yield module.finding(
                        self.rule_id,
                        record.lineno,
                        f"imports walker {name!r} from "
                        f"{contracts.WALKER_MODULE}; lower the probe onto "
                        f"a repro.pdms.discovery plan instead",
                    )


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class GlobalRngRule:
    """No hidden-global-state randomness anywhere in the package."""

    rule_id = "determinism-global-rng"
    family = "determinism"
    description = (
        "module-level random.* / numpy.random.* global-state calls are "
        "banned; rngs flow from seeded Random/Generator arguments"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for record in module.imports:
            if not record.is_from:
                continue
            if record.base == "random":
                for name in record.names:
                    if name in contracts.GLOBAL_RANDOM_FUNCS:
                        yield module.finding(
                            self.rule_id,
                            record.lineno,
                            f"imports global-state {name!r} from random; "
                            f"pass a seeded random.Random instead",
                        )
            elif record.base in ("numpy.random", "np.random"):
                for name in record.names:
                    if name not in contracts.ALLOWED_NUMPY_RANDOM:
                        yield module.finding(
                            self.rule_id,
                            record.lineno,
                            f"imports global-state {name!r} from "
                            f"numpy.random; use a seeded "
                            f"numpy.random.Generator",
                        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if len(chain) == 2 and chain[0] == "random":
                if chain[1] in contracts.GLOBAL_RANDOM_FUNCS:
                    yield module.finding(
                        self.rule_id,
                        node,
                        f"call to random.{chain[1]} drives the hidden "
                        f"global rng; use a seeded random.Random stream",
                    )
            elif (
                len(chain) == 3
                and chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and chain[2] not in contracts.ALLOWED_NUMPY_RANDOM
            ):
                yield module.finding(
                    self.rule_id,
                    node,
                    f"call to {chain[0]}.random.{chain[2]} drives numpy's "
                    f"hidden global rng; use a seeded "
                    f"numpy.random.Generator",
                )


class UnseededRngRule:
    """Rng factories must receive an explicit seed argument."""

    rule_id = "determinism-unseeded-rng"
    family = "determinism"
    description = (
        "random.Random()/default_rng()/RandomState() without a seed bind "
        "to OS entropy and break replay; seed explicitly (DEFAULT_SEED)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if node.args or node.keywords:
                continue
            chain = _attribute_chain(node.func)
            if not chain or chain[-1] not in contracts.RNG_FACTORIES:
                continue
            rendered = ".".join(chain)
            yield module.finding(
                self.rule_id,
                node,
                f"{rendered}() without a seed is unreproducible; pass an "
                f"explicit seed (repro.constants.DEFAULT_SEED by default)",
            )


class WallclockRule:
    """No wall-clock reads inside the deterministic code paths."""

    rule_id = "determinism-wallclock"
    family = "determinism"
    description = (
        "time.time()/datetime.now() are banned in kernel/sweep/discovery "
        "modules; durations use monotonic/perf_counter, timestamps stay "
        "out of the numerics"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not _in_scope(module.module, contracts.DETERMINISM_SCOPE):
            return
        for record in module.imports:
            if record.is_from and record.base == "time":
                for name in record.names:
                    if name in ("time", "time_ns"):
                        yield module.finding(
                            self.rule_id,
                            record.lineno,
                            f"imports wall-clock time.{name} into a "
                            f"deterministic code path",
                        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if len(chain) < 2:
                continue
            head, tail = chain[-2], chain[-1]
            if head == "time" and tail in ("time", "time_ns"):
                yield module.finding(
                    self.rule_id,
                    node,
                    "wall-clock time.%s() in a deterministic code path; "
                    "use time.monotonic()/perf_counter() for durations"
                    % tail,
                )
            elif head in ("datetime", "date") and tail in (
                "now",
                "utcnow",
                "today",
            ):
                yield module.finding(
                    self.rule_id,
                    node,
                    f"wall-clock {head}.{tail}() in a deterministic code "
                    f"path; timestamps belong to the reporting layer",
                )


# ---------------------------------------------------------------------------
# process safety
# ---------------------------------------------------------------------------


def _submitted_callable(node: ast.Call):
    """The callable argument of a submission/constructor call, if any."""
    func_chain = _attribute_chain(node.func)
    terminal = func_chain[-1] if func_chain else ""
    if terminal in contracts.EXECUTOR_SUBMISSION_ATTRS and isinstance(
        node.func, ast.Attribute
    ):
        return node.args[0] if node.args else None, terminal
    if terminal in contracts.PROCESS_CONSTRUCTORS:
        for keyword in node.keywords:
            if keyword.arg in ("target", "initializer", "func"):
                return keyword.value, terminal
    return None, None


def _is_process_site(terminal: str) -> bool:
    return (
        terminal in contracts.PROCESS_SUBMISSION_ATTRS
        or terminal in contracts.PROCESS_CONSTRUCTORS
    )


class ClosureSubmissionRule:
    """No lambdas or local functions at executor submission sites."""

    rule_id = "process-closure"
    family = "process"
    description = (
        "lambdas/local functions must not be shipped to multiprocessing "
        "or executor submission sites; submit module-level functions"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target, terminal = _submitted_callable(node)
            if target is None:
                continue
            if isinstance(target, ast.Lambda):
                yield module.finding(
                    self.rule_id,
                    node,
                    f"lambda passed to {terminal}(); executors take "
                    f"module-level functions only",
                )
            elif (
                isinstance(target, ast.Name)
                and target.id in module.local_function_names
            ):
                yield module.finding(
                    self.rule_id,
                    node,
                    f"local function {target.id!r} passed to "
                    f"{terminal}(); closures do not survive the process "
                    f"boundary — hoist it to module level",
                )


class PicklableBoundaryRule:
    """Process fan-outs ship registered, module-level-addressable types."""

    rule_id = "process-boundary"
    family = "process"
    description = (
        "worker entries must be module-level functions and inline-"
        "constructed wire payloads must be registered in the "
        "picklable-boundary allowlist (contracts.PICKLABLE_BOUNDARY)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target, terminal = _submitted_callable(node)
            if terminal is None or not _is_process_site(terminal):
                continue
            if target is not None and not isinstance(
                target, (ast.Name, ast.Lambda)
            ):
                chain = _attribute_chain(target)
                if chain and chain[0] in ("self", "cls"):
                    yield module.finding(
                        self.rule_id,
                        node,
                        f"bound method {'.'.join(chain)} shipped through "
                        f"{terminal}(); process workers take module-level "
                        f"functions (the instance would cross the pickle "
                        f"boundary whole)",
                    )
            for finding in self._check_payloads(module, node, terminal):
                yield finding

    def _check_payloads(
        self, module: ParsedModule, node: ast.Call, terminal: str
    ) -> Iterator[Finding]:
        payloads: List[ast.AST] = list(node.args[1:])
        for keyword in node.keywords:
            if keyword.arg in ("args", "initargs", "iterable"):
                payloads.append(keyword.value)
        stack = payloads
        while stack:
            expr = stack.pop()
            if isinstance(expr, (ast.Tuple, ast.List)):
                stack.extend(expr.elts)
                continue
            if isinstance(expr, ast.Call):
                chain = _attribute_chain(expr.func)
                name = chain[-1] if chain else ""
                if (
                    name
                    and name[0].isupper()
                    and name not in contracts.PICKLABLE_BOUNDARY
                ):
                    yield module.finding(
                        self.rule_id,
                        expr,
                        f"{name!r} constructed inline at a {terminal}() "
                        f"fan-out but not registered in the picklable-"
                        f"boundary allowlist "
                        f"(repro.lintkit.contracts.PICKLABLE_BOUNDARY)",
                    )


# ---------------------------------------------------------------------------
# knob hygiene
# ---------------------------------------------------------------------------


class EnvReadRule:
    """``os.environ`` stays behind the validated resolver modules."""

    rule_id = "knob-env-read"
    family = "knob"
    description = (
        "os.environ/os.getenv outside repro.constants is banned; read "
        "knobs through repro.constants.read_env so every knob is declared "
        "and validated once"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if module.module in contracts.KNOB_RESOLVER_MODULES:
            return
        for record in module.imports:
            if record.is_from and record.base == "os":
                for name in record.names:
                    if name in ("environ", "getenv", "putenv"):
                        yield module.finding(
                            self.rule_id,
                            record.lineno,
                            f"imports os.{name}; environment knobs are "
                            f"read through repro.constants.read_env",
                        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attribute_chain(node)
            # Match only the innermost attribute (`os.environ`), so
            # `os.environ.get(...)` yields one finding, not two.
            if len(chain) == 2 and chain[0] == "os" and chain[1] in (
                "environ",
                "getenv",
                "putenv",
            ):
                yield module.finding(
                    self.rule_id,
                    node,
                    f"direct os.{chain[1]} access bypasses the validated "
                    f"knob resolvers; use repro.constants.read_env "
                    f"(declared knobs only)",
                )


# ---------------------------------------------------------------------------
# numeric correctness
# ---------------------------------------------------------------------------


class FloatEqualityRule:
    """No equality comparisons against float literals."""

    rule_id = "numeric-float-equality"
    family = "numeric"
    description = (
        "== / != against a float literal is almost always a rounding bug; "
        "compare with a tolerance (deliberate exact-zero checks carry an "
        "inline suppression)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            for side in [node.left, *node.comparators]:
                if isinstance(side, ast.Constant) and isinstance(
                    side.value, float
                ):
                    yield module.finding(
                        self.rule_id,
                        node,
                        f"equality comparison against float literal "
                        f"{side.value!r}; use a tolerance "
                        f"(math.isclose / abs(a-b) < eps)",
                    )
                    break


class MutableDefaultRule:
    """No mutable default arguments."""

    rule_id = "numeric-mutable-default"
    family = "numeric"
    description = (
        "list/dict/set default arguments are shared across calls; default "
        "to None and build inside the function"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.SetComp,
                              ast.ListComp, ast.DictComp)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")
                )
                if mutable:
                    yield module.finding(
                        self.rule_id,
                        default,
                        "mutable default argument is shared across calls; "
                        "use None and construct per call",
                    )


def all_rules() -> List[Rule]:
    """Fresh instances of every rule, in reporting order."""
    return [
        ImportDagRule(),
        PlanKernelRule(),
        DiscoveryWalkerRule(),
        GlobalRngRule(),
        UnseededRngRule(),
        WallclockRule(),
        ClosureSubmissionRule(),
        PicklableBoundaryRule(),
        EnvReadRule(),
        FloatEqualityRule(),
        MutableDefaultRule(),
    ]


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in all_rules()}


#: The default rule set ``repro-lint`` runs.
DEFAULT_RULES: List[Rule] = all_rules()
