"""``python -m repro.lintkit`` — the uninstalled spelling of repro-lint."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
