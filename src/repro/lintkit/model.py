"""Finding records and the rule protocol of the lintkit engine."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ParsedModule

__all__ = ["Finding", "Rule"]


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file/line and a rule id.

    ``module`` is the dotted module name relative to the scanned tree —
    stable across checkouts, unlike ``path`` — and is what the baseline
    fingerprint is computed from."""

    rule: str
    module: str
    path: str
    line: int
    message: str
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    def fingerprint(self) -> str:
        """Stable identity of the finding for baseline matching.

        Deliberately excludes the line number, so baselined findings
        survive unrelated edits that shift the file."""
        digest = hashlib.sha256(
            f"{self.rule}:{self.module}:{self.message}".encode("utf-8")
        )
        return digest.hexdigest()[:12]

    def with_flags(
        self, *, suppressed: bool = False, baselined: bool = False
    ) -> "Finding":
        return replace(self, suppressed=suppressed, baselined=baselined)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@runtime_checkable
class Rule(Protocol):
    """A pluggable lint rule.

    Implementations carry a stable ``rule_id`` (what suppressions and the
    baseline refer to), a ``family`` grouping related rules, and a one-line
    ``description`` rendered by ``repro-lint --list-rules``.  ``check``
    receives a fully parsed module (AST + suppression table, cached per
    file) and yields findings; it must not mutate the module."""

    rule_id: str
    family: str
    description: str

    def check(self, module: "ParsedModule") -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        ...
