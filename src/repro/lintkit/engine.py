"""AST visitor core of the lintkit: parsing, caching, suppressions, runs.

The engine parses each file once per (path, mtime, size) — every rule of a
run shares the same :class:`ParsedModule`, and repeated runs in one process
(the test suite, the benchmark provenance stamp) reuse the cache — and owns
the two cross-cutting mechanics rules should not reimplement:

* **module naming** — a scanned file is addressed by its dotted module name
  relative to the scanned tree (``repro.core.embedded``), which is what the
  layer tables, the baseline fingerprints and the reports key on;
* **inline suppressions** — ``# lint: disable=<rule-id>[,<rule-id>...]``
  silences the named rules on that physical line only.  A suppression that
  does not name a rule, or names an unknown one, is itself reported under
  the ``lint-suppression`` rule id.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .model import Finding, Rule

__all__ = [
    "ImportRecord",
    "ParsedModule",
    "SUPPRESSION_RULE_ID",
    "collect_files",
    "parse_module",
    "run_rules",
]

#: Rule id of the engine's own findings about malformed suppressions.
SUPPRESSION_RULE_ID = "lint-suppression"

#: Anchored at the start of the comment, so prose that merely *mentions*
#: the directive (docs, this line) is not parsed as one.
_DISABLE_RE = re.compile(r"^#\s*lint:\s*disable(?P<eq>=)?(?P<rules>[\w\-, ]*)")


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, resolved to absolute dotted targets.

    ``targets`` lists the imported modules (for ``from X import a, b`` the
    base module plus, per alias, the candidate submodule ``X.a`` — rules
    that care about submodule layering pick the most specific declared
    prefix).  ``deferred`` is true for imports nested inside a function —
    the sanctioned cycle-breaking position."""

    base: str
    names: Tuple[str, ...]
    lineno: int
    deferred: bool
    is_from: bool


@dataclass
class ParsedModule:
    """A parsed source file plus the per-file indexes rules share."""

    path: str
    module: str
    is_package: bool
    source: str
    tree: ast.Module
    #: line -> rule ids disabled on that line
    suppressions: Mapping[int, FrozenSet[str]]
    #: (line, reason) pairs for malformed ``# lint: disable`` comments
    malformed_suppressions: Tuple[Tuple[int, str], ...]
    #: names listed in ``# lint: disable=...`` (validated against the
    #: registry at run time, since the engine does not know the rule set)
    suppression_names: Tuple[Tuple[int, str], ...]
    imports: Tuple[ImportRecord, ...] = ()
    #: names of functions defined inside another function (closure
    #: candidates for the process-safety rules)
    local_function_names: FrozenSet[str] = frozenset()

    def finding(self, rule_id: str, node_or_line, message: str) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(
            rule=rule_id,
            module=self.module,
            path=self.path,
            line=int(line),
            message=message,
        )


def _parse_suppressions(
    source: str,
) -> Tuple[
    Dict[int, FrozenSet[str]],
    Tuple[Tuple[int, str], ...],
    Tuple[Tuple[int, str], ...],
]:
    table: Dict[int, FrozenSet[str]] = {}
    malformed: List[Tuple[int, str]] = []
    names: List[Tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return table, tuple(malformed), tuple(names)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.match(token.string)
        if match is None:
            continue
        line = token.start[0]
        listed = [
            rule.strip()
            for rule in (match.group("rules") or "").split(",")
            if rule.strip()
        ]
        if not match.group("eq") or not listed:
            malformed.append(
                (line, "inline suppression must name a rule id: "
                       "'# lint: disable=<rule-id>'")
            )
            continue
        table[line] = frozenset(listed) | table.get(line, frozenset())
        names.extend((line, rule) for rule in listed)
    return table, tuple(malformed), tuple(names)


def _resolve_from_import(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    up = node.level - 1
    if up >= len(parts) and up > 0:
        return None  # relative import escaping the scanned tree
    base = parts[: len(parts) - up] if up else parts
    if node.module:
        return ".".join(base + [node.module]) if base else node.module
    return ".".join(base) if base else None


class _Indexer(ast.NodeVisitor):
    """One walk collecting imports (with deferral depth) and local defs."""

    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.depth = 0
        self.imports: List[ImportRecord] = []
        self.local_function_names: set = set()

    def _visit_function(self, node) -> None:
        if self.depth:
            self.local_function_names.add(node.name)
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.append(
                ImportRecord(
                    base=alias.name,
                    names=(),
                    lineno=node.lineno,
                    deferred=self.depth > 0,
                    is_from=False,
                )
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = _resolve_from_import(self.module, self.is_package, node)
        if base is None:
            return
        self.imports.append(
            ImportRecord(
                base=base,
                names=tuple(alias.name for alias in node.names),
                lineno=node.lineno,
                deferred=self.depth > 0,
                is_from=True,
            )
        )


def _module_name(root: pathlib.Path, path: pathlib.Path) -> Tuple[str, bool]:
    """Dotted module name of ``path`` relative to scan root ``root``.

    If the root itself is a package (contains ``__init__.py``), the chain
    of package names up from the root is prepended, so scanning
    ``src/repro`` and scanning ``src`` name modules identically."""
    prefix: List[str] = []
    probe = root
    while (probe / "__init__.py").exists():
        prefix.insert(0, probe.name)
        probe = probe.parent
    rel = path.relative_to(root)
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    is_package = parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    dotted = ".".join(prefix + parts)
    return dotted or root.name, is_package


#: (resolved path, mtime_ns, size) -> ParsedModule
_CACHE: Dict[Tuple[str, int, int], ParsedModule] = {}


def parse_module(
    path: pathlib.Path, root: Optional[pathlib.Path] = None
) -> ParsedModule:
    """Parse ``path`` (cached on content identity) into a ParsedModule."""
    resolved = path.resolve()
    stat = resolved.stat()
    key = (str(resolved), stat.st_mtime_ns, stat.st_size)
    cached = _CACHE.get(key)
    reported = str(path)
    if cached is not None:
        if cached.path == reported:
            return cached
        cached = None  # same file scanned under a different root/path
    source = resolved.read_text(encoding="utf-8")
    module, is_package = _module_name(root or path.parent, path)
    tree = ast.parse(source, filename=reported)
    suppressions, malformed, names = _parse_suppressions(source)
    indexer = _Indexer(module, is_package)
    indexer.visit(tree)
    parsed = ParsedModule(
        path=reported,
        module=module,
        is_package=is_package,
        source=source,
        tree=tree,
        suppressions=suppressions,
        malformed_suppressions=malformed,
        suppression_names=names,
        imports=tuple(indexer.imports),
        local_function_names=frozenset(indexer.local_function_names),
    )
    _CACHE[key] = parsed
    return parsed


def collect_files(paths: Sequence) -> List[Tuple[pathlib.Path, pathlib.Path]]:
    """Expand files/directories into (file, scan-root) pairs."""
    pairs: List[Tuple[pathlib.Path, pathlib.Path]] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                pairs.append((file, path))
        elif path.suffix == ".py":
            pairs.append((path, path.parent))
        else:
            raise FileNotFoundError(
                f"repro-lint target {raw!r} is neither a directory nor a "
                f".py file"
            )
    return pairs


def run_rules(
    paths: Sequence,
    rules: Sequence[Rule],
    *,
    known_rule_ids: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run ``rules`` over ``paths``; returns all findings, sorted.

    Suppressions are applied here: a finding whose rule id is disabled on
    its own line comes back with ``suppressed=True`` instead of being
    dropped, so reports can account for it.  Malformed suppressions and
    suppressions naming rule ids outside ``known_rule_ids`` are reported
    under :data:`SUPPRESSION_RULE_ID` (never suppressible)."""
    known = frozenset(known_rule_ids) if known_rule_ids is not None else None
    findings: List[Finding] = []
    for file, root in collect_files(paths):
        parsed = parse_module(file, root)
        for rule in rules:
            for finding in rule.check(parsed):
                disabled = parsed.suppressions.get(finding.line, frozenset())
                if finding.rule in disabled:
                    finding = finding.with_flags(suppressed=True)
                findings.append(finding)
        for line, reason in parsed.malformed_suppressions:
            findings.append(parsed.finding(SUPPRESSION_RULE_ID, line, reason))
        if known is not None:
            for line, name in parsed.suppression_names:
                if name not in known and name != SUPPRESSION_RULE_ID:
                    findings.append(
                        parsed.finding(
                            SUPPRESSION_RULE_ID,
                            line,
                            f"suppression names unknown rule {name!r}",
                        )
                    )
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
