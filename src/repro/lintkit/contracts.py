"""The repository's architectural contracts, stated once as data.

Every invariant the :mod:`repro.lintkit` rules enforce is declared in this
module — the layering DAG, the plan-IR kernel surface, the discovery-walker
ban, the rng-stream contract's banned global entry points, the
picklable-boundary allowlist of the process fan-outs, and the registry of
validated environment knobs.  ``ARCHITECTURE.md`` at the repository root is
the prose rendering of the same contracts (a doc-sync test asserts it names
every layer, boundary type and knob declared here); the rules in
:mod:`repro.lintkit.rules` are generated from these tables, so changing a
contract means editing exactly one data structure and its prose twin.

Layer model
-----------
A module's *layer* is the most specific prefix of its dotted name found in
:data:`LAYER_PREFIXES`.  Top-level imports between layers must follow
:data:`IMPORT_DAG` (a layer may always import itself); package
``__init__`` modules may additionally re-export their own subtree; and a
small set of *deferred* (function-scope) edges — the sanctioned lazy
imports that break bootstrap cycles — is allowlisted in
:data:`DEFERRED_EDGES`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

from ..constants import (
    EXECUTOR_ENV,
    FAULT_PLAN_ENV,
    PROBE_EXECUTOR_ENV,
    PROBE_WORKERS_ENV,
    SHARD_TIMEOUT_ENV,
)

__all__ = [
    "RULESET_VERSION",
    "LAYER_PREFIXES",
    "API_LAYER",
    "IMPORT_DAG",
    "DEFERRED_EDGES",
    "KERNEL_SURFACE_MODULE",
    "KERNEL_IMPLEMENTATION_MODULE",
    "KERNEL_NAMES",
    "WALKER_MODULE",
    "WALKER_NAMES",
    "ENGINE_LAYER_PREFIXES",
    "DETERMINISM_SCOPE",
    "GLOBAL_RANDOM_FUNCS",
    "ALLOWED_NUMPY_RANDOM",
    "WALLCLOCK_BANNED",
    "RNG_FACTORIES",
    "PROCESS_SUBMISSION_ATTRS",
    "EXECUTOR_SUBMISSION_ATTRS",
    "PROCESS_CONSTRUCTORS",
    "PICKLABLE_BOUNDARY",
    "KNOB_RESOLVER_MODULES",
    "KNOWN_ENV_KNOBS",
    "layer_of",
]

#: Version of the rule set, stamped into every ``--json`` report and into
#: the ``lintkit_version`` field of the ``BENCH_*.json`` provenance records.
#: Bump it whenever a contract table or a rule's semantics change.
RULESET_VERSION = "1.1.0"


# ---------------------------------------------------------------------------
# layering — the sanctioned import DAG
# ---------------------------------------------------------------------------

#: Layer assignment: dotted-module prefix -> layer name.  The most specific
#: matching prefix wins, which is how ``repro.pdms.discovery`` (and the
#: reliability substrate it forms one layer with) and the multi-node
#: ``repro.pdms.gossip`` harness (which drives the core assessors over
#: event-sourced replicas) escape the ``repro.pdms`` topology layer they
#: physically live in.
LAYER_PREFIXES: Mapping[str, str] = {
    "repro.exceptions": "foundation",
    "repro.constants": "foundation",
    "repro.schema": "schema",
    "repro.mapping": "mapping",
    "repro.pdms": "pdms",
    "repro.pdms.discovery": "fanout",
    "repro.pdms.gossip": "gossip",
    "repro.reliability": "fanout",
    "repro.factorgraph": "factorgraph",
    "repro.core": "core",
    "repro.generators": "generators",
    "repro.alignment": "alignment",
    "repro.evaluation": "evaluation",
    "repro.cli": "cli",
    "repro.lintkit": "lintkit",
}

#: Layer of the top-level ``repro`` package ``__init__`` — the public API
#: aggregator, allowed to import everything.
API_LAYER = "api"

#: The sanctioned DAG: layer -> layers it may import from at module top
#: level (importing your own layer is always allowed).  Read an entry as
#: "<layer> is built on <allowed layers>".
IMPORT_DAG: Mapping[str, FrozenSet[str]] = {
    "foundation": frozenset(),
    "schema": frozenset({"foundation"}),
    "mapping": frozenset({"foundation", "schema"}),
    "pdms": frozenset({"foundation", "schema", "mapping"}),
    "fanout": frozenset({"foundation", "schema", "mapping", "pdms"}),
    "factorgraph": frozenset({"foundation"}),
    "core": frozenset(
        {"foundation", "schema", "mapping", "pdms", "fanout", "factorgraph"}
    ),
    "gossip": frozenset(
        {
            "foundation",
            "schema",
            "mapping",
            "pdms",
            "fanout",
            "factorgraph",
            "core",
        }
    ),
    "generators": frozenset(
        {"foundation", "schema", "mapping", "pdms", "core"}
    ),
    "alignment": frozenset({"foundation", "schema", "mapping", "pdms"}),
    "evaluation": frozenset(
        {
            "foundation",
            "schema",
            "mapping",
            "pdms",
            "fanout",
            "factorgraph",
            "core",
            "gossip",
            "generators",
            "alignment",
        }
    ),
    "cli": frozenset(
        {
            "foundation",
            "schema",
            "mapping",
            "pdms",
            "fanout",
            "factorgraph",
            "core",
            "gossip",
            "generators",
            "alignment",
            "evaluation",
        }
    ),
    "lintkit": frozenset({"foundation"}),
    API_LAYER: frozenset(
        {
            "foundation",
            "schema",
            "mapping",
            "pdms",
            "fanout",
            "factorgraph",
            "core",
            "gossip",
            "generators",
            "alignment",
            "evaluation",
            "cli",
            "lintkit",
        }
    ),
}

#: Function-scope imports sanctioned *against* the DAG — the lazy edges
#: that break bootstrap cycles.  ``(from_layer, to_layer)`` pairs:
#: ``repro.pdms.probing``/``repro.pdms.network`` lower onto discovery
#: plans lazily, and ``repro.factorgraph.plan`` arms chaos executors from
#: :mod:`repro.reliability` only when a fault plan is configured.
DEFERRED_EDGES: FrozenSet[Tuple[str, str]] = frozenset(
    {
        ("pdms", "fanout"),
        ("factorgraph", "fanout"),
    }
)


def layer_of(module: str) -> str:
    """Map a dotted module name to its layer (most specific prefix wins).

    The bare ``repro`` package (its ``__init__``) is the :data:`API_LAYER`;
    modules outside every declared prefix map to ``None``-like '' and are
    exempt from the DAG (the fixture corpora rely on declared prefixes)."""
    if module == "repro":
        return API_LAYER
    best = ""
    best_layer = ""
    for prefix, layer in LAYER_PREFIXES.items():
        if module == prefix or module.startswith(prefix + "."):
            if len(prefix) > len(best):
                best = prefix
                best_layer = layer
    return best_layer


# ---------------------------------------------------------------------------
# layering — the plan-IR kernel surface and the discovery-walker ban
# ---------------------------------------------------------------------------

#: The sanctioned kernel re-export surface engines must import from.
KERNEL_SURFACE_MODULE = "repro.factorgraph.plan"

#: The kernel implementation module engines must *not* import from.
KERNEL_IMPLEMENTATION_MODULE = "repro.factorgraph.compiled"

#: Kernel functions and batch classes that live in
#: ``repro.factorgraph.compiled`` but are re-exported by the plan IR.
#: Engine-layer modules must import them from the plan surface only.
KERNEL_NAMES: FrozenSet[str] = frozenset(
    {
        "segment_products",
        "segment_exclusive_products",
        "normalize_rows",
        "FactorBatch",
        "StackedFactorBatch",
        "CountFactorBatch",
        "StackedCountFactorBatch",
        "MAX_COMPILED_ARITY",
    }
)

#: The structure-enumeration module whose walkers are off-limits to the
#: engine layer — discovery flows through ``repro.pdms.discovery`` plans.
WALKER_MODULE = "repro.pdms.probing"

#: Enumeration walkers of ``repro.pdms.probing``.  Structure types
#: (``MappingCycle``, ``ParallelPaths``) and ``validate_ttl`` remain fair
#: game; it is the *enumeration* that must flow through probe plans.
WALKER_NAMES: FrozenSet[str] = frozenset(
    {
        "find_cycles_through",
        "find_parallel_paths_from",
        "find_parallel_paths_through",
        "find_all_cycles",
        "find_all_parallel_paths",
        "probe_neighborhood",
    }
)

#: Module prefixes the kernel-surface and walker bans apply to.
ENGINE_LAYER_PREFIXES: Tuple[str, ...] = ("repro.core",)


# ---------------------------------------------------------------------------
# determinism — the rng-stream contract and the wall-clock ban
# ---------------------------------------------------------------------------

#: Module prefixes forming the deterministic kernel/sweep/discovery code
#: paths: everything here must be bit-reproducible from explicit seeds, so
#: wall-clock reads are banned outright (monotonic/perf_counter duration
#: measurements remain fine — they never feed the numerics).
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "repro.factorgraph",
    "repro.core",
    "repro.pdms",
    "repro.reliability",
)

#: Module-level functions of :mod:`random` that mutate the interpreter's
#: hidden global Mersenne state.  Banned everywhere in the package: every
#: rng must flow from a seeded ``random.Random``/``numpy`` ``Generator``
#: (or ``DEFAULT_SEED``) argument — the rng-stream contract.
GLOBAL_RANDOM_FUNCS: FrozenSet[str] = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "seed",
        "getrandbits",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "betavariate",
        "triangular",
        "randbytes",
    }
)

#: The only attributes of ``numpy.random`` that may be called: explicit
#: generator/bit-generator constructors.  Everything else
#: (``np.random.rand``, ``np.random.seed``, ...) drives numpy's hidden
#: global state and is banned.
ALLOWED_NUMPY_RANDOM: FrozenSet[str] = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Wall-clock reads banned inside :data:`DETERMINISM_SCOPE`:
#: ``time.<name>`` for the ``time`` entries, ``datetime``/``date`` class
#: methods for the rest.
WALLCLOCK_BANNED: FrozenSet[str] = frozenset(
    {"time", "time_ns", "now", "utcnow", "today"}
)

#: Rng factory callables that must always receive an explicit seed
#: argument — a zero-argument call silently binds to entropy from the OS
#: and breaks replay.
RNG_FACTORIES: FrozenSet[str] = frozenset(
    {"Random", "default_rng", "RandomState"}
)


# ---------------------------------------------------------------------------
# process safety — submission sites and the picklable boundary
# ---------------------------------------------------------------------------

#: Method names that ship a callable to a *process* pool.  The callable
#: must be a module-level function (bound methods and closures do not
#: survive the pickle boundary the way the shard protocol requires).
PROCESS_SUBMISSION_ATTRS: FrozenSet[str] = frozenset(
    {
        "apply",
        "apply_async",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    }
)

#: Method names that ship a callable to *any* executor (thread or process).
#: Lambdas and local functions are banned at these sites too — thread
#: submissions stay debuggable and swappable for the process executors.
EXECUTOR_SUBMISSION_ATTRS: FrozenSet[str] = frozenset(
    {"submit"} | PROCESS_SUBMISSION_ATTRS
)

#: Constructor names that spawn workers; their ``target=``/``initializer=``
#: callables cross the process boundary.
PROCESS_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"Process", "Pool", "ProcessPoolExecutor"}
)

#: Repository-defined types sanctioned to cross the shard wire — the
#: ``TopologySnapshot``/``FaultPlan`` pattern of PRs 7–8: immutable,
#: explicitly picklable, checksummable.  A repo class constructed inline
#: at a process submission site must be registered here.  The topology
#: event records, the vector clock and the journal entry are the wire
#: vocabulary of the gossip substrate (:mod:`repro.pdms.events` /
#: :mod:`repro.pdms.clock`): frozen dataclasses a future socket runtime
#: ships between peer processes.
PICKLABLE_BOUNDARY: FrozenSet[str] = frozenset(
    {
        "TopologySnapshot",
        "ProbePlan",
        "ProbeWorkUnit",
        "ProbeOutcome",
        "FaultPlan",
        "FaultInjector",
        "PeerAdded",
        "PeerRemoved",
        "MappingAdded",
        "MappingRemoved",
        "VectorClock",
        "JournalEntry",
    }
)


# ---------------------------------------------------------------------------
# knob hygiene — the validated environment-variable gate
# ---------------------------------------------------------------------------

#: The only modules allowed to touch ``os.environ`` — everything else
#: reads knobs through :func:`repro.constants.read_env`, which validates
#: the variable name against :data:`KNOWN_ENV_KNOBS` so every knob is
#: declared, documented and strictly parsed in exactly one place.
KNOB_RESOLVER_MODULES: FrozenSet[str] = frozenset({"repro.constants"})

#: Every environment knob the package reads, by its declared name.  Kept
#: in lockstep with :data:`repro.constants.KNOWN_ENV_KNOBS` (they are the
#: same frozenset re-exported; the doc-sync test asserts ARCHITECTURE.md
#: names each one).
KNOWN_ENV_KNOBS: FrozenSet[str] = frozenset(
    {
        EXECUTOR_ENV,
        PROBE_EXECUTOR_ENV,
        PROBE_WORKERS_ENV,
        FAULT_PLAN_ENV,
        SHARD_TIMEOUT_ENV,
    }
)


def _validate_contracts() -> None:
    # Every layer named in the DAG must be assignable, and vice versa.
    assigned = set(LAYER_PREFIXES.values()) | {API_LAYER}
    declared = set(IMPORT_DAG)
    if assigned != declared:
        raise AssertionError(
            f"layer tables out of sync: prefixes assign {sorted(assigned)}, "
            f"DAG declares {sorted(declared)}"
        )
    for source, target in DEFERRED_EDGES:
        if source not in declared or target not in declared:
            raise AssertionError(
                f"deferred edge ({source!r}, {target!r}) names an "
                f"undeclared layer"
            )
    # The DAG must actually be acyclic.
    seen: Dict[str, int] = {}

    def visit(layer: str) -> None:
        state = seen.get(layer, 0)
        if state == 1:
            raise AssertionError(f"IMPORT_DAG has a cycle through {layer!r}")
        if state == 2:
            return
        seen[layer] = 1
        for dep in IMPORT_DAG[layer]:
            visit(dep)
        seen[layer] = 2

    for layer in IMPORT_DAG:
        visit(layer)


_validate_contracts()
