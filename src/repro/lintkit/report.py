"""Lint runs as data: the ``--json`` report schema and the provenance probe.

:func:`build_report` is the one place the machine-readable schema is
assembled — the CLI serialises it verbatim and the schema-stability test
pins its key set.  :func:`lint_status` is the benchmark-provenance hook:
``benchmarks/conftest.py`` stamps ``lint_clean`` / ``lintkit_version`` into
every ``BENCH_*.json`` through it, so perf reports carry the same
correctness provenance as ``executor`` / ``probe_executor``.
"""

from __future__ import annotations

import pathlib
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from .baseline import BaselineEntry, find_default_baseline, load_baseline
from .contracts import RULESET_VERSION
from .engine import run_rules
from .model import Finding, Rule
from .rules import all_rules

__all__ = ["build_report", "run_lint", "lint_status"]


def run_lint(
    paths: Sequence,
    *,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Sequence[BaselineEntry]] = None,
):
    """Run the rule set over ``paths`` and apply the baseline.

    Returns ``(findings, stale_entries)`` — findings carry their
    ``suppressed``/``baselined`` flags, stale entries are baseline lines
    matching no current finding."""
    from .baseline import apply_baseline

    active_rules = list(rules) if rules is not None else all_rules()
    known = [rule.rule_id for rule in all_rules()]
    findings = run_rules(paths, active_rules, known_rule_ids=known)
    return apply_baseline(findings, baseline or [])


def failing(findings: Sequence[Finding]) -> List[Finding]:
    """The findings that fail a CI run: neither suppressed nor baselined."""
    return [f for f in findings if not f.suppressed and not f.baselined]


def build_report(
    paths: Sequence,
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    rules: Sequence[Rule],
) -> Dict:
    """The stable ``--json`` payload (see tests for the pinned schema)."""
    active = failing(findings)
    return {
        "tool": "repro-lint",
        "ruleset_version": RULESET_VERSION,
        "clean": not active,
        "paths": [str(path) for path in paths],
        "counts": {
            "total": len(findings),
            "active": len(active),
            "baselined": sum(1 for f in findings if f.baselined),
            "suppressed": sum(1 for f in findings if f.suppressed),
            "stale_baseline": len(stale),
        },
        "rules": [
            {
                "id": rule.rule_id,
                "family": rule.family,
                "description": rule.description,
            }
            for rule in rules
        ],
        "findings": [
            {
                "rule": finding.rule,
                "module": finding.module,
                "file": finding.path,
                "line": finding.line,
                "message": finding.message,
                "baselined": finding.baselined,
                "suppressed": finding.suppressed,
                "fingerprint": finding.fingerprint(),
            }
            for finding in findings
        ],
        "stale_baseline": [
            {
                "rule": entry.rule,
                "module": entry.module,
                "fingerprint": entry.fingerprint,
                "justification": entry.justification,
            }
            for entry in stale
        ],
    }


@lru_cache(maxsize=1)
def lint_status() -> Dict:
    """Lint the installed ``repro`` source tree once per process.

    Returns ``{"lint_clean": bool | None, "lintkit_version": str}`` —
    ``None`` when the package source cannot be linted (e.g. running from a
    zipped install).  Used by the benchmark emitters to stamp correctness
    provenance next to the perf numbers."""
    try:
        package_dir = pathlib.Path(__file__).resolve().parents[1]
        baseline_path = find_default_baseline(package_dir)
        baseline = load_baseline(baseline_path) if baseline_path else []
        findings, _ = run_lint([package_dir], baseline=baseline)
        clean = not failing(findings)
    except Exception:  # pragma: no cover - only on broken installs
        return {"lint_clean": None, "lintkit_version": RULESET_VERSION}
    return {"lint_clean": clean, "lintkit_version": RULESET_VERSION}
