"""Committed baseline of grandfathered findings.

The baseline is a line-oriented text file (comment-friendly, diff-friendly)
committed at the repository root as ``lintkit-baseline.txt``.  Each entry
grandfathers exactly one finding by its stable fingerprint
(:meth:`repro.lintkit.model.Finding.fingerprint` — rule id + module +
message, deliberately line-number-free so unrelated edits do not invalidate
it) and must carry a one-line justification::

    # repro-lint baseline v1
    numeric-float-equality repro.some.module a1b2c3d4e5f6  # exact sentinel check, see PR 9

``repro-lint --update-baseline`` rewrites the file from the current
findings, preserving the justification of every entry that survives and
stamping new entries with ``TODO: justify``.  Entries matching no current
finding are *stale* and reported (they are dropped on the next update).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .model import Finding

__all__ = [
    "BaselineEntry",
    "HEADER",
    "TODO_JUSTIFICATION",
    "load_baseline",
    "format_baseline",
    "save_baseline",
    "apply_baseline",
    "update_entries",
    "find_default_baseline",
]

HEADER = "# repro-lint baseline v1"

TODO_JUSTIFICATION = "TODO: justify"

#: Default file name of the committed baseline at the repository root.
DEFAULT_BASELINE_NAME = "lintkit-baseline.txt"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    module: str
    fingerprint: str
    justification: str

    def render(self) -> str:
        return (
            f"{self.rule} {self.module} {self.fingerprint}"
            f"  # {self.justification}"
        )


def load_baseline(path) -> List[BaselineEntry]:
    """Parse a baseline file; raises ``ValueError`` on malformed lines."""
    entries: List[BaselineEntry] = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, comment = line.partition("#")
        fields = body.split()
        if len(fields) != 3:
            raise ValueError(
                f"{path}:{number}: baseline entries are "
                f"'<rule-id> <module> <fingerprint>  # <justification>', "
                f"got {raw!r}"
            )
        justification = comment.strip()
        if not justification:
            raise ValueError(
                f"{path}:{number}: baseline entry is missing its "
                f"one-line justification comment"
            )
        entries.append(
            BaselineEntry(
                rule=fields[0],
                module=fields[1],
                fingerprint=fields[2],
                justification=justification,
            )
        )
    return entries


def format_baseline(entries: Iterable[BaselineEntry]) -> str:
    lines = [
        HEADER,
        "# One grandfathered finding per line; every entry needs a",
        "# one-line justification.  Regenerate with:",
        "#   repro-lint --update-baseline [--baseline <path>] <paths>",
    ]
    lines.extend(
        entry.render()
        for entry in sorted(
            entries, key=lambda e: (e.rule, e.module, e.fingerprint)
        )
    )
    return "\n".join(lines) + "\n"


def save_baseline(path, entries: Iterable[BaselineEntry]) -> None:
    pathlib.Path(path).write_text(
        format_baseline(entries), encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[BaselineEntry]]:
    """Mark baselined findings; return (findings, stale entries)."""
    by_fingerprint: Dict[str, BaselineEntry] = {
        entry.fingerprint: entry for entry in entries
    }
    matched = set()
    out: List[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if not finding.suppressed and fingerprint in by_fingerprint:
            matched.add(fingerprint)
            finding = finding.with_flags(baselined=True)
        out.append(finding)
    stale = [
        entry
        for fingerprint, entry in sorted(by_fingerprint.items())
        if fingerprint not in matched
    ]
    return out, stale


def update_entries(
    findings: Sequence[Finding], previous: Sequence[BaselineEntry]
) -> List[BaselineEntry]:
    """Baseline entries for the current findings, keeping justifications."""
    kept = {entry.fingerprint: entry for entry in previous}
    entries: Dict[str, BaselineEntry] = {}
    for finding in findings:
        if finding.suppressed:
            continue
        fingerprint = finding.fingerprint()
        existing = kept.get(fingerprint)
        entries[fingerprint] = BaselineEntry(
            rule=finding.rule,
            module=finding.module,
            fingerprint=fingerprint,
            justification=(
                existing.justification if existing else TODO_JUSTIFICATION
            ),
        )
    return list(entries.values())


def find_default_baseline(start) -> Optional[pathlib.Path]:
    """Look for ``lintkit-baseline.txt`` in ``start`` and its parents."""
    probe = pathlib.Path(start).resolve()
    for candidate in [probe, *probe.parents]:
        path = candidate / DEFAULT_BASELINE_NAME
        if path.is_file():
            return path
    return None
