"""``repro.lintkit`` — AST-based architectural analyzer for this repo.

Every guarantee the reproduction makes — bit-identical posteriors across
the four sweep engines, order-independent sharded discovery merges, chaos
runs identical to fault-free serial — rests on conventions that used to
live in docstrings and two ad-hoc test sweeps.  This subsystem states each
invariant once, as data (:mod:`repro.lintkit.contracts`), and enforces it
mechanically over the whole tree:

* **layering** — the sanctioned import DAG (schema/mapping → fan-out →
  factorgraph → core → generators → evaluation → cli), the plan-IR kernel
  surface and the discovery-walker ban;
* **determinism** — no hidden-global-state randomness, explicit seeds for
  every rng factory, no wall-clock reads in kernel/sweep/discovery code;
* **process safety** — module-level worker entries only, wire payloads
  registered in the picklable-boundary allowlist;
* **knob hygiene** — ``os.environ`` only behind the validated
  :func:`repro.constants.read_env` gate;
* **numeric correctness** — no float-literal equality, no mutable default
  arguments.

``ARCHITECTURE.md`` at the repository root is the prose rendering of the
same contracts.  The ``repro-lint`` console script (also
``python -m repro.lintkit``) reports findings as text or ``--json``,
honours ``# lint: disable=<rule-id>`` inline suppressions that must name
the rule, and grandfathers deliberate violations through a committed,
justified baseline file (``lintkit-baseline.txt``).

This package depends only on the foundation layer (``repro.constants``) —
it can lint the tree without importing the engines it checks.
"""

from .baseline import (
    BaselineEntry,
    find_default_baseline,
    format_baseline,
    load_baseline,
    save_baseline,
)
from .cli import main
from .contracts import RULESET_VERSION
from .engine import ParsedModule, SUPPRESSION_RULE_ID, parse_module, run_rules
from .model import Finding, Rule
from .report import build_report, failing, lint_status, run_lint
from .rules import all_rules, rules_by_id

__all__ = [
    "BaselineEntry",
    "Finding",
    "ParsedModule",
    "Rule",
    "RULESET_VERSION",
    "SUPPRESSION_RULE_ID",
    "all_rules",
    "build_report",
    "failing",
    "find_default_baseline",
    "format_baseline",
    "lint_status",
    "load_baseline",
    "main",
    "parse_module",
    "rules_by_id",
    "run_lint",
    "run_rules",
    "save_baseline",
]
