"""The ``repro-lint`` console entry point.

::

    repro-lint [paths...]            # text report, exit 1 on any finding
    repro-lint --json [paths...]     # machine-readable report on stdout
    repro-lint --update-baseline     # rewrite the baseline from findings
    repro-lint --list-rules          # enumerate the rule set

With no paths, the tree is auto-detected: ``src/repro`` (or ``src``) under
the current directory if present, else the installed ``repro`` package.
The baseline defaults to the nearest ``lintkit-baseline.txt`` found from
the first scanned path upward.  Exit codes: 0 clean (every finding
suppressed or baselined), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from .baseline import (
    find_default_baseline,
    load_baseline,
    save_baseline,
    update_entries,
)
from .contracts import RULESET_VERSION
from .report import build_report, failing, run_lint
from .rules import all_rules, rules_by_id

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based architectural analyzer enforcing the repository's "
            "determinism, layering, process-safety, knob-hygiene and "
            "numeric-correctness invariants (see ARCHITECTURE.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro tree)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report on stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of grandfathered findings "
        "(default: nearest lintkit-baseline.txt)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings "
        "(keeps existing justifications) and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="run only the named rule ids",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids and descriptions, then exit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro-lint ruleset {RULESET_VERSION}",
    )
    return parser


def _default_paths() -> List[pathlib.Path]:
    cwd = pathlib.Path.cwd()
    for candidate in (cwd / "src" / "repro", cwd / "src"):
        if candidate.is_dir():
            return [candidate]
    return [pathlib.Path(__file__).resolve().parents[1]]


def _select_rules(spec: Optional[str], parser: argparse.ArgumentParser):
    if not spec:
        return all_rules()
    registry = rules_by_id()
    selected = []
    for rule_id in [part.strip() for part in spec.split(",") if part.strip()]:
        if rule_id not in registry:
            parser.error(
                f"unknown rule id {rule_id!r}; valid ids: "
                f"{', '.join(sorted(registry))}"
            )
        selected.append(registry[rule_id])
    return selected


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:28} [{rule.family}] {rule.description}")
        return 0

    paths = [pathlib.Path(p) for p in args.paths] or _default_paths()
    for path in paths:
        if not path.exists():
            parser.error(f"no such file or directory: {path}")

    baseline_path: Optional[pathlib.Path]
    if args.no_baseline:
        baseline_path = None
    elif args.baseline:
        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.exists() and not args.update_baseline:
            parser.error(f"baseline file not found: {baseline_path}")
    else:
        baseline_path = find_default_baseline(paths[0])

    entries = (
        load_baseline(baseline_path)
        if baseline_path is not None and baseline_path.exists()
        else []
    )
    rules = _select_rules(args.rules, parser)
    findings, stale = run_lint(paths, rules=rules, baseline=entries)

    if args.update_baseline:
        target = baseline_path or pathlib.Path("lintkit-baseline.txt")
        save_baseline(target, update_entries(findings, entries))
        print(f"[repro-lint] baseline written: {target}")
        return 0

    if args.json:
        print(json.dumps(build_report(paths, findings, stale, rules), indent=2))
        return 1 if failing(findings) else 0

    active = failing(findings)
    for finding in active:
        print(finding.render())
    for entry in stale:
        print(
            f"stale baseline entry: {entry.rule} {entry.module} "
            f"{entry.fingerprint} ({entry.justification})"
        )
    baselined = sum(1 for f in findings if f.baselined)
    suppressed = sum(1 for f in findings if f.suppressed)
    print(
        f"[repro-lint] ruleset {RULESET_VERSION}: {len(active)} finding(s), "
        f"{baselined} baselined, {suppressed} suppressed, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
    )
    return 1 if active else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
