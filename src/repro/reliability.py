"""Deterministic fault injection and resilient fan-outs.

The paper's system is decentralised by design — peers crash, messages get
lost, feedback lies — but a reproduction's *runtime* must also survive the
mundane failures of its own fan-outs: a discovery worker that dies, hangs
or straggles, a wire payload corrupted in flight, a sweep bucket whose
thread raises.  This module is the resilience substrate shared by the
process-pool discovery executor of :mod:`repro.pdms.discovery` and the
threaded sweep executor of :mod:`repro.factorgraph.plan`:

* :class:`FaultPlan` — a picklable, rng-seeded schedule of injectable
  faults (worker **crash**, **hang**, **delay**\\ ed return, **corrupt**\\ ed
  wire payload) keyed by ``(shard, attempt)``.  Plans are built
  programmatically, generated from a seed (:meth:`FaultPlan.seeded`), or
  parsed from a spec string (:meth:`FaultPlan.parse` — the format of the
  ``REPRO_FAULT_PLAN`` environment variable and the ``--fault-plan`` CLI
  flag), so a chaos run is exactly reproducible from one string.
* :class:`FaultInjector` — the worker-side trigger.  Discovery workers
  receive it through the same pool-initializer hook that ships the probe
  plan (:func:`repro.pdms.discovery._install_worker_plan`); sweep buckets
  through ``ThreadedExecutor(fault_injector=...)``.
* :class:`ResilientDiscoveryExecutor` — the process fan-out wrapped with
  per-shard timeouts, bounded retry with exponential backoff and seeded
  jitter, wire-payload integrity checks (corrupted shard results are
  detected by checksum and re-executed, never merged), quarantine of
  repeatedly failing shards and graceful per-shard fallback to in-parent
  serial execution — so the merged structure set stays canonically
  identical to a fault-free serial run no matter which faults fire.
* :class:`ReliabilityStatistics` — the faults/retries/fallbacks/timeouts
  accounting threaded through the structure caches, the quality assessor
  and every ``BENCH_*.json`` report.

Determinism contract: faults are keyed on ``(shard, attempt)``, shards are
a deterministic function of the probe plan, attempts count up from zero —
so the same plan, seed and executor configuration replay byte-identical
chaos, and the recovered results are byte-identical to a run with no chaos
at all.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .constants import (
    DEFAULT_DELAY_SECONDS,
    DEFAULT_HANG_SECONDS,
    DEFAULT_RETRY_BACKOFF,
    DEFAULT_RETRY_JITTER,
    DEFAULT_SHARD_ATTEMPTS,
    FAULT_PLAN_ENV,
    read_env,
    PROBE_EXECUTOR_RESILIENT,
)
from .exceptions import InjectedFaultError, PDMSError
from .pdms.discovery import (
    ProbeOutcome,
    ProbePlan,
    ProbeRun,
    ProcessPoolDiscoveryExecutor,
    _execute_shard_task,
    _install_worker_plan,
    _rehydrate_outcome,
    _POLL_INTERVAL_SECONDS,
    execute_work_unit,
    payload_checksum,
)


def _run_shard_attempt(conn, plan, fault_plan, shard, attempt, indices) -> None:
    """Entry point of one single-attempt worker process.

    Installs the plan (and injector) through the same
    :func:`~repro.pdms.discovery._install_worker_plan` hook the pool
    executor uses, runs the shard, and ships ``("ok", fired, wired,
    checksum)`` — or ``("error", repr)`` — back through the pipe.  One
    process per attempt keeps failure domains honest: a crash kills only
    this attempt, and the parent can ``terminate()`` a hang without
    poisoning a shared pool slot.
    """
    try:
        _install_worker_plan(plan, fault_plan)
        _, _, fired, wired, checksum = _execute_shard_task(
            (shard, attempt, indices)
        )
        conn.send(("ok", fired, wired, checksum))
    except BaseException as error:  # noqa: BLE001 - must cross the pipe
        try:
            conn.send(("error", repr(error)))
        except (OSError, ValueError):  # pragma: no cover - parent vanished
            pass
    finally:
        conn.close()

__all__ = [
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_DELAY",
    "FAULT_CORRUPT",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultInjector",
    "ReliabilityStatistics",
    "ResilientDiscoveryExecutor",
    "corrupt_payload",
    "fault_plan_or_env",
]


#: The worker raises: the attempt dies with an exception.
FAULT_CRASH = "crash"

#: The worker sleeps past the shard deadline: the attempt is presumed
#: wedged and times out in the parent.
FAULT_HANG = "hang"

#: The worker sleeps briefly and then succeeds: completion order scrambles
#: without the attempt failing.
FAULT_DELAY = "delay"

#: The worker mangles its wire payload after checksumming: the parent's
#: integrity check rejects the result.
FAULT_CORRUPT = "corrupt"

FAULT_KINDS = (FAULT_CRASH, FAULT_HANG, FAULT_DELAY, FAULT_CORRUPT)


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of faults keyed by (shard, attempt).

    ``faults`` maps ``(shard, attempt)`` to a fault kind; everything a
    worker needs to fire its share of the chaos — the schedule and the
    hang/delay durations — pickles with the plan, so the injector behaves
    identically under fork and spawn start methods.  A fault scheduled at
    attempt 0 always fires (every shard runs attempt 0); faults at higher
    attempts only fire if earlier attempts failed, which makes
    retry-success the deterministic default: schedule at attempt 0 only and
    the first retry is guaranteed clean.
    """

    faults: Dict[Tuple[int, int], str] = field(default_factory=dict)
    seed: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS
    delay_seconds: float = DEFAULT_DELAY_SECONDS
    #: The spec string this plan was generated/parsed from (reports stamp
    #: it so a chaos run is reproducible from the BENCH json alone).
    spec_string: str = ""

    def __post_init__(self) -> None:
        for key, kind in self.faults.items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} at {key}; expected one of "
                    f"{', '.join(FAULT_KINDS)}"
                )

    def fault_for(self, shard: int, attempt: int) -> Optional[str]:
        """The fault scheduled for this (shard, attempt), or ``None``."""
        return self.faults.get((shard, attempt))

    def scheduled(
        self, shard_count: Optional[int] = None
    ) -> Dict[Tuple[int, int], str]:
        """The schedule, optionally restricted to shards below ``shard_count``
        (the faults that can actually fire in a run with that many shards)."""
        if shard_count is None:
            return dict(self.faults)
        return {
            (shard, attempt): kind
            for (shard, attempt), kind in self.faults.items()
            if shard < shard_count
        }

    def faulted_shard_fraction(self, shard_count: int) -> float:
        """Fraction of a run's shards with at least one scheduled fault."""
        if shard_count <= 0:
            return 0.0
        hit = {shard for shard, _ in self.scheduled(shard_count)}
        return len(hit) / shard_count

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float = 0.25,
        kinds: Tuple[str, ...] = (FAULT_CRASH, FAULT_HANG),
        shards: int = 16,
        attempts: int = 1,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
        delay_seconds: float = DEFAULT_DELAY_SECONDS,
    ) -> "FaultPlan":
        """Generate a schedule from one rng seed: every (shard, attempt)
        below the bounds faults with probability ``rate``, drawing the kind
        uniformly from ``kinds``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate!r}")
        if shards < 1 or attempts < 1:
            raise ValueError(
                f"fault plan bounds must be >= 1, got shards={shards!r} "
                f"attempts={attempts!r}"
            )
        kinds = tuple(kinds)
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{', '.join(FAULT_KINDS)}"
                )
        if rate > 0.0 and not kinds:
            raise ValueError("a non-zero fault rate needs at least one kind")
        rng = random.Random(seed)
        faults: Dict[Tuple[int, int], str] = {}
        for shard in range(shards):
            for attempt in range(attempts):
                if rng.random() < rate:
                    faults[(shard, attempt)] = kinds[rng.randrange(len(kinds))]
        spec = (
            f"seed={seed}:rate={rate}:kinds={','.join(kinds)}:"
            f"shards={shards}:attempts={attempts}:"
            f"hang={hang_seconds}:delay={delay_seconds}"
        )
        return cls(
            faults=faults,
            seed=seed,
            hang_seconds=hang_seconds,
            delay_seconds=delay_seconds,
            spec_string=spec,
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (the ``REPRO_FAULT_PLAN`` / ``--fault-plan``
        format) into a plan.

        Colon-separated ``key=value`` segments; recognised keys:

        ``seed`` (int), ``rate`` (float in [0,1]), ``kinds``
        (comma-separated fault kinds), ``shards`` (int), ``attempts``
        (int), ``hang`` / ``delay`` (seconds), and ``at`` — explicit
        comma-separated ``shard.attempt.kind`` entries layered on top of
        (or instead of) the seeded schedule.  Example::

            seed=11:rate=0.3:kinds=crash,hang:shards=16:hang=5
            at=0.0.crash,2.0.hang,2.1.hang:hang=2
        """
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError(
                f"fault plan spec must be a non-empty string, got {spec!r}"
            )
        params: Dict[str, str] = {}
        for segment in spec.strip().split(":"):
            if not segment:
                continue
            key, separator, value = segment.partition("=")
            if not separator or not key:
                raise ValueError(
                    f"malformed fault plan segment {segment!r} in {spec!r}; "
                    f"expected key=value segments separated by ':'"
                )
            params[key.strip()] = value.strip()
        known = {"seed", "rate", "kinds", "shards", "attempts", "hang", "delay", "at"}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(
                f"unknown fault plan key(s) {', '.join(unknown)} in "
                f"{spec!r}; expected {', '.join(sorted(known))}"
            )

        def number(key: str, cast, default):
            if key not in params:
                return default
            try:
                return cast(params[key])
            except ValueError:
                raise ValueError(
                    f"fault plan key {key}= must be a number, got "
                    f"{params[key]!r}"
                ) from None

        seed = number("seed", int, 0)
        rate = number("rate", float, 0.0)
        shards = number("shards", int, 16)
        attempts = number("attempts", int, 1)
        hang_seconds = number("hang", float, DEFAULT_HANG_SECONDS)
        delay_seconds = number("delay", float, DEFAULT_DELAY_SECONDS)
        kinds = tuple(
            kind.strip()
            for kind in params.get("kinds", ",".join((FAULT_CRASH, FAULT_HANG))).split(",")
            if kind.strip()
        )
        plan = cls.seeded(
            seed,
            rate=rate,
            kinds=kinds,
            shards=shards,
            attempts=attempts,
            hang_seconds=hang_seconds,
            delay_seconds=delay_seconds,
        )
        faults = dict(plan.faults)
        for entry in params.get("at", "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            pieces = entry.split(".")
            if len(pieces) != 3:
                raise ValueError(
                    f"malformed at= entry {entry!r} in {spec!r}; expected "
                    f"shard.attempt.kind"
                )
            try:
                shard, attempt = int(pieces[0]), int(pieces[1])
            except ValueError:
                raise ValueError(
                    f"malformed at= entry {entry!r} in {spec!r}; shard and "
                    f"attempt must be integers"
                ) from None
            faults[(shard, attempt)] = pieces[2]
        return cls(
            faults=faults,
            seed=seed,
            hang_seconds=hang_seconds,
            delay_seconds=delay_seconds,
            spec_string=spec.strip(),
        )

    def spec(self) -> str:
        """A spec string reproducing this plan (round-trips through
        :meth:`parse` for parsed/seeded plans; hand-built plans render as
        explicit ``at=`` entries)."""
        if self.spec_string:
            return self.spec_string
        entries = ",".join(
            f"{shard}.{attempt}.{kind}"
            for (shard, attempt), kind in sorted(self.faults.items())
        )
        rendered = f"seed={self.seed}:hang={self.hang_seconds}:delay={self.delay_seconds}"
        return f"{rendered}:at={entries}" if entries else rendered

    def __len__(self) -> int:
        return len(self.faults)


def fault_plan_or_env(value: object = None) -> Optional[FaultPlan]:
    """Resolve a ``fault_plan=`` argument: a plan passes through, a string
    parses, and ``None`` consults the ``REPRO_FAULT_PLAN`` environment
    variable (returning ``None`` when chaos is not configured).  Errors
    name the source of the bad spec."""
    if value is None:
        raw = read_env(FAULT_PLAN_ENV)
        if not raw:
            return None
        try:
            return FaultPlan.parse(raw)
        except ValueError as error:
            raise ValueError(f"{FAULT_PLAN_ENV}: {error}") from None
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, str):
        return FaultPlan.parse(value)
    raise ValueError(
        f"fault plan must be a FaultPlan, a spec string or None, got "
        f"{value!r}"
    )


# ---------------------------------------------------------------------------
# the worker-side trigger
# ---------------------------------------------------------------------------


class FaultInjector:
    """Fires a :class:`FaultPlan`'s scheduled faults at execution sites.

    Process workers call :meth:`fire` at the top of each shard attempt;
    thread-pool sweep buckets call :meth:`fire_in_thread`.  Both consult
    the same deterministic ``(shard, attempt)`` schedule.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = fault_plan_or_env(plan)
        if self.plan is None:
            raise ValueError("FaultInjector needs a FaultPlan, got None")

    def fire(self, shard: int, attempt: int) -> Optional[str]:
        """Fire the fault scheduled for this process-pool shard attempt.

        ``crash`` raises, ``hang`` and ``delay`` sleep (the hang long
        enough to trip any sane shard deadline), ``corrupt`` is returned to
        the caller — the payload can only be mangled *after* the shard ran
        and checksummed its authentic result."""
        kind = self.plan.fault_for(shard, attempt)
        if kind == FAULT_CRASH:
            raise InjectedFaultError(
                f"injected crash in probe shard {shard}, attempt {attempt}"
            )
        if kind == FAULT_HANG:
            time.sleep(self.plan.hang_seconds)
        elif kind == FAULT_DELAY:
            time.sleep(self.plan.delay_seconds)
        return kind

    def fire_in_thread(self, bucket: int, attempt: int) -> Optional[str]:
        """Fire the fault scheduled for a threaded sweep bucket.

        Threads cannot be killed or safely wedged, and their output buffers
        are shared memory rather than wire payloads — so ``crash``,
        ``hang`` and ``corrupt`` all degrade to an immediate
        :class:`~repro.exceptions.InjectedFaultError` (exercising the
        executor's synchronous per-bucket fallback), while ``delay`` sleeps
        briefly to scramble completion order."""
        kind = self.plan.fault_for(bucket, attempt)
        if kind in (FAULT_CRASH, FAULT_HANG, FAULT_CORRUPT):
            raise InjectedFaultError(
                f"injected {kind} in sweep bucket {bucket}, attempt {attempt}"
            )
        if kind == FAULT_DELAY:
            time.sleep(self.plan.delay_seconds)
        return kind


def corrupt_payload(wired):
    """Deterministically mangle a shard's wire payload (chaos only).

    Renames the first mapping name it finds — the kind of corruption that
    would silently poison the merge if it slipped past the checksum — and
    falls back to appending a bogus outcome tuple for shards that
    discovered nothing."""
    mangled: List[Tuple] = []
    corrupted = False
    for index, wire_cycles, wire_pairs in wired:
        if not corrupted and wire_cycles:
            origin, names = wire_cycles[0]
            bad = ((origin, ("__corrupted__",) + tuple(names[1:])),)
            wire_cycles = bad + tuple(wire_cycles[1:])
            corrupted = True
        elif not corrupted and wire_pairs:
            source, target, first, second = wire_pairs[0]
            bad = ((source, target, ("__corrupted__",) + tuple(first[1:]), second),)
            wire_pairs = bad + tuple(wire_pairs[1:])
            corrupted = True
        mangled.append((index, wire_cycles, wire_pairs))
    if not corrupted:
        mangled.append((-1, (), ()))
    return mangled


# ---------------------------------------------------------------------------
# accounting
# ---------------------------------------------------------------------------


@dataclass
class ReliabilityStatistics:
    """Fault and recovery accounting of one (or many merged) fan-out runs.

    The ``injected_*`` counters attribute observed failures to the
    configured :class:`FaultPlan` — in a pure chaos run they equal the
    observation counters exactly (every worker error is an injected crash,
    every timeout an injected hang, every checksum mismatch an injected
    corruption); in production the injected counters stay zero and the
    observation counters record real trouble.
    """

    injected_crashes: int = 0
    injected_hangs: int = 0
    injected_delays: int = 0
    injected_corruptions: int = 0
    #: Shard attempts that raised out of the worker (injected or real).
    worker_errors: int = 0
    #: Shard attempts abandoned at their per-shard deadline.
    timeouts: int = 0
    #: Shard payloads rejected by the wire checksum (never merged).
    corrupted_payloads: int = 0
    #: Re-submissions of a failed shard attempt.
    retries: int = 0
    #: Shards whose retry budget was exhausted.
    quarantined_shards: int = 0
    #: Shards (or whole plans) degraded to in-parent serial execution.
    serial_fallbacks: int = 0
    #: Threaded sweep buckets re-run synchronously after a failure.
    bucket_fallbacks: int = 0

    @property
    def faults_injected(self) -> int:
        return (
            self.injected_crashes
            + self.injected_hangs
            + self.injected_delays
            + self.injected_corruptions
        )

    @property
    def faults_observed(self) -> int:
        return self.worker_errors + self.timeouts + self.corrupted_payloads

    def merge(self, other: "ReliabilityStatistics") -> "ReliabilityStatistics":
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> Dict[str, int]:
        record = {name: getattr(self, name) for name in self.__dataclass_fields__}
        record["faults_injected"] = self.faults_injected
        record["faults_observed"] = self.faults_observed
        return record

    def __bool__(self) -> bool:
        return any(getattr(self, name) for name in self.__dataclass_fields__)


# ---------------------------------------------------------------------------
# the resilient discovery executor
# ---------------------------------------------------------------------------


class ResilientDiscoveryExecutor(ProcessPoolDiscoveryExecutor):
    """The process fan-out hardened into at-least-once, verified delivery.

    Same origin sharding, same worker-side walkers, same canonical merge as
    :class:`~repro.pdms.discovery.ProcessPoolDiscoveryExecutor` — but a
    shard attempt that crashes, times out or fails its payload checksum is
    retried with exponential backoff and seeded jitter, up to
    ``max_attempts`` per shard; a shard that exhausts its budget is
    quarantined and its work units are executed serially in the parent
    (always fault-free: the injector lives in the workers).  Outcomes are
    keyed by work-unit index whichever path produced them, so the merged
    structure set is bit-identical to a fault-free serial run no matter
    which faults fire.

    Unlike the base executor's shared pool, attempts run one process each,
    scheduled onto ``workers`` slots by the parent: the per-shard deadline
    starts when the attempt's process actually starts (a healthy shard
    queued behind a wedged one is never charged for the queueing), and a
    hang is ``terminate()``\\ d at its deadline, freeing the slot
    immediately instead of wedging it for the hang's duration.

    Accounting lands in :attr:`last_run_statistics` (per run) and
    :attr:`statistics` (cumulative); the structure caches collect the
    per-run statistics into their
    :class:`~repro.core.analysis.StructureCacheStatistics`.
    """

    name = PROBE_EXECUTOR_RESILIENT

    def __init__(
        self,
        workers: Optional[int] = None,
        min_units: int = 4,
        shard_timeout: object = None,
        fault_plan: object = None,
        max_attempts: int = DEFAULT_SHARD_ATTEMPTS,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        retry_jitter: float = DEFAULT_RETRY_JITTER,
    ) -> None:
        super().__init__(
            workers=workers,
            min_units=min_units,
            shard_timeout=shard_timeout,
            fault_plan=fault_plan_or_env(fault_plan),
        )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if retry_backoff < 0 or retry_jitter < 0:
            raise ValueError(
                f"retry backoff and jitter must be >= 0, got "
                f"{retry_backoff!r} / {retry_jitter!r}"
            )
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.retry_jitter = retry_jitter
        #: Accounting of the most recent :meth:`run`.
        self.last_run_statistics = ReliabilityStatistics()
        #: Accounting accumulated across this executor's lifetime.
        self.statistics = ReliabilityStatistics()

    def _attribute_failure(
        self, stats: ReliabilityStatistics, shard: int, attempt: int
    ) -> None:
        """Charge a failed attempt to the fault plan when chaos scheduled it."""
        kind = self.fault_plan.fault_for(shard, attempt) if self.fault_plan else None
        if kind == FAULT_CRASH:
            stats.injected_crashes += 1
        elif kind == FAULT_HANG:
            stats.injected_hangs += 1
        elif kind == FAULT_CORRUPT:
            stats.injected_corruptions += 1

    def run(self, plan: ProbePlan) -> ProbeRun:
        stats = ReliabilityStatistics()
        self.last_run_statistics = stats
        if self.workers < 2 or len(plan.work_units) < self.min_units:
            # Nothing fans out, so nothing to harden (or to inject into).
            run = self._serial.run(plan)
            return ProbeRun(
                plan=plan, outcomes=run.outcomes, sharded=False, workers=1
            )
        shards = self._shards(plan)
        outcomes: List[Optional[ProbeOutcome]] = [None] * len(plan.work_units)
        # Seeded by the fault plan so chaos replays — including the retry
        # jitter — are deterministic end to end.
        jitter_rng = random.Random(self.fault_plan.seed if self.fault_plan else 0)
        context = multiprocessing.get_context()
        slots = min(self.workers, len(shards))

        def run_shard_serially(shard: int) -> None:
            for index in shards[shard]:
                outcomes[index] = execute_work_unit(plan, index)

        #: (shard, attempt) pairs ready to start when a slot frees up.
        ready: List[Tuple[int, int]] = [(shard, 0) for shard in range(len(shards))]
        #: (resume_at, shard, attempt) — retries waiting out their backoff.
        waiting: List[Tuple[float, int, int]] = []
        #: shard -> (process, pipe, attempt, deadline); at most ``slots`` big.
        running: Dict[int, Tuple[object, object, int, float]] = {}

        def start(shard: int, attempt: int) -> None:
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_run_shard_attempt,
                args=(
                    sender,
                    plan,
                    self.fault_plan,
                    shard,
                    attempt,
                    tuple(shards[shard]),
                ),
                daemon=True,
            )
            try:
                process.start()
            except OSError:
                # Cannot fork (fd/memory pressure): degrade this shard to
                # the in-parent serial walkers rather than fail the probe.
                receiver.close()
                sender.close()
                stats.serial_fallbacks += 1
                run_shard_serially(shard)
                return
            sender.close()
            running[shard] = (
                process,
                receiver,
                attempt,
                time.monotonic() + self.shard_timeout,
            )

        def reap(shard: int, terminate: bool = False) -> None:
            process, receiver, _, _ = running.pop(shard)
            if terminate:
                process.terminate()  # type: ignore[attr-defined]
            process.join()  # type: ignore[attr-defined]
            receiver.close()  # type: ignore[attr-defined]

        def handle_failure(shard: int, attempt: int) -> None:
            self._attribute_failure(stats, shard, attempt)
            if attempt + 1 >= self.max_attempts:
                stats.quarantined_shards += 1
                stats.serial_fallbacks += 1
                run_shard_serially(shard)
                return
            stats.retries += 1
            backoff = self.retry_backoff * (2 ** attempt)
            backoff += jitter_rng.random() * self.retry_jitter
            waiting.append((time.monotonic() + backoff, shard, attempt + 1))

        while ready or waiting or running:
            progressed = False
            now = time.monotonic()
            due = [entry for entry in waiting if entry[0] <= now]
            if due:
                waiting = [entry for entry in waiting if entry[0] > now]
                ready.extend((shard, attempt) for _, shard, attempt in due)
            while ready and len(running) < slots:
                shard, attempt = ready.pop(0)
                start(shard, attempt)
                progressed = True
            for shard in list(running):
                process, receiver, attempt, deadline = running[shard]
                if receiver.poll():  # type: ignore[attr-defined]
                    try:
                        message = receiver.recv()  # type: ignore[attr-defined]
                    except EOFError:
                        message = ("error", "worker closed the pipe")
                    reap(shard)
                    progressed = True
                    if message[0] != "ok":
                        stats.worker_errors += 1
                        handle_failure(shard, attempt)
                        continue
                    _, fired, wired, checksum = message
                    if fired == FAULT_DELAY:
                        stats.injected_delays += 1
                    if payload_checksum(wired) != checksum:
                        stats.corrupted_payloads += 1
                        handle_failure(shard, attempt)
                        continue
                    for wire in wired:
                        outcome = _rehydrate_outcome(plan.snapshot, wire)
                        outcomes[outcome.index] = outcome
                elif not process.is_alive():  # type: ignore[attr-defined]
                    # Died without a message: a hard crash (signal, exit).
                    reap(shard)
                    progressed = True
                    stats.worker_errors += 1
                    handle_failure(shard, attempt)
                elif now > deadline:
                    # Presumed wedged: kill the attempt, freeing its slot
                    # immediately, and let retry / serial fallback recover.
                    reap(shard, terminate=True)
                    progressed = True
                    stats.timeouts += 1
                    handle_failure(shard, attempt)
            if (ready or waiting or running) and not progressed:
                time.sleep(_POLL_INTERVAL_SECONDS)
        missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
        if missing:  # pragma: no cover - defensive: a shard vanished
            raise PDMSError(f"probe work units {missing!r} returned no outcome")
        self.statistics.merge(stats)
        return ProbeRun(
            plan=plan,
            outcomes=tuple(outcomes),  # type: ignore[arg-type]
            sharded=True,
            workers=min(self.workers, len(shards)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        chaos = f", fault_plan={self.fault_plan.spec()!r}" if self.fault_plan else ""
        return (
            f"ResilientDiscoveryExecutor(workers={self.workers}, "
            f"max_attempts={self.max_attempts}{chaos})"
        )
