"""A lightweight ontology model for the alignment substrate.

The paper's real-world experiment imports OWL ontologies (serialised in
RDF/XML) from the EON Ontology Alignment Contest and aligns them
automatically.  We do not ship the original files (see DESIGN.md,
substitutions); instead this module provides a small in-memory ontology
model — named concepts with labels, optional translations and a property
list — rich enough for string-similarity alignment techniques to behave the
way they do on the real data: mostly right, sometimes confidently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import AlignmentError
from ..schema.attribute import Attribute
from ..schema.schema import DataModel, Schema

__all__ = ["Concept", "Ontology"]


@dataclass(frozen=True)
class Concept:
    """A named concept (class or property) of an ontology.

    Parameters
    ----------
    name:
        Identifier of the concept inside its ontology (e.g. ``"Author"``).
    label:
        Human-readable label; defaults to the name.
    synonyms:
        Alternative labels (including translations) the matchers may use.
    kind:
        ``"class"`` or ``"property"`` — informational only.
    comment:
        Free-form documentation.
    """

    name: str
    label: str = ""
    synonyms: Tuple[str, ...] = ()
    kind: str = "class"
    comment: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise AlignmentError("concept name must be non-empty")
        if not self.label:
            object.__setattr__(self, "label", self.name)

    @property
    def all_labels(self) -> Tuple[str, ...]:
        """Name, label and synonyms (deduplicated, original casing kept)."""
        labels: Dict[str, None] = {self.name: None, self.label: None}
        for synonym in self.synonyms:
            labels.setdefault(synonym, None)
        return tuple(labels)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class Ontology:
    """A named collection of concepts.

    Ontologies double as schemas for the PDMS substrate: :meth:`to_schema`
    produces a :class:`~repro.schema.schema.Schema` whose attributes are the
    ontology's concepts, so a network of ontologies can be loaded straight
    into a :class:`~repro.pdms.network.PDMSNetwork`.
    """

    def __init__(self, name: str, concepts: Iterable[Concept | str] = (), language: str = "en") -> None:
        if not name:
            raise AlignmentError("ontology name must be non-empty")
        self.name = name
        self.language = language
        self._concepts: Dict[str, Concept] = {}
        self._order: List[str] = []
        for concept in concepts:
            self.add_concept(concept)

    def add_concept(self, concept: Concept | str) -> Concept:
        """Add a concept (or create one from a bare name)."""
        if isinstance(concept, str):
            concept = Concept(name=concept)
        if concept.name in self._concepts:
            raise AlignmentError(
                f"ontology {self.name!r} already has a concept {concept.name!r}"
            )
        self._concepts[concept.name] = concept
        self._order.append(concept.name)
        return concept

    @property
    def concepts(self) -> Tuple[Concept, ...]:
        return tuple(self._concepts[name] for name in self._order)

    @property
    def concept_names(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def concept(self, name: str) -> Concept:
        try:
            return self._concepts[name]
        except KeyError:
            raise AlignmentError(
                f"ontology {self.name!r} has no concept {name!r}"
            ) from None

    def has_concept(self, name: str) -> bool:
        return name in self._concepts

    def __len__(self) -> int:
        return len(self._concepts)

    def __iter__(self) -> Iterator[Concept]:
        return iter(self.concepts)

    def to_schema(self) -> Schema:
        """Expose the ontology as a schema (one attribute per concept)."""
        return Schema(
            self.name,
            attributes=[
                Attribute(concept.name, description=concept.comment)
                for concept in self.concepts
            ],
            data_model=DataModel.RDF,
            description=f"schema view of ontology {self.name!r} ({self.language})",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ontology({self.name!r}, concepts={len(self)}, language={self.language!r})"
