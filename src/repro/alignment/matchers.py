"""String-similarity matchers used by the automatic aligner.

The paper generates mappings with "the simple alignment techniques described
in [10]" (the Alignment API): label equality, edit distance, n-gram overlap,
and dictionary/synonym lookups.  These matchers reproduce that behaviour:
they are deliberately *simple*, so that — exactly as in the paper — a
non-negligible fraction of the correspondences they produce is wrong, giving
the probabilistic detector something to find.

Every matcher scores a pair of concepts in ``[0, 1]``; the aligner combines
the scores and keeps, for each source concept, the best-scoring target above
a threshold.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..schema.attribute import tokenize_identifier
from .ontology import Concept

__all__ = [
    "normalized_label",
    "exact_matcher",
    "levenshtein_distance",
    "edit_distance_matcher",
    "ngram_matcher",
    "token_matcher",
    "synonym_matcher",
    "CompositeMatcher",
]

#: Signature of a matcher: score two concepts in [0, 1].
Matcher = Callable[[Concept, Concept], float]


def normalized_label(label: str) -> str:
    """Lower-case, token-joined normal form of a label."""
    return " ".join(tokenize_identifier(label))


def exact_matcher(first: Concept, second: Concept) -> float:
    """1.0 when any pair of (normalised) labels matches exactly, else 0.0."""
    first_labels = {normalized_label(label) for label in first.all_labels}
    second_labels = {normalized_label(label) for label in second.all_labels}
    return 1.0 if first_labels & second_labels else 0.0


def levenshtein_distance(first: str, second: str) -> int:
    """Classic dynamic-programming Levenshtein edit distance."""
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    previous = list(range(len(second) + 1))
    for i, char_first in enumerate(first, start=1):
        current = [i]
        for j, char_second in enumerate(second, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            replace_cost = previous[j - 1] + (0 if char_first == char_second else 1)
            current.append(min(insert_cost, delete_cost, replace_cost))
        previous = current
    return previous[-1]


def edit_distance_matcher(first: Concept, second: Concept) -> float:
    """Similarity ``1 − d/max_len`` over the best label pair."""
    best = 0.0
    for label_first in first.all_labels:
        for label_second in second.all_labels:
            a = normalized_label(label_first)
            b = normalized_label(label_second)
            longest = max(len(a), len(b))
            if longest == 0:
                continue
            similarity = 1.0 - levenshtein_distance(a, b) / longest
            best = max(best, similarity)
    return best


def _ngrams(text: str, n: int) -> set[str]:
    padded = f" {text} "
    if len(padded) < n:
        return {padded}
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def ngram_matcher(first: Concept, second: Concept, n: int = 3) -> float:
    """Dice coefficient over character n-grams of the best label pair."""
    best = 0.0
    for label_first in first.all_labels:
        for label_second in second.all_labels:
            grams_first = _ngrams(normalized_label(label_first), n)
            grams_second = _ngrams(normalized_label(label_second), n)
            if not grams_first or not grams_second:
                continue
            overlap = len(grams_first & grams_second)
            score = 2.0 * overlap / (len(grams_first) + len(grams_second))
            best = max(best, score)
    return best


def token_matcher(first: Concept, second: Concept) -> float:
    """Jaccard similarity of the word-token sets of the best label pair."""
    best = 0.0
    for label_first in first.all_labels:
        for label_second in second.all_labels:
            tokens_first = set(tokenize_identifier(label_first))
            tokens_second = set(tokenize_identifier(label_second))
            if not tokens_first or not tokens_second:
                continue
            score = len(tokens_first & tokens_second) / len(tokens_first | tokens_second)
            best = max(best, score)
    return best


def synonym_matcher(dictionary: Dict[str, Sequence[str]]) -> Matcher:
    """Build a matcher from an explicit synonym / translation dictionary.

    ``dictionary`` maps a normalised label to the normalised labels it is
    considered equivalent to (the relation is applied symmetrically).
    """
    normalized: Dict[str, set[str]] = {}
    for key, values in dictionary.items():
        key_norm = normalized_label(key)
        bucket = normalized.setdefault(key_norm, set())
        for value in values:
            value_norm = normalized_label(value)
            bucket.add(value_norm)
            normalized.setdefault(value_norm, set()).add(key_norm)

    def matcher(first: Concept, second: Concept) -> float:
        first_labels = {normalized_label(label) for label in first.all_labels}
        second_labels = {normalized_label(label) for label in second.all_labels}
        for label in first_labels:
            if second_labels & normalized.get(label, set()):
                return 1.0
        return 0.0

    return matcher


class CompositeMatcher:
    """Weighted combination of several matchers.

    The score of a pair is the weighted maximum of the component scores —
    using the maximum (rather than the mean) mimics the behaviour of simple
    alignment toolchains that accept a correspondence as soon as *one*
    technique is confident, which is precisely how over-confident wrong
    matches slip through.
    """

    def __init__(self, matchers: Optional[Sequence[Tuple[Matcher, float]]] = None) -> None:
        if matchers is None:
            matchers = [
                (exact_matcher, 1.0),
                (edit_distance_matcher, 0.9),
                (ngram_matcher, 0.85),
                (token_matcher, 0.8),
            ]
        self.matchers: List[Tuple[Matcher, float]] = list(matchers)

    def add(self, matcher: Matcher, weight: float = 1.0) -> None:
        self.matchers.append((matcher, weight))

    def score(self, first: Concept, second: Concept) -> float:
        best = 0.0
        for matcher, weight in self.matchers:
            best = max(best, weight * matcher(first, second))
        return min(best, 1.0)

    def __call__(self, first: Concept, second: Concept) -> float:
        return self.score(first, second)
