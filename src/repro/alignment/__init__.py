"""Alignment substrate: ontologies, string matchers, the automatic aligner
and the synthetic EON bibliography scenario."""

from .ontology import Concept, Ontology
from .matchers import (
    CompositeMatcher,
    edit_distance_matcher,
    exact_matcher,
    levenshtein_distance,
    ngram_matcher,
    normalized_label,
    synonym_matcher,
    token_matcher,
)
from .aligner import AlignmentResult, OntologyAligner
from .eon import (
    CANONICAL_CONCEPTS,
    EONScenario,
    build_eon_network,
    eon_ground_truth,
    eon_ontologies,
    eon_scenario,
)

__all__ = [
    "Concept",
    "Ontology",
    "CompositeMatcher",
    "edit_distance_matcher",
    "exact_matcher",
    "levenshtein_distance",
    "ngram_matcher",
    "normalized_label",
    "synonym_matcher",
    "token_matcher",
    "AlignmentResult",
    "OntologyAligner",
    "CANONICAL_CONCEPTS",
    "EONScenario",
    "build_eon_network",
    "eon_ground_truth",
    "eon_ontologies",
    "eon_scenario",
]
