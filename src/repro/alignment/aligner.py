"""Automatic ontology alignment: producing (partly wrong) schema mappings.

Given two ontologies and a matcher, the aligner keeps — for every source
concept — the best-scoring target concept above a similarity threshold,
exactly the greedy strategy of simple alignment toolchains.  When a
ground-truth equivalence is available (each concept annotated with the
canonical concept it denotes), the produced correspondences are labelled
correct/incorrect so that the evaluation harness can score the detector;
the labels are invisible to the detector itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..exceptions import AlignmentError
from ..mapping.correspondence import Correspondence
from ..mapping.mapping import Mapping
from .matchers import CompositeMatcher
from .ontology import Concept, Ontology

__all__ = ["AlignmentResult", "OntologyAligner"]

#: Ground truth: {(ontology name, concept name): canonical concept id}.
GroundTruth = TMapping[Tuple[str, str], str]


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of aligning one ordered pair of ontologies."""

    mapping: Mapping
    scores: Dict[Tuple[str, str], float]
    unmatched_source_concepts: Tuple[str, ...]

    @property
    def correspondence_count(self) -> int:
        return len(self.mapping)

    @property
    def erroneous_count(self) -> int:
        return sum(
            1 for c in self.mapping.correspondences if c.is_correct is False
        )

    @property
    def error_rate(self) -> float:
        if len(self.mapping) == 0:
            return 0.0
        return self.erroneous_count / len(self.mapping)


class OntologyAligner:
    """Greedy best-match aligner over a composite similarity matcher.

    Parameters
    ----------
    matcher:
        Pairwise concept scorer; defaults to the standard composite of
        exact / edit-distance / n-gram / token matchers.
    threshold:
        Minimum similarity for a correspondence to be emitted.  Lower
        thresholds produce more correspondences and more errors — the same
        trade-off automatic alignment tools face.
    ground_truth:
        Optional ``{(ontology, concept): canonical id}`` used to label the
        produced correspondences for evaluation.
    """

    def __init__(
        self,
        matcher: Optional[CompositeMatcher] = None,
        threshold: float = 0.55,
        ground_truth: Optional[GroundTruth] = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise AlignmentError(f"threshold must be in (0, 1], got {threshold}")
        self.matcher = matcher or CompositeMatcher()
        self.threshold = threshold
        self.ground_truth = ground_truth

    # -- scoring ---------------------------------------------------------------------

    def _label(self, source: Ontology, target: Ontology, source_concept: str, target_concept: str) -> Optional[bool]:
        if self.ground_truth is None:
            return None
        canonical_source = self.ground_truth.get((source.name, source_concept))
        canonical_target = self.ground_truth.get((target.name, target_concept))
        if canonical_source is None or canonical_target is None:
            return None
        return canonical_source == canonical_target

    def align(self, source: Ontology, target: Ontology) -> AlignmentResult:
        """Align ``source`` to ``target``; returns the mapping plus scores."""
        if source.name == target.name:
            raise AlignmentError("cannot align an ontology with itself")
        scores: Dict[Tuple[str, str], float] = {}
        correspondences: List[Correspondence] = []
        unmatched: List[str] = []
        for source_concept in source.concepts:
            best_target: Optional[Concept] = None
            best_score = 0.0
            for target_concept in target.concepts:
                score = self.matcher.score(source_concept, target_concept)
                scores[(source_concept.name, target_concept.name)] = score
                if score > best_score:
                    best_score = score
                    best_target = target_concept
            if best_target is None or best_score < self.threshold:
                unmatched.append(source_concept.name)
                continue
            correspondences.append(
                Correspondence(
                    source_attribute=source_concept.name,
                    target_attribute=best_target.name,
                    confidence=best_score,
                    is_correct=self._label(
                        source, target, source_concept.name, best_target.name
                    ),
                    provenance="auto-alignment",
                )
            )
        mapping = Mapping(source.name, target.name, correspondences=correspondences)
        return AlignmentResult(
            mapping=mapping,
            scores=scores,
            unmatched_source_concepts=tuple(unmatched),
        )

    def align_all(
        self,
        ontologies: Sequence[Ontology],
        pairs: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> Dict[Tuple[str, str], AlignmentResult]:
        """Align every ordered pair (or the explicit ``pairs``) of ontologies."""
        by_name = {ontology.name: ontology for ontology in ontologies}
        if pairs is None:
            pairs = [
                (first.name, second.name)
                for first in ontologies
                for second in ontologies
                if first.name != second.name
            ]
        results: Dict[Tuple[str, str], AlignmentResult] = {}
        for source_name, target_name in pairs:
            if source_name not in by_name or target_name not in by_name:
                raise AlignmentError(
                    f"unknown ontology in pair ({source_name!r}, {target_name!r})"
                )
            results[(source_name, target_name)] = self.align(
                by_name[source_name], by_name[target_name]
            )
        return results
