"""Synthetic stand-in for the EON Ontology Alignment Contest bibliography set.

The paper's real-world experiment (Figure 12) imports six bibliographic
ontologies — the EON reference ontology (101), its French translation (221),
the MIT and UMBC BibTeX ontologies, and the INRIA and Karlsruhe bibliography
ontologies — each of roughly thirty concepts, aligns them automatically and
measures how well the message-passing scheme spots the wrong
correspondences.

The original OWL files are not redistributable here, so this module ships a
faithful *synthetic* counterpart (see DESIGN.md, substitutions): six
ontologies over the same ~30 canonical bibliographic concepts, each using
its own naming style (plain English, French, two BibTeX flavours, and two
institutional flavours).  The names are deliberately chosen so that the
simple string matchers of :mod:`repro.alignment.matchers` behave as they do
on the real data: most correspondences come out right, a significant
minority come out wrong (classic traps such as French *Editeur* = publisher
vs English *Editor*), and some concepts stay unmatched.

Every concept is annotated with the canonical concept it denotes, giving the
ground truth the evaluation harness scores against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import AlignmentError
from ..pdms.network import PDMSNetwork
from ..pdms.peer import Peer
from .aligner import AlignmentResult, OntologyAligner
from .matchers import CompositeMatcher
from .ontology import Concept, Ontology

__all__ = [
    "CANONICAL_CONCEPTS",
    "eon_ontologies",
    "eon_ground_truth",
    "build_eon_network",
    "EONScenario",
    "eon_scenario",
]

#: Canonical bibliographic concepts shared by all six ontologies.
CANONICAL_CONCEPTS: Tuple[str, ...] = (
    "reference",
    "article",
    "book",
    "conference-paper",
    "technical-report",
    "thesis",
    "proceedings",
    "journal",
    "publisher",
    "institution",
    "school",
    "author",
    "editor",
    "title",
    "year",
    "month",
    "pages",
    "volume",
    "number",
    "chapter",
    "address",
    "abstract",
    "keywords",
    "note",
    "edition",
    "series",
    "isbn",
    "url",
    "conference",
    "organization",
)

#: Per-ontology naming of every canonical concept (None = concept absent).
_NAMING: Dict[str, Dict[str, Optional[str]]] = {
    # 101 — the reference ontology, plain English names.
    "ref101": {
        "reference": "Reference",
        "article": "Article",
        "book": "Book",
        "conference-paper": "InProceedings",
        "technical-report": "TechnicalReport",
        "thesis": "Thesis",
        "proceedings": "Proceedings",
        "journal": "Journal",
        "publisher": "Publisher",
        "institution": "Institution",
        "school": "School",
        "author": "Author",
        "editor": "Editor",
        "title": "Title",
        "year": "Year",
        "month": "Month",
        "pages": "Pages",
        "volume": "Volume",
        "number": "Number",
        "chapter": "Chapter",
        "address": "Address",
        "abstract": "Abstract",
        "keywords": "Keywords",
        "note": "Note",
        "edition": "Edition",
        "series": "Series",
        "isbn": "ISBN",
        "url": "URL",
        "conference": "Conference",
        "organization": "Organization",
    },
    # 221 — the French translation of the reference ontology.  Note the
    # classic faux-ami: "Editeur" means *publisher*, "Redacteur" is the
    # editor; string matchers love to get these wrong.
    "fr221": {
        "reference": "Reference",
        "article": "Article",
        "book": "Livre",
        "conference-paper": "ArticleDeConference",
        "technical-report": "RapportTechnique",
        "thesis": "These",
        "proceedings": "Actes",
        "journal": "Revue",
        "publisher": "Editeur",
        "institution": "Institution",
        "school": "Ecole",
        "author": "Auteur",
        "editor": "Redacteur",
        "title": "Titre",
        "year": "Annee",
        "month": "Mois",
        "pages": "Pages",
        "volume": "Volume",
        "number": "Numero",
        "chapter": "Chapitre",
        "address": "Adresse",
        "abstract": "Resume",
        "keywords": "MotsCles",
        "note": "Note",
        "edition": "Edition",
        "series": "Collection",
        "isbn": "ISBN",
        "url": "URL",
        "conference": "Conference",
        "organization": "Organisation",
    },
    # MIT BibTeX — lower-case BibTeX entry/field names.
    "mit-bibtex": {
        "reference": "entry",
        "article": "article",
        "book": "book",
        "conference-paper": "inproceedings",
        "technical-report": "techreport",
        "thesis": "phdthesis",
        "proceedings": "proceedings",
        "journal": "journal",
        "publisher": "publisher",
        "institution": "institution",
        "school": "school",
        "author": "author",
        "editor": "editor",
        "title": "title",
        "year": "year",
        "month": "month",
        "pages": "pages",
        "volume": "volume",
        "number": "number",
        "chapter": "chapter",
        "address": "address",
        "abstract": "annote",
        "keywords": "keywords",
        "note": "note",
        "edition": "edition",
        "series": "series",
        "isbn": "isbn",
        "url": "howpublished",
        "conference": "conference",
        "organization": "organization",
    },
    # UMBC BibTeX — verbose CamelCase names.
    "umbc-bibtex": {
        "reference": "Publication",
        "article": "JournalArticle",
        "book": "Monograph",
        "conference-paper": "ConferencePaper",
        "technical-report": "TechReport",
        "thesis": "Dissertation",
        "proceedings": "ConferenceProceedings",
        "journal": "Periodical",
        "publisher": "PublishingHouse",
        "institution": "Institute",
        "school": "University",
        "author": "Creator",
        "editor": "EditorName",
        "title": "DocumentTitle",
        "year": "PublicationYear",
        "month": "PublicationMonth",
        "pages": "PageRange",
        "volume": "VolumeNumber",
        "number": "IssueNumber",
        "chapter": "ChapterNumber",
        "address": "PublisherAddress",
        "abstract": "Summary",
        "keywords": "SubjectTerms",
        "note": "Annotation",
        "edition": "EditionNumber",
        "series": "SeriesTitle",
        "isbn": "ISBNCode",
        "url": "WebAddress",
        "conference": "Meeting",
        "organization": "SponsoringBody",
    },
    # INRIA — property-style camelCase names.
    "inria": {
        "reference": "bibliographicEntry",
        "article": "journalPaper",
        "book": "monography",
        "conference-paper": "conferencePaper",
        "technical-report": "researchReport",
        "thesis": "dissertation",
        "proceedings": "conferenceProceedings",
        "journal": "journal",
        "publisher": "publishingEditor",
        "institution": "institution",
        "school": "university",
        "author": "hasAuthor",
        "editor": "hasEditor",
        "title": "hasTitle",
        "year": "publicationYear",
        "month": "publicationMonth",
        "pages": "pageNumbers",
        "volume": "volumeOf",
        "number": "issueOf",
        "chapter": "chapterOf",
        "address": "publisherLocation",
        "abstract": "hasAbstract",
        "keywords": "keyword",
        "note": "remark",
        "edition": "editionOf",
        "series": "partOfSeries",
        "isbn": "isbnNumber",
        "url": "webResource",
        "conference": "conferenceEvent",
        "organization": "organizedBy",
    },
    # Karlsruhe — German-flavoured mixed names.
    "karlsruhe": {
        "reference": "Publikation",
        "article": "ArticleReference",
        "book": "BookReference",
        "conference-paper": "ConferenceArticle",
        "technical-report": "Report",
        "thesis": "PhDThesis",
        "proceedings": "ProceedingsReference",
        "journal": "Journal",
        "publisher": "Verlag",
        "institution": "Institut",
        "school": "Universitaet",
        "author": "AuthorPerson",
        "editor": "EditorPerson",
        "title": "TitleOfWork",
        "year": "YearOfPublication",
        "month": "MonthOfPublication",
        "pages": "NumberOfPages",
        "volume": "VolumeTitle",
        "number": "Number",
        "chapter": "ChapterTitle",
        "address": "Address",
        "abstract": "AbstractText",
        "keywords": "Keyword",
        "note": "Note",
        "edition": "Edition",
        "series": "SeriesName",
        "isbn": "ISBN",
        "url": "OnlineResource",
        "conference": "ConferenceEvent",
        "organization": "Organization",
    },
}


def eon_ontologies() -> List[Ontology]:
    """Build the six synthetic bibliographic ontologies."""
    languages = {
        "ref101": "en",
        "fr221": "fr",
        "mit-bibtex": "en",
        "umbc-bibtex": "en",
        "inria": "en",
        "karlsruhe": "en",
    }
    ontologies: List[Ontology] = []
    for ontology_name, naming in _NAMING.items():
        concepts = [
            Concept(name=concept_name, comment=f"denotes canonical concept {canonical!r}")
            for canonical, concept_name in naming.items()
            if concept_name is not None
        ]
        ontologies.append(
            Ontology(ontology_name, concepts=concepts, language=languages[ontology_name])
        )
    return ontologies


def eon_ground_truth() -> Dict[Tuple[str, str], str]:
    """Ground truth: (ontology, concept name) → canonical concept id."""
    truth: Dict[Tuple[str, str], str] = {}
    for ontology_name, naming in _NAMING.items():
        for canonical, concept_name in naming.items():
            if concept_name is None:
                continue
            truth[(ontology_name, concept_name)] = canonical
    return truth


@dataclass
class EONScenario:
    """The full synthetic EON setting: network, mappings and ground truth."""

    network: PDMSNetwork
    ontologies: List[Ontology]
    alignments: Dict[Tuple[str, str], AlignmentResult]
    ground_truth: Dict[Tuple[str, str], bool]

    @property
    def correspondence_count(self) -> int:
        """Total number of generated attribute correspondences ("mappings"
        in the paper's Figure 12 terminology)."""
        return sum(result.correspondence_count for result in self.alignments.values())

    @property
    def erroneous_count(self) -> int:
        return sum(result.erroneous_count for result in self.alignments.values())

    @property
    def error_rate(self) -> float:
        total = self.correspondence_count
        return self.erroneous_count / total if total else 0.0

    def is_correct(self, mapping_name: str, source_attribute: str) -> Optional[bool]:
        return self.ground_truth.get((mapping_name, source_attribute))


def build_eon_network(
    threshold: float = 0.55,
    matcher: Optional[CompositeMatcher] = None,
    pairs: Optional[Iterable[Tuple[str, str]]] = None,
) -> EONScenario:
    """Align the six ontologies and assemble the resulting PDMS.

    Every ordered pair of ontologies is aligned (giving 30 directed schema
    mappings, a few hundred attribute correspondences in total, a sizeable
    minority of which are wrong), and each ontology becomes a peer whose
    schema is the ontology's concept list — the exact setting of the paper's
    Figure 12 experiment, with synthetic ontologies substituted for the EON
    originals.
    """
    ontologies = eon_ontologies()
    aligner = OntologyAligner(
        matcher=matcher, threshold=threshold, ground_truth=eon_ground_truth()
    )
    alignments = aligner.align_all(ontologies, pairs=pairs)

    network = PDMSNetwork(name="eon-bibliography", directed=True)
    for ontology in ontologies:
        network.add_peer(Peer(ontology.name, ontology.to_schema()))
    ground_truth: Dict[Tuple[str, str], bool] = {}
    for result in alignments.values():
        mapping = result.mapping
        if len(mapping) == 0:
            continue
        network.add_mapping(mapping, bidirectional=False)
        for correspondence in mapping.correspondences:
            ground_truth[(mapping.name, correspondence.source_attribute)] = (
                correspondence.is_correct is not False
            )
    return EONScenario(
        network=network,
        ontologies=ontologies,
        alignments=alignments,
        ground_truth=ground_truth,
    )


def eon_scenario(threshold: float = 0.55) -> EONScenario:
    """Convenience alias for :func:`build_eon_network` with defaults."""
    return build_eon_network(threshold=threshold)
