"""Schema substrate: attributes, schemas, instance data and the registry."""

from .attribute import Attribute, AttributeType, tokenize_identifier
from .schema import DataModel, Schema
from .instances import InstanceStore, Record
from .registry import SchemaRegistry

__all__ = [
    "Attribute",
    "AttributeType",
    "tokenize_identifier",
    "DataModel",
    "Schema",
    "InstanceStore",
    "Record",
    "SchemaRegistry",
]
