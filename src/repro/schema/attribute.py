"""Attributes — the semantic unit the paper reasons about.

The paper deliberately stays data-model agnostic (§2): an *attribute* may be
a relational column, an XML element/attribute, or an RDF class/property.
What matters is that queries project/select on attributes and that mappings
connect attributes of different schemas.  We capture that with a small value
type carrying a name, an optional path (for XML-style nesting), a coarse
data type and free-form annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Optional, Tuple

from ..exceptions import SchemaError

__all__ = ["AttributeType", "Attribute"]


class AttributeType(str, Enum):
    """Coarse data type of an attribute's values."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"
    BOOLEAN = "boolean"
    REFERENCE = "reference"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Attribute:
    """A named attribute of a schema.

    Parameters
    ----------
    name:
        Attribute name, unique within its schema (e.g. ``Creator``).
    path:
        Optional hierarchical path for XML-like schemas
        (e.g. ``/Photoshop_Image/Creator``).  Defaults to ``/<name>``.
    data_type:
        Coarse value type; used by matchers and the instance generator.
    description:
        Optional human-readable documentation, used by synonym matchers.
    """

    name: str
    path: Optional[str] = None
    data_type: AttributeType = AttributeType.STRING
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise SchemaError("attribute name must be non-empty")
        if self.path is None:
            object.__setattr__(self, "path", f"/{self.name}")
        elif not self.path.startswith("/"):
            raise SchemaError(
                f"attribute path must start with '/', got {self.path!r}"
            )

    @property
    def tokens(self) -> Tuple[str, ...]:
        """Lower-cased word tokens of the attribute name.

        Splits camelCase, snake_case and dashes; used by the string-based
        alignment matchers.
        """
        return tokenize_identifier(self.name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def tokenize_identifier(identifier: str) -> Tuple[str, ...]:
    """Split an identifier into lower-cased word tokens.

    Handles camelCase, PascalCase, snake_case, kebab-case and dotted names.

    Examples
    --------
    >>> tokenize_identifier("createdOn")
    ('created', 'on')
    >>> tokenize_identifier("display_name")
    ('display', 'name')
    """
    if not identifier:
        return ()
    pieces: list[str] = []
    current = ""
    previous_lower = False
    for char in identifier:
        if char in "_-. /":
            if current:
                pieces.append(current)
            current = ""
            previous_lower = False
            continue
        if char.isupper() and previous_lower:
            pieces.append(current)
            current = char
        else:
            current += char
        previous_lower = char.islower() or char.isdigit()
    if current:
        pieces.append(current)
    return tuple(piece.lower() for piece in pieces if piece)
