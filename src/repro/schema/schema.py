"""Schemas: ordered collections of attributes owned by a peer database.

A :class:`Schema` is intentionally lightweight — the paper's probabilistic
machinery only needs to know which attributes exist so that mapping
round trips can be compared attribute by attribute.  We nevertheless keep a
data-model flavour (relational / XML / RDF) because the generators and the
alignment substrate use it to produce realistic synthetic scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import SchemaError, UnknownAttributeError
from .attribute import Attribute, AttributeType

__all__ = ["DataModel", "Schema"]


class DataModel(str, Enum):
    """Flavour of the underlying data model of a peer database."""

    RELATIONAL = "relational"
    XML = "xml"
    RDF = "rdf"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Schema:
    """A named schema: an ordered set of uniquely named attributes.

    Parameters
    ----------
    name:
        Schema name, unique within a :class:`~repro.schema.registry.SchemaRegistry`.
    attributes:
        Attributes of the schema.  Names must be unique (case-sensitive).
    data_model:
        Flavour of the data model (defaults to XML, matching the paper's
        introductory example).
    description:
        Free-form documentation.
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute | str] = (),
        data_model: DataModel = DataModel.XML,
        description: str = "",
    ) -> None:
        if not name or not name.strip():
            raise SchemaError("schema name must be non-empty")
        self.name = name
        self.data_model = DataModel(data_model)
        self.description = description
        self._attributes: Dict[str, Attribute] = {}
        self._order: List[str] = []
        for attribute in attributes:
            self.add_attribute(attribute)

    # -- construction -----------------------------------------------------------

    def add_attribute(self, attribute: Attribute | str) -> Attribute:
        """Add an attribute (or create one from a bare name)."""
        if isinstance(attribute, str):
            attribute = Attribute(name=attribute)
        if attribute.name in self._attributes:
            raise SchemaError(
                f"schema {self.name!r} already has an attribute "
                f"{attribute.name!r}"
            )
        self._attributes[attribute.name] = attribute
        self._order.append(attribute.name)
        return attribute

    # -- lookups ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """Attributes in insertion order."""
        return tuple(self._attributes[name] for name in self._order)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Attribute names in insertion order."""
        return tuple(self._order)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``."""
        try:
            return self._attributes[name]
        except KeyError:
            raise UnknownAttributeError(
                f"schema {self.name!r} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attribute_names == other.attribute_names
            and self.data_model == other.data_model
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attribute_names, self.data_model))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schema({self.name!r}, attributes={len(self)}, "
            f"data_model={self.data_model.value!r})"
        )

    # -- convenience -----------------------------------------------------------------

    def rename(self, new_name: str) -> "Schema":
        """Return a copy of the schema under a different name."""
        return Schema(
            new_name,
            attributes=self.attributes,
            data_model=self.data_model,
            description=self.description,
        )

    def restrict(self, attribute_names: Sequence[str], name: Optional[str] = None) -> "Schema":
        """Return a copy containing only ``attribute_names`` (in that order)."""
        return Schema(
            name or self.name,
            attributes=[self.attribute(a) for a in attribute_names],
            data_model=self.data_model,
            description=self.description,
        )

    @classmethod
    def from_names(
        cls,
        name: str,
        attribute_names: Sequence[str],
        data_model: DataModel = DataModel.XML,
        data_type: AttributeType = AttributeType.STRING,
    ) -> "Schema":
        """Build a schema from bare attribute names (all of ``data_type``)."""
        return cls(
            name,
            attributes=[Attribute(n, data_type=data_type) for n in attribute_names],
            data_model=data_model,
        )
