"""Instance data stored at each peer.

Peers in the paper are XML databases answering XQuery selections and
projections.  The probabilistic machinery never inspects instance values,
but the examples and the routing substrate need actual data to demonstrate
false positives caused by faulty mappings (the "Creator vs CreatedOn"
confusion in the introductory example).  A :class:`Record` is simply a
mapping from attribute names to values validated against a schema, and an
:class:`InstanceStore` is an in-memory collection of records supporting the
selection/projection operations the paper's queries are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import QueryError, SchemaError, UnknownAttributeError
from .schema import Schema

__all__ = ["Record", "InstanceStore"]


@dataclass(frozen=True)
class Record:
    """A single data record conforming to a schema.

    Values for attributes the record does not provide are simply absent;
    lookups return ``None`` for them.
    """

    schema_name: str
    values: Mapping[str, Any]

    def get(self, attribute_name: str) -> Any:
        """Value of ``attribute_name`` or ``None`` when absent."""
        return self.values.get(attribute_name)

    def project(self, attribute_names: Sequence[str]) -> "Record":
        """Return a record restricted to ``attribute_names``."""
        return Record(
            schema_name=self.schema_name,
            values={name: self.values[name] for name in attribute_names if name in self.values},
        )

    def rename_attributes(self, renaming: Mapping[str, str], schema_name: str) -> "Record":
        """Return a record with attributes renamed per ``renaming``.

        Attributes without an entry in ``renaming`` are dropped — this is how
        a record travels through a (possibly partial) schema mapping.
        """
        return Record(
            schema_name=schema_name,
            values={
                renaming[name]: value
                for name, value in self.values.items()
                if name in renaming
            },
        )


class InstanceStore:
    """In-memory collection of records validated against one schema."""

    def __init__(self, schema: Schema, records: Iterable[Mapping[str, Any] | Record] = ()) -> None:
        self.schema = schema
        self._records: List[Record] = []
        for record in records:
            self.insert(record)

    def insert(self, record: Mapping[str, Any] | Record) -> Record:
        """Insert a record, validating its attributes against the schema."""
        if isinstance(record, Record):
            values = dict(record.values)
        else:
            values = dict(record)
        for attribute_name in values:
            if not self.schema.has_attribute(attribute_name):
                raise UnknownAttributeError(
                    f"record has attribute {attribute_name!r} which schema "
                    f"{self.schema.name!r} does not declare"
                )
        stored = Record(schema_name=self.schema.name, values=values)
        self._records.append(stored)
        return stored

    def insert_many(self, records: Iterable[Mapping[str, Any] | Record]) -> int:
        """Insert several records; returns how many were inserted."""
        count = 0
        for record in records:
            self.insert(record)
            count += 1
        return count

    # -- query primitives ---------------------------------------------------------

    def scan(self) -> Tuple[Record, ...]:
        """All records."""
        return tuple(self._records)

    def select(self, attribute_name: str, predicate) -> Tuple[Record, ...]:
        """Records whose ``attribute_name`` value satisfies ``predicate``.

        Records lacking the attribute never match.
        """
        if not self.schema.has_attribute(attribute_name):
            raise UnknownAttributeError(
                f"schema {self.schema.name!r} has no attribute {attribute_name!r}"
            )
        if not callable(predicate):
            raise QueryError("predicate must be callable")
        matches = []
        for record in self._records:
            value = record.get(attribute_name)
            if value is None:
                continue
            if predicate(value):
                matches.append(record)
        return tuple(matches)

    def project(self, attribute_names: Sequence[str]) -> Tuple[Record, ...]:
        """Project every record onto ``attribute_names``."""
        for name in attribute_names:
            if not self.schema.has_attribute(name):
                raise UnknownAttributeError(
                    f"schema {self.schema.name!r} has no attribute {name!r}"
                )
        return tuple(record.project(attribute_names) for record in self._records)

    def values_of(self, attribute_name: str) -> Tuple[Any, ...]:
        """All non-null values of ``attribute_name`` across records."""
        if not self.schema.has_attribute(attribute_name):
            raise UnknownAttributeError(
                f"schema {self.schema.name!r} has no attribute {attribute_name!r}"
            )
        return tuple(
            record.get(attribute_name)
            for record in self._records
            if record.get(attribute_name) is not None
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InstanceStore(schema={self.schema.name!r}, records={len(self)})"
