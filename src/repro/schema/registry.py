"""Schema registry — a named collection of schemas.

The registry is a convenience used by the generators, the alignment
substrate and the PDMS builder: it guarantees unique schema names and offers
bulk lookups.  It is *not* a central semantic component in the PDMS sense —
it merely plays the role of the experimenter's workbench holding the
scenario under study.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..exceptions import SchemaError
from .schema import Schema

__all__ = ["SchemaRegistry"]


class SchemaRegistry:
    """A mapping from schema names to :class:`~repro.schema.schema.Schema`."""

    def __init__(self, schemas: Iterable[Schema] = ()) -> None:
        self._schemas: Dict[str, Schema] = {}
        for schema in schemas:
            self.register(schema)

    def register(self, schema: Schema) -> Schema:
        """Register ``schema``; names must be unique."""
        if schema.name in self._schemas:
            raise SchemaError(f"schema {schema.name!r} is already registered")
        self._schemas[schema.name] = schema
        return schema

    def get(self, name: str) -> Schema:
        """Return the schema called ``name``."""
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"unknown schema {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._schemas

    def __len__(self) -> int:
        return len(self._schemas)

    def __iter__(self) -> Iterator[Schema]:
        return iter(self._schemas.values())

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._schemas)

    def common_attributes(self, first: str, second: str) -> Tuple[str, ...]:
        """Attribute names shared (by exact name) between two schemas."""
        a = set(self.get(first).attribute_names)
        b = set(self.get(second).attribute_names)
        return tuple(sorted(a & b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SchemaRegistry(schemas={len(self)})"
