"""Dynamic vector clocks for causal delivery of topology events.

The ROADMAP's "peers as processes" runtime needs topology changes to
travel between peers with *causal* guarantees: a mapping addition must
never be applied before the peer additions it references, no matter how
the transport reorders messages.  The classic device is a vector clock —
one counter per participant — but a PDMS has no fixed membership, so the
clock here is keyed by *peer name* and grows dynamically: a peer the
clock has never seen simply counts as zero.

:class:`VectorClock` is immutable (every operation returns a new clock),
picklable, and canonical: entries are stored sorted by peer name with
zero counters elided, so equal clocks compare and hash equal regardless
of construction order.  :meth:`VectorClock.total` is the Lamport-style
linearisation both the gossip journal and the multi-node harness use to
impose one deterministic total order on causally-concurrent events
(``a`` causally precedes ``b`` implies ``a.total() < b.total()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple, Union

from ..exceptions import PDMSError

__all__ = ["VectorClock"]


@dataclass(frozen=True)
class VectorClock:
    """An immutable, dynamically-keyed vector clock.

    Parameters
    ----------
    entries:
        ``(peer_name, counter)`` pairs.  Stored canonically: sorted by
        peer name, counters must be positive (zero counters are implicit
        for every unknown peer).  Use :meth:`of` to build a clock from an
        arbitrary mapping without worrying about canonical form.
    """

    entries: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        names = [name for name, _ in self.entries]
        if names != sorted(names) or len(set(names)) != len(names):
            raise PDMSError(
                f"vector clock entries must be sorted and unique, got {names}"
            )
        for name, counter in self.entries:
            if not name:
                raise PDMSError("vector clock peer names must be non-empty")
            if counter <= 0:
                raise PDMSError(
                    f"vector clock counters must be positive, got "
                    f"{counter} for {name!r}"
                )

    @classmethod
    def of(
        cls,
        counts: Union[Mapping[str, int], Iterable[Tuple[str, int]]] = (),
    ) -> "VectorClock":
        """Build a clock from ``{peer: counter}`` (zeros are dropped)."""
        items = counts.items() if isinstance(counts, Mapping) else counts
        return cls(
            entries=tuple(
                sorted((name, counter) for name, counter in items if counter)
            )
        )

    # -- reads ---------------------------------------------------------------------

    def counter(self, peer: str) -> int:
        """The counter for ``peer`` (0 when the clock has never seen it)."""
        for name, counter in self.entries:
            if name == peer:
                return counter
        return 0

    def as_dict(self) -> Dict[str, int]:
        """The clock as a plain ``{peer: counter}`` dict."""
        return dict(self.entries)

    @property
    def peer_names(self) -> Tuple[str, ...]:
        """Peers with a non-zero counter, sorted."""
        return tuple(name for name, _ in self.entries)

    def total(self) -> int:
        """Sum of all counters — a strictly monotone linear extension of
        the causal (dominance) order, used to break ties deterministically
        when concurrent events must be sequenced."""
        return sum(counter for _, counter in self.entries)

    # -- algebra -------------------------------------------------------------------

    def increment(self, peer: str) -> "VectorClock":
        """A new clock with ``peer``'s counter bumped by one."""
        if not peer:
            raise PDMSError("cannot increment a vector clock for peer ''")
        counts = dict(self.entries)
        counts[peer] = counts.get(peer, 0) + 1
        return VectorClock.of(counts)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """The component-wise maximum of the two clocks."""
        counts = dict(self.entries)
        for name, counter in other.entries:
            if counter > counts.get(name, 0):
                counts[name] = counter
        return VectorClock.of(counts)

    def dominates(self, other: "VectorClock") -> bool:
        """``True`` when every counter of ``other`` is <= this clock's.

        Reflexive: a clock dominates itself.  ``a.dominates(b)`` and
        ``a != b`` is the strict "``b`` happened before ``a``" relation.
        """
        counts = dict(self.entries)
        return all(
            counter <= counts.get(name, 0) for name, counter in other.entries
        )

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other (causally unordered)."""
        return not self.dominates(other) and not other.dominates(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{name}:{counter}" for name, counter in self.entries)
        return f"VectorClock({{{inner}}})"
