"""The PDMS network: peers plus the graph of pairwise mappings.

A :class:`PDMSNetwork` is the substrate everything else operates on.  It
holds the peers, registers mappings both on the owning peer and in a global
index (the index is an *experimenter's view*; the decentralised algorithms
only ever use per-peer information), and exposes the mapping graph as a
:mod:`networkx` ``DiGraph`` / ``MultiDiGraph`` for topology analysis.

Both directed and undirected PDMS are supported (§3.2 vs §3.3): an
undirected network simply registers every mapping in both directions
(``bidirectional=True`` on :meth:`add_mapping`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, Optional, Tuple

import networkx as nx

from ..exceptions import PDMSError, UnknownPeerError
from ..mapping.mapping import Mapping
from ..schema.schema import Schema
from .events import (
    MappingAdded,
    MappingRemoved,
    PeerAdded,
    PeerRemoved,
    TopologyEvent,
    apply as apply_event,
)
from .peer import Peer

__all__ = ["PDMSNetwork"]


class PDMSNetwork:
    """A collection of peers connected by directed pairwise schema mappings.

    Parameters
    ----------
    name:
        Network name, used in reports.
    directed:
        ``True`` for a directed PDMS (mappings are one-way), ``False`` for
        an undirected one.  Undirected networks still store directed
        mappings internally; :meth:`add_mapping` simply registers the
        reverse direction automatically when the network is undirected and
        ``auto_reverse`` is left on.
    """

    #: Event-log entries kept for incremental consumers; older entries
    #: are dropped and :meth:`events_since` / :meth:`mutations_since`
    #: report the log as truncated.
    MUTATION_LOG_LIMIT = 256

    def __init__(self, name: str = "pdms", directed: bool = True) -> None:
        self.name = name
        self.directed = directed
        self._peers: Dict[str, Peer] = {}
        self._mappings: Dict[str, Mapping] = {}
        self._version = 0
        self._event_log: Deque[Tuple[int, TopologyEvent]] = deque(
            maxlen=self.MUTATION_LOG_LIMIT
        )
        self._mutation_floor = 0

    @property
    def version(self) -> int:
        """Monotonic topology version, bumped on every peer/mapping mutation.

        Consumers that derive expensive structures from the topology (e.g.
        :class:`repro.core.analysis.NetworkStructureCache`) key their caches
        on this counter so a mutated network is re-probed automatically.
        """
        return self._version

    def _record_event(self, event: TopologyEvent) -> None:
        """Append one typed event to the bounded log (O(1)).

        The log is a ``deque(maxlen=...)``: when full, appending evicts
        the oldest entry in constant time, and the evicted entry's version
        becomes the truncation floor below which incremental consumers
        must fall back to a full re-derivation.
        """
        if len(self._event_log) == self.MUTATION_LOG_LIMIT:
            self._mutation_floor = self._event_log[0][0]
        self._event_log.append((self._version, event))

    def events_since(
        self, version: int
    ) -> Optional[Tuple[Tuple[int, TopologyEvent], ...]]:
        """Typed topology events applied after ``version``, oldest first.

        Each entry is ``(version_after_mutation, event)``.  Returns
        ``None`` when the bounded log no longer reaches back to
        ``version`` — callers must then fall back to a full
        re-derivation.  Both structure caches in
        :mod:`repro.core.analysis` feed these entries to
        :func:`repro.pdms.discovery.replay_structure_log` to refresh only
        the structures touching mutated mappings.
        """
        if version < self._mutation_floor:
            return None
        return tuple(
            entry for entry in self._event_log if entry[0] > version
        )

    def mutations_since(
        self, version: int
    ) -> Optional[Tuple[Tuple[int, str, str], ...]]:
        """Legacy view of :meth:`events_since`: ``(version, kind, subject)``.

        ``kind`` is one of ``"add_peer"``, ``"remove_peer"``,
        ``"add_mapping"`` or ``"remove_mapping"`` and ``subject`` the
        peer / mapping name — derived from the typed event log, kept for
        consumers that predate :mod:`repro.pdms.events`.  Returns ``None``
        on truncation exactly like :meth:`events_since`.
        """
        entries = self.events_since(version)
        if entries is None:
            return None
        return tuple(event.as_legacy(entry_version) for entry_version, event in entries)

    def event_log(self) -> Tuple[TopologyEvent, ...]:
        """The retained typed events, oldest first.

        Bounded by :attr:`MUTATION_LOG_LIMIT`; when :attr:`log_truncated`
        is ``False`` this is the *complete* mutation history and
        :meth:`from_events` replays it to a network with identical peers,
        mappings and :attr:`version`.
        """
        return tuple(event for _, event in self._event_log)

    @property
    def log_truncated(self) -> bool:
        """``True`` when the bounded log has dropped its oldest entries."""
        return self._mutation_floor > 0

    @classmethod
    def from_events(
        cls,
        events: Iterable[TopologyEvent],
        name: str = "pdms",
        directed: bool = True,
    ) -> "PDMSNetwork":
        """Replay a recorded event log into a fresh network.

        Applies each event through the deterministic transition
        :func:`repro.pdms.events.apply`; replaying a network's complete
        :meth:`event_log` reproduces its peers, mappings and ``version``
        exactly (instance records are data, not topology, and are not
        replayed).
        """
        network = cls(name=name, directed=directed)
        for event in events:
            apply_event(network, event)
        return network

    # -- peers -----------------------------------------------------------------------

    def add_peer(self, peer: Peer | Schema, name: Optional[str] = None) -> Peer:
        """Add a peer (or build one from a schema).

        When passing a :class:`Schema`, ``name`` defaults to the schema name.
        """
        if isinstance(peer, Schema):
            peer = Peer(name or peer.name, peer)
        if peer.name in self._peers:
            raise PDMSError(f"peer {peer.name!r} already exists in {self.name!r}")
        self._peers[peer.name] = peer
        self._version += 1
        self._record_event(PeerAdded(name=peer.name, schema=peer.schema))
        return peer

    def remove_peer(self, name: str) -> Peer:
        """Remove a peer, cascading the removal of its incident mappings.

        Every incident mapping (outgoing *and* incoming) is removed first
        through :meth:`remove_mapping` — each recording its own
        :class:`~repro.pdms.events.MappingRemoved` event — and the peer's
        departure is then recorded as a typed
        :class:`~repro.pdms.events.PeerRemoved` event, so the log stays
        replayable without hidden cascades.  Structure caches fall back
        to a full re-probe on peer removal (the incremental replay only
        handles mapping-level churn).
        """
        peer = self.peer(name)
        incident = [
            mapping.name
            for mapping in self._mappings.values()
            if mapping.source == name or mapping.target == name
        ]
        for mapping_name in incident:
            self.remove_mapping(mapping_name)
        del self._peers[name]
        self._version += 1
        self._record_event(PeerRemoved(name=name))
        return peer

    def peer(self, name: str) -> Peer:
        """Return the peer called ``name``."""
        try:
            return self._peers[name]
        except KeyError:
            raise UnknownPeerError(f"unknown peer {name!r}") from None

    def has_peer(self, name: str) -> bool:
        return name in self._peers

    @property
    def peers(self) -> Tuple[Peer, ...]:
        return tuple(self._peers.values())

    @property
    def peer_names(self) -> Tuple[str, ...]:
        return tuple(self._peers)

    def __len__(self) -> int:
        return len(self._peers)

    def __iter__(self) -> Iterator[Peer]:
        return iter(self._peers.values())

    # -- mappings ---------------------------------------------------------------------

    def add_mapping(self, mapping: Mapping, bidirectional: Optional[bool] = None) -> Mapping:
        """Register a mapping (and its reverse when the network is undirected).

        ``bidirectional`` overrides the network-level default: ``None``
        means "reverse automatically iff the network is undirected".
        """
        if mapping.source not in self._peers:
            raise UnknownPeerError(
                f"mapping {mapping.name} departs from unknown peer {mapping.source!r}"
            )
        if mapping.target not in self._peers:
            raise UnknownPeerError(
                f"mapping {mapping.name} arrives at unknown peer {mapping.target!r}"
            )
        if mapping.name in self._mappings:
            raise PDMSError(f"mapping {mapping.name} already registered")
        self._mappings[mapping.name] = mapping
        self._peers[mapping.source].add_outgoing_mapping(mapping)
        self._version += 1
        self._record_event(MappingAdded(mapping=mapping))

        reverse = (not self.directed) if bidirectional is None else bidirectional
        if reverse:
            reversed_mapping = mapping.reversed()
            if reversed_mapping.name not in self._mappings:
                self._mappings[reversed_mapping.name] = reversed_mapping
                self._peers[reversed_mapping.source].add_outgoing_mapping(reversed_mapping)
                self._version += 1
                self._record_event(MappingAdded(mapping=reversed_mapping))
        return mapping

    def mapping(self, name: str) -> Mapping:
        """Return the mapping called ``name`` (e.g. ``'p2->p3'``)."""
        try:
            return self._mappings[name]
        except KeyError:
            raise PDMSError(f"unknown mapping {name!r}") from None

    def remove_mapping(self, name: str) -> Mapping:
        """Unregister a mapping from the network and its owning peer."""
        mapping = self.mapping(name)
        del self._mappings[name]
        self._peers[mapping.source]._outgoing.pop(name, None)
        self._version += 1
        self._record_event(MappingRemoved(name=name))
        return mapping

    def has_mapping(self, name: str) -> bool:
        return name in self._mappings

    @property
    def mappings(self) -> Tuple[Mapping, ...]:
        return tuple(self._mappings.values())

    @property
    def mapping_names(self) -> Tuple[str, ...]:
        return tuple(self._mappings)

    def mappings_between(self, source: str, target: str) -> Tuple[Mapping, ...]:
        """All mappings from ``source`` to ``target`` (parallel mappings)."""
        return tuple(
            m for m in self._mappings.values() if m.source == source and m.target == target
        )

    # -- topology ------------------------------------------------------------------------

    def snapshot(self):
        """An immutable, picklable :class:`~repro.pdms.discovery.TopologySnapshot`
        of the current peers and mappings (insertion order preserved), the
        topology view probe plans are built on and shipped to worker
        processes.  Tagged with :attr:`version` so cached snapshots can be
        invalidated on mutation.
        """
        from .discovery import TopologySnapshot

        return TopologySnapshot.of(self)

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export the mapping graph; edge key is the mapping name."""
        graph = nx.MultiDiGraph(name=self.name)
        graph.add_nodes_from(self._peers)
        for mapping in self._mappings.values():
            graph.add_edge(mapping.source, mapping.target, key=mapping.name)
        return graph

    def out_degree(self, peer_name: str) -> int:
        """Number of outgoing mappings of ``peer_name``."""
        return len(self.peer(peer_name).outgoing_mappings)

    def attribute_universe(self) -> Tuple[str, ...]:
        """Union of all attribute names across peer schemas (sorted)."""
        names: set[str] = set()
        for peer in self._peers.values():
            names.update(peer.schema.attribute_names)
        return tuple(sorted(names))

    def clustering_coefficient(self) -> float:
        """Average clustering coefficient of the (undirected view of the)
        mapping graph.

        The paper motivates cycle analysis by the unusually high clustering
        of real semantic overlay networks (0.54 for the SRS biology schemas,
        §3.2.1); this lets generated topologies be checked against that.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self._peers)
        graph.add_edges_from(
            (m.source, m.target) for m in self._mappings.values()
        )
        if graph.number_of_nodes() == 0:
            return 0.0
        return float(nx.average_clustering(graph))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return (
            f"PDMSNetwork({self.name!r}, {kind}, peers={len(self._peers)}, "
            f"mappings={len(self._mappings)})"
        )
