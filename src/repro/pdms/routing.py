"""Quality-aware query routing.

The paper's per-hop forwarding rule (§2): a query is pushed through a
mapping only when, for *every* attribute the query references, the
probability that the mapping preserves that attribute exceeds the
per-attribute semantic threshold θ.  With no quality information every
probability defaults to 1.0, which degenerates to standard PDMS flooding —
that is the baseline the introductory example compares against.

The router is deliberately independent of the inference machinery: it
receives the per-(mapping, attribute) probabilities through a
``QualityOracle`` callable, which in practice is
:meth:`repro.core.quality.MappingQualityAssessor.probability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..exceptions import RoutingError, UnknownPeerError
from ..mapping.mapping import Mapping
from ..schema.instances import Record
from .network import PDMSNetwork
from .query import OperationKind, Query
from .reformulation import reformulate
from .trace import HopRecord, PeerAnswer, QueryTrace

__all__ = ["QualityOracle", "RoutingPolicy", "QueryRouter", "execute_locally"]

#: Signature of the quality oracle: (mapping, attribute) -> P(attribute preserved).
QualityOracle = Callable[[Mapping, str], float]


def _default_oracle(mapping: Mapping, attribute: str) -> float:
    """Quality oracle of a standard, quality-unaware PDMS: trust everything."""
    return 1.0


@dataclass(frozen=True)
class RoutingPolicy:
    """Forwarding policy parameters.

    Parameters
    ----------
    default_threshold:
        Semantic threshold θ applied to attributes without a specific entry
        in ``attribute_thresholds``.
    attribute_thresholds:
        Per-attribute thresholds θ_ai (paper §2).
    ttl:
        Maximum number of mapping hops a query may travel.
    forward_on_partial:
        When ``False`` (paper default) a mapping that cannot translate some
        query attribute blocks forwarding entirely; when ``True`` the query
        is forwarded with the translatable subset.
    """

    default_threshold: float = 0.5
    attribute_thresholds: TMapping[str, float] = field(default_factory=dict)
    ttl: int = 10
    forward_on_partial: bool = False

    def threshold_for(self, attribute: str) -> float:
        return float(self.attribute_thresholds.get(attribute, self.default_threshold))


def execute_locally(query: Query, network: PDMSNetwork, peer_name: str) -> Tuple[Record, ...]:
    """Evaluate ``query`` against one peer's local store.

    Selections are applied conjunctively, then projections; a query with no
    projection returns the full selected records.
    """
    peer = network.peer(peer_name)
    candidates = list(peer.store.scan())
    for operation in query.operations:
        if operation.kind is not OperationKind.SELECTION:
            continue
        if not peer.schema.has_attribute(operation.attribute):
            return ()
        candidates = [
            record
            for record in candidates
            if record.get(operation.attribute) is not None
            and operation.predicate(record.get(operation.attribute))
        ]
    projected_attributes = [
        op.attribute
        for op in query.operations
        if op.kind is OperationKind.PROJECTION and peer.schema.has_attribute(op.attribute)
    ]
    if projected_attributes:
        return tuple(record.project(projected_attributes) for record in candidates)
    return tuple(candidates)


class QueryRouter:
    """Routes queries through the PDMS under a quality-aware policy."""

    def __init__(
        self,
        network: PDMSNetwork,
        policy: Optional[RoutingPolicy] = None,
        quality_oracle: Optional[QualityOracle] = None,
    ) -> None:
        self.network = network
        self.policy = policy or RoutingPolicy()
        self.quality_oracle = quality_oracle or _default_oracle

    # -- forwarding decision ---------------------------------------------------------

    def forwarding_decision(self, query: Query, mapping: Mapping) -> Tuple[bool, str, Dict[str, float]]:
        """Decide whether ``query`` may be forwarded through ``mapping``.

        Returns ``(forward?, reason, per-attribute probabilities)``.
        """
        probabilities: Dict[str, float] = {}
        for attribute in query.attributes:
            if not mapping.maps_attribute(attribute):
                probabilities[attribute] = 0.0
                if not self.policy.forward_on_partial:
                    return (
                        False,
                        f"attribute {attribute!r} has no correspondence",
                        probabilities,
                    )
                continue
            probability = float(self.quality_oracle(mapping, attribute))
            probabilities[attribute] = probability
            if probability <= self.policy.threshold_for(attribute):
                return (
                    False,
                    f"P({attribute} preserved)={probability:.2f} <= "
                    f"θ={self.policy.threshold_for(attribute):.2f}",
                    probabilities,
                )
        return True, "all attributes above threshold", probabilities

    # -- routing ------------------------------------------------------------------------

    def route(self, query: Query, origin: Optional[str] = None) -> QueryTrace:
        """Resolve ``query`` starting at ``origin`` (defaults to its schema).

        The query floods breadth-first through mappings that pass the
        forwarding decision, each peer being visited at most once, up to the
        policy's TTL.  Every visited peer contributes its local answer.
        """
        origin = origin or query.schema_name
        if not self.network.has_peer(origin):
            raise UnknownPeerError(f"unknown origin peer {origin!r}")
        if query.schema_name != self.network.peer(origin).schema.name and not self.network.has_peer(
            query.schema_name
        ):
            raise RoutingError(
                f"query schema {query.schema_name!r} does not match origin "
                f"{origin!r}"
            )

        trace = QueryTrace(query_id=query.query_id, origin=origin)
        visited: set[str] = set()
        # Breadth-first frontier of (peer, query-as-seen-by-that-peer, depth).
        frontier: List[Tuple[str, Query, int]] = [(origin, query, 0)]
        while frontier:
            peer_name, local_query, depth = frontier.pop(0)
            if peer_name in visited:
                continue
            visited.add(peer_name)
            trace.record_visit(peer_name)
            records = execute_locally(local_query, self.network, peer_name)
            trace.record_answer(
                PeerAnswer(peer_name=peer_name, records=records, hops_from_origin=depth)
            )
            if depth >= self.policy.ttl:
                continue
            for mapping in self.network.peer(peer_name).outgoing_mappings:
                if mapping.target in visited:
                    continue
                forward, reason, probabilities = self.forwarding_decision(
                    local_query, mapping
                )
                trace.record_hop(
                    HopRecord(
                        mapping_name=mapping.name,
                        source=peer_name,
                        target=mapping.target,
                        forwarded=forward,
                        reason=reason,
                        attribute_probabilities=probabilities,
                    )
                )
                if not forward:
                    continue
                result = reformulate(local_query, mapping)
                if result.query is None:
                    continue
                frontier.append((mapping.target, result.query, depth + 1))
        return trace
