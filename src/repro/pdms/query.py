"""Queries: selections and projections over attributes.

The paper abstracts queries to "generic selection / projection operations
on attributes" (§2).  A :class:`Query` therefore carries a set of
:class:`Operation` instances, each naming one attribute (optionally with a
predicate for selections).  Reformulation through a mapping rewrites the
attribute names; an operation whose attribute has no image under the mapping
is dropped (and, per the paper, the mapping's correctness for that attribute
is considered void).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import QueryError

__all__ = ["OperationKind", "Operation", "Query", "substring_predicate"]


class OperationKind(str, Enum):
    """Kind of a query operation."""

    PROJECTION = "projection"
    SELECTION = "selection"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """A single selection or projection on one attribute.

    Selections carry a ``predicate`` (callable on a value) plus a
    human-readable ``predicate_description`` so that reformulated queries
    remain printable; projections carry neither.
    """

    kind: OperationKind
    attribute: str
    predicate: Optional[Callable[[Any], bool]] = None
    predicate_description: str = ""

    def __post_init__(self) -> None:
        if not self.attribute:
            raise QueryError("operation attribute must be non-empty")
        if self.kind is OperationKind.SELECTION and self.predicate is None:
            raise QueryError("selection operations require a predicate")
        if self.kind is OperationKind.PROJECTION and self.predicate is not None:
            raise QueryError("projection operations must not carry a predicate")

    def renamed(self, attribute: str) -> "Operation":
        """Copy of the operation over a different attribute name."""
        return replace(self, attribute=attribute)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is OperationKind.PROJECTION:
            return f"π({self.attribute})"
        return f"σ({self.attribute} {self.predicate_description or '<predicate>'})"


def substring_predicate(needle: str) -> Callable[[Any], bool]:
    """Case-insensitive substring predicate, mirroring XQuery ``LIKE "%x%"``."""
    lowered = needle.lower()

    def predicate(value: Any) -> bool:
        return lowered in str(value).lower()

    return predicate


_query_counter = itertools.count(1)


@dataclass(frozen=True)
class Query:
    """A query posed against the schema of one peer.

    Parameters
    ----------
    schema_name:
        Schema (peer) the query is expressed against.
    operations:
        Selection / projection operations making up the query.
    query_id:
        Unique identifier; auto-assigned when omitted.  Reformulated copies
        of a query keep the same id so that traces can be correlated.
    """

    schema_name: str
    operations: Tuple[Operation, ...]
    query_id: int = field(default_factory=lambda: next(_query_counter))

    def __post_init__(self) -> None:
        if not self.schema_name:
            raise QueryError("query schema_name must be non-empty")
        if not self.operations:
            raise QueryError("a query needs at least one operation")
        object.__setattr__(self, "operations", tuple(self.operations))

    # -- introspection -------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Distinct attributes referenced by the query, in first-use order."""
        seen: Dict[str, None] = {}
        for operation in self.operations:
            seen.setdefault(operation.attribute, None)
        return tuple(seen)

    @property
    def projections(self) -> Tuple[Operation, ...]:
        return tuple(
            op for op in self.operations if op.kind is OperationKind.PROJECTION
        )

    @property
    def selections(self) -> Tuple[Operation, ...]:
        return tuple(
            op for op in self.operations if op.kind is OperationKind.SELECTION
        )

    # -- builders ---------------------------------------------------------------------

    @classmethod
    def select_project(
        cls,
        schema_name: str,
        project: Sequence[str],
        where: Optional[Dict[str, Callable[[Any], bool]]] = None,
        where_descriptions: Optional[Dict[str, str]] = None,
    ) -> "Query":
        """Convenience builder for the common SELECT/WHERE shape.

        ``project`` lists projected attributes; ``where`` maps attribute
        names to predicates.
        """
        operations: List[Operation] = [
            Operation(OperationKind.PROJECTION, attribute) for attribute in project
        ]
        descriptions = where_descriptions or {}
        for attribute, predicate in (where or {}).items():
            operations.append(
                Operation(
                    OperationKind.SELECTION,
                    attribute,
                    predicate=predicate,
                    predicate_description=descriptions.get(attribute, ""),
                )
            )
        return cls(schema_name=schema_name, operations=tuple(operations))

    def with_operations(
        self, operations: Sequence[Operation], schema_name: Optional[str] = None
    ) -> "Query":
        """Copy of the query with different operations (same query id)."""
        return Query(
            schema_name=schema_name or self.schema_name,
            operations=tuple(operations),
            query_id=self.query_id,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(str(op) for op in self.operations)
        return f"Q{self.query_id}@{self.schema_name}[{ops}]"
