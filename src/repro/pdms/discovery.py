"""The discovery core: probe plans × executors × fault policy.

Cycle / parallel-path discovery is the probe phase of §3.2.1 — peers flood
their neighbourhood with TTL-bounded probe messages.  The recursive walkers
living in :mod:`repro.pdms.probing` enumerate one origin's view at a time;
this module is the layer above them, mirroring what
:mod:`repro.factorgraph.plan` did for the sweep engines one level down.
Every probe is described, run and hardened along three independent axes:

**Plan** — *what* to discover.  A :class:`ProbePlan` IR: an immutable,
picklable :class:`TopologySnapshot` of the network plus a *frontier* of
per-origin :class:`ProbeWorkUnit`\\ s (cycles-through,
parallel-paths-from/-through and full-neighbourhood probes), with the TTL
and the parallel-path flag stated once for the whole plan.  Both structure
caches of :mod:`repro.core.analysis` lower their full probes *and* their
mutation-log incremental refreshes onto this frontier
(:func:`replay_structure_log` is the shared replay that used to be
duplicated per cache).

**Executor** — *how* to run it.  A :class:`DiscoveryExecutor` protocol with
three implementations: :class:`SerialDiscoveryExecutor` (in-process, result
order identical to the historical recursive sweeps),
:class:`ProcessPoolDiscoveryExecutor` (origin-sharded fan-out over a
``multiprocessing`` pool — origins partition cleanly, every structure is
discoverable from exactly the origins its work unit names — with results
streamed back as compact, checksummed name tuples and rehydrated against
the parent's snapshot) and the chaos-hardened
:class:`~repro.reliability.ResilientDiscoveryExecutor` layered on top of
the process fan-out.  Whatever the executor, outcomes are reassembled by
work-unit position and merged canonically (:func:`merge_structures` via
:meth:`ProbeRun.merged`): deduplication by the structures'
rotation/order-invariant canonical keys makes the merged structure set
deterministic and independent of worker scheduling — serial, sharded and
chaos-ridden discovery produce identical structure lists.

**Fault policy** — *what may go wrong, and what happens then*.  Workers
can crash, hang, straggle or return corrupted payloads; the policy axis
decides how the parent reacts.  The baseline
:class:`ProcessPoolDiscoveryExecutor` is fail-fast but never silent: every
shard carries a per-shard deadline (:func:`resolve_shard_timeout`, default
:data:`repro.constants.DEFAULT_SHARD_TIMEOUT`) turning a wedged worker
into a descriptive :class:`~repro.exceptions.DiscoveryTimeoutError`, and
every wire payload carries a :func:`payload_checksum` so corruption is
detected before — never merged after — rehydration.  The resilient
executor upgrades detection to recovery: bounded retry with seeded
backoff, quarantine, per-shard serial fallback.  Deterministic chaos
(seeded :class:`~repro.reliability.FaultPlan` schedules, installed into
workers through the same :func:`_install_worker_plan` pool initializer
that ships the plan) exercises all of it reproducibly.

The executor and fault policy are selected per consumer
(``probe_executor=``, ``fault_plan=``, ``shard_timeout=``), falling back
to the ``REPRO_PROBE_EXECUTOR`` / ``REPRO_FAULT_PLAN`` /
``REPRO_SHARD_TIMEOUT`` environment variables; all resolution helpers
(:func:`resolve_discovery_executor`, :func:`resolve_probe_workers`,
:func:`resolve_shard_timeout`) validate their inputs eagerly and name the
offending knob in their errors.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import zlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..constants import (
    DEFAULT_PROBE_EXECUTOR,
    DEFAULT_PROBE_WORKERS,
    DEFAULT_SHARD_TIMEOUT,
    DEFAULT_TTL,
    PROBE_EXECUTOR_ENV,
    PROBE_EXECUTOR_PROCESS,
    PROBE_EXECUTOR_RESILIENT,
    PROBE_EXECUTOR_SERIAL,
    PROBE_WORKERS_ENV,
    SHARD_TIMEOUT_ENV,
    read_env,
)
from ..exceptions import DiscoveryTimeoutError, PDMSError, UnknownPeerError
from ..mapping.mapping import Mapping
from .probing import (
    MappingCycle,
    ParallelPaths,
    find_cycles_through,
    find_parallel_paths_from,
    find_parallel_paths_through,
    validate_ttl,
)

__all__ = [
    "TopologySnapshot",
    "ProbeWorkUnit",
    "ProbePlan",
    "ProbeOutcome",
    "ProbeRun",
    "CYCLES_THROUGH",
    "PATHS_FROM",
    "PATHS_THROUGH",
    "NEIGHBORHOOD",
    "plan_full_probe",
    "plan_neighborhood_probe",
    "plan_mapping_delta",
    "execute_work_unit",
    "merge_structures",
    "replay_structure_log",
    "DiscoveryExecutor",
    "SerialDiscoveryExecutor",
    "ProcessPoolDiscoveryExecutor",
    "payload_checksum",
    "resolve_discovery_executor",
    "resolve_probe_workers",
    "resolve_shard_timeout",
]


# ---------------------------------------------------------------------------
# topology snapshot
# ---------------------------------------------------------------------------


class _SnapshotPeer:
    """One peer's probe-relevant view inside a snapshot: name + out-edges."""

    __slots__ = ("name", "outgoing_mappings")

    def __init__(self, name: str, outgoing_mappings: Tuple[Mapping, ...]) -> None:
        self.name = name
        self.outgoing_mappings = outgoing_mappings


class TopologySnapshot:
    """Immutable, picklable topology view a probe plan is executed against.

    Captures exactly what the recursive walkers of
    :mod:`repro.pdms.probing` consult — the peer names and the mapping
    edges, in network insertion order — and exposes the same duck-typed
    surface (:meth:`peer`, :meth:`mapping`, :attr:`mappings`,
    :meth:`has_peer`), so every walker runs unchanged against a live
    :class:`~repro.pdms.network.PDMSNetwork` or a snapshot of it.  The
    derived adjacency indexes are rebuilt lazily after unpickling instead of
    being shipped to workers.
    """

    __slots__ = (
        "name",
        "version",
        "directed",
        "peer_names",
        "mappings",
        "_peers",
        "_by_name",
    )

    def __init__(
        self,
        peer_names: Sequence[str],
        mappings: Sequence[Mapping],
        *,
        name: str = "pdms",
        version: int = 0,
        directed: bool = True,
    ) -> None:
        self.name = name
        self.version = version
        self.directed = directed
        self.peer_names = tuple(peer_names)
        self.mappings = tuple(mappings)
        self._peers: Optional[Dict[str, _SnapshotPeer]] = None
        self._by_name: Optional[Dict[str, Mapping]] = None

    @classmethod
    def of(cls, source) -> "TopologySnapshot":
        """Snapshot a :class:`~repro.pdms.network.PDMSNetwork` (idempotent on
        snapshots: an existing snapshot is returned as-is)."""
        if isinstance(source, cls):
            return source
        return cls(
            source.peer_names,
            source.mappings,
            name=source.name,
            version=source.version,
            directed=source.directed,
        )

    # -- pickling: core fields only, adjacency rebuilt lazily ----------------

    def __getstate__(self):
        return (self.name, self.version, self.directed, self.peer_names, self.mappings)

    def __setstate__(self, state) -> None:
        self.name, self.version, self.directed, self.peer_names, self.mappings = state
        self._peers = None
        self._by_name = None

    # -- probe surface (mirrors PDMSNetwork) ---------------------------------

    def _index(self) -> Dict[str, _SnapshotPeer]:
        if self._peers is None:
            outgoing: Dict[str, List[Mapping]] = {name: [] for name in self.peer_names}
            by_name: Dict[str, Mapping] = {}
            for mapping in self.mappings:
                by_name[mapping.name] = mapping
                outgoing[mapping.source].append(mapping)
            self._peers = {
                name: _SnapshotPeer(name, tuple(edges))
                for name, edges in outgoing.items()
            }
            self._by_name = by_name
        return self._peers

    def peer(self, name: str) -> _SnapshotPeer:
        try:
            return self._index()[name]
        except KeyError:
            raise UnknownPeerError(f"unknown peer {name!r} in snapshot") from None

    def has_peer(self, name: str) -> bool:
        return name in self._index()

    def mapping(self, name: str) -> Mapping:
        self._index()
        try:
            return self._by_name[name]
        except KeyError:
            raise PDMSError(f"unknown mapping {name!r} in snapshot") from None

    def has_mapping(self, name: str) -> bool:
        self._index()
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.peer_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TopologySnapshot({self.name!r}, version={self.version}, "
            f"peers={len(self.peer_names)}, mappings={len(self.mappings)})"
        )


# ---------------------------------------------------------------------------
# work units and plans
# ---------------------------------------------------------------------------

#: Simple directed cycles through an origin peer (``subject`` = peer name).
CYCLES_THROUGH = "cycles-through"

#: Edge-disjoint parallel-path pairs departing from an origin peer.
PATHS_FROM = "paths-from"

#: Parallel-path pairs routing one branch through a mapping (``subject`` =
#: mapping name) — the incremental complement used after ``add_mapping``.
PATHS_THROUGH = "paths-through"

#: Full neighbourhood probe of one origin: its cycles and (when the plan
#: includes them) its departing parallel paths, in one unit.
NEIGHBORHOOD = "neighborhood"

_UNIT_KINDS = frozenset({CYCLES_THROUGH, PATHS_FROM, PATHS_THROUGH, NEIGHBORHOOD})


@dataclass(frozen=True)
class ProbeWorkUnit:
    """One origin-addressable piece of probe work.

    ``subject`` names the origin peer (or, for :data:`PATHS_THROUGH`, the
    mapping whose source peer anchors the unit).  ``via`` optionally
    restricts the unit's results to structures traversing that mapping —
    stated on the unit so the added-edge filter of incremental refreshes
    runs inside the worker instead of shipping discarded structures back.
    """

    kind: str
    subject: str
    via: str = ""


@dataclass(frozen=True)
class ProbePlan:
    """An immutable, picklable description of one discovery problem.

    The TTL and the parallel-path flag are stated once for the whole plan;
    executors and workers never re-derive them per unit.  Plans are
    self-contained (snapshot included), so any executor — in-process or a
    worker pool — produces identical outcomes from the same plan.
    """

    snapshot: TopologySnapshot
    work_units: Tuple[ProbeWorkUnit, ...]
    ttl: int
    include_parallel_paths: bool

    def origin_of(self, unit: ProbeWorkUnit) -> str:
        """The peer whose neighbourhood a unit probes (the sharding key)."""
        if unit.kind == PATHS_THROUGH:
            return self.snapshot.mapping(unit.subject).source
        return unit.subject


@dataclass(frozen=True)
class ProbeOutcome:
    """What one work unit discovered, tagged with its plan position."""

    index: int
    cycles: Tuple[MappingCycle, ...]
    parallel_paths: Tuple[ParallelPaths, ...]


def plan_full_probe(
    snapshot,
    ttl: int = DEFAULT_TTL,
    include_parallel_paths: bool = True,
) -> ProbePlan:
    """The global structure enumeration as a frontier: one cycles-through
    unit per peer, then one paths-from unit per peer (when enabled) — the
    unit order whose canonical merge reproduces the historical
    ``find_all_cycles`` / ``find_all_parallel_paths`` structure lists
    exactly, orientation and order included."""
    snapshot = TopologySnapshot.of(snapshot)
    validate_ttl(ttl)
    units = [ProbeWorkUnit(CYCLES_THROUGH, name) for name in snapshot.peer_names]
    if include_parallel_paths:
        units.extend(
            ProbeWorkUnit(PATHS_FROM, name) for name in snapshot.peer_names
        )
    return ProbePlan(snapshot, tuple(units), ttl, include_parallel_paths)


def plan_neighborhood_probe(
    snapshot,
    origins: Iterable[str],
    ttl: int = DEFAULT_TTL,
    include_parallel_paths: bool = True,
) -> ProbePlan:
    """Per-origin local views (§4.5): one neighbourhood unit per origin."""
    snapshot = TopologySnapshot.of(snapshot)
    validate_ttl(ttl)
    units = tuple(ProbeWorkUnit(NEIGHBORHOOD, origin) for origin in origins)
    for unit in units:
        snapshot.peer(unit.subject)  # raises UnknownPeerError eagerly
    return ProbePlan(snapshot, units, ttl, include_parallel_paths)


def plan_mapping_delta(
    snapshot,
    mapping_name: str,
    ttl: int = DEFAULT_TTL,
    include_parallel_paths: bool = True,
) -> ProbePlan:
    """The structures *through* a freshly added mapping — everything an
    incremental refresh must graft: the cycles containing it (enumerated
    from its source peer, ``via``-filtered in the worker) and, when parallel
    paths are enabled, the pairs routing a branch through it."""
    snapshot = TopologySnapshot.of(snapshot)
    validate_ttl(ttl)
    source = snapshot.mapping(mapping_name).source
    units = [ProbeWorkUnit(CYCLES_THROUGH, source, via=mapping_name)]
    if include_parallel_paths:
        units.append(ProbeWorkUnit(PATHS_THROUGH, mapping_name))
    return ProbePlan(snapshot, tuple(units), ttl, include_parallel_paths)


def execute_work_unit(plan: ProbePlan, index: int) -> ProbeOutcome:
    """Run one unit of a plan with the recursive walkers of
    :mod:`repro.pdms.probing` against the plan's snapshot."""
    unit = plan.work_units[index]
    snapshot, ttl = plan.snapshot, plan.ttl
    cycles: Tuple[MappingCycle, ...] = ()
    parallel_paths: Tuple[ParallelPaths, ...] = ()
    if unit.kind == CYCLES_THROUGH:
        cycles = find_cycles_through(snapshot, unit.subject, ttl=ttl)
    elif unit.kind == PATHS_FROM:
        if plan.include_parallel_paths:
            parallel_paths = find_parallel_paths_from(snapshot, unit.subject, ttl=ttl)
    elif unit.kind == PATHS_THROUGH:
        if plan.include_parallel_paths:
            parallel_paths = find_parallel_paths_through(
                snapshot, unit.subject, ttl=ttl
            )
    elif unit.kind == NEIGHBORHOOD:
        cycles = find_cycles_through(snapshot, unit.subject, ttl=ttl)
        if plan.include_parallel_paths:
            parallel_paths = find_parallel_paths_from(snapshot, unit.subject, ttl=ttl)
    else:
        raise PDMSError(f"unknown probe work unit kind {unit.kind!r}")
    if unit.via:
        cycles = tuple(c for c in cycles if unit.via in c.mapping_names)
        parallel_paths = tuple(
            p for p in parallel_paths if unit.via in p.mapping_names
        )
    return ProbeOutcome(index=index, cycles=cycles, parallel_paths=parallel_paths)


# ---------------------------------------------------------------------------
# canonical merge
# ---------------------------------------------------------------------------


def merge_structures(
    outcomes: Iterable[Optional[ProbeOutcome]],
) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
    """Merge per-unit outcomes into one deduplicated structure set.

    Outcomes are consumed in plan position (callers reassemble streamed
    results by :attr:`ProbeOutcome.index` first) and deduplicated by the
    structures' canonical keys — rotation-invariant for cycles,
    branch-order-invariant for parallel paths — keeping the first
    discovery's orientation.  The merged lists therefore depend only on the
    plan, never on which worker finished first, and coincide with the
    historical sequential enumeration for the plans
    :func:`plan_full_probe` builds.
    """
    cycles: List[MappingCycle] = []
    parallel_paths: List[ParallelPaths] = []
    seen_cycles: set = set()
    seen_paths: set = set()
    for outcome in outcomes:
        if outcome is None:
            continue
        for cycle in outcome.cycles:
            key = cycle.canonical_key()
            if key not in seen_cycles:
                seen_cycles.add(key)
                cycles.append(cycle)
        for pair in outcome.parallel_paths:
            key = pair.canonical_key()
            if key not in seen_paths:
                seen_paths.add(key)
                parallel_paths.append(pair)
    return tuple(cycles), tuple(parallel_paths)


@dataclass(frozen=True)
class ProbeRun:
    """A plan's executed outcomes plus how they were produced."""

    plan: ProbePlan
    outcomes: Tuple[ProbeOutcome, ...]
    sharded: bool
    workers: int

    def merged(self) -> Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]:
        return merge_structures(self.outcomes)


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


@runtime_checkable
class DiscoveryExecutor(Protocol):
    """Anything that can run a :class:`ProbePlan` to a :class:`ProbeRun`."""

    name: str

    def run(self, plan: ProbePlan) -> ProbeRun:  # pragma: no cover - protocol
        ...


class SerialDiscoveryExecutor:
    """In-process execution, one unit after the other.

    Result-identical to the historical recursive walkers: the units run in
    plan order on the calling thread, so even discovery *order* (not just
    the canonical sets) matches the pre-frontier sequential code.
    """

    name = PROBE_EXECUTOR_SERIAL

    def run(self, plan: ProbePlan) -> ProbeRun:
        outcomes = tuple(
            execute_work_unit(plan, index) for index in range(len(plan.work_units))
        )
        return ProbeRun(plan=plan, outcomes=outcomes, sharded=False, workers=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialDiscoveryExecutor()"


# -- worker-side machinery of the process pool --------------------------------

#: Plan installed once per worker by the pool initializer, so shards only
#: ship unit indices instead of re-pickling the snapshot per task.
_WORKER_PLAN: Optional[ProbePlan] = None

#: Chaos injector installed alongside the plan when the run carries a
#: :class:`~repro.reliability.FaultPlan`; ``None`` in production runs.
_WORKER_INJECTOR: Optional[object] = None


def _install_worker_plan(plan: ProbePlan, fault_plan: object = None) -> None:
    """Pool initializer: install the plan (and, under chaos, the injector).

    This is the one hook through which anything reaches a discovery worker
    — the probe plan always, and a seeded
    :class:`~repro.reliability.FaultPlan` when the parent executor runs a
    chaos schedule."""
    global _WORKER_PLAN, _WORKER_INJECTOR
    _WORKER_PLAN = plan
    if fault_plan is None:
        _WORKER_INJECTOR = None
    else:
        from ..reliability import FaultInjector

        _WORKER_INJECTOR = FaultInjector(fault_plan)


def _wire_cycle(cycle: MappingCycle) -> Tuple[str, Tuple[str, ...]]:
    return (cycle.origin, cycle.mapping_names)


def _wire_pair(pair: ParallelPaths) -> Tuple[str, str, Tuple[str, ...], Tuple[str, ...]]:
    return (
        pair.source,
        pair.target,
        tuple(m.name for m in pair.first),
        tuple(m.name for m in pair.second),
    )


def _execute_shard(indices: Sequence[int]):
    """Run one shard of unit indices; return *wire* outcomes.

    Structures cross the process boundary as mapping-name tuples, not as
    full :class:`~repro.mapping.mapping.Mapping` objects — a large probe
    returns tens of thousands of structures, and shipping the (shared)
    mapping objects per structure would make result pickling dominate the
    fan-out.  The parent rehydrates against its own snapshot, so merged
    structures reference the parent's mapping instances exactly as serial
    discovery would.
    """
    plan = _WORKER_PLAN
    assert plan is not None, "worker pool initialized without a probe plan"
    wired = []
    for index in indices:
        outcome = execute_work_unit(plan, index)
        wired.append(
            (
                index,
                tuple(_wire_cycle(c) for c in outcome.cycles),
                tuple(_wire_pair(p) for p in outcome.parallel_paths),
            )
        )
    return wired


def payload_checksum(wired) -> int:
    """CRC32 over a shard's wire payload (nested tuples of names/indices).

    The payload is pure strings, ints and tuples, whose ``repr`` is a
    deterministic serialization — cheap enough to compute on both sides of
    the process boundary, strong enough that a corrupted shard result is
    detected and re-executed instead of merged."""
    return zlib.crc32(repr(wired).encode("utf-8"))


def _execute_shard_task(task):
    """Run one ``(shard, attempt, indices)`` task; return a checksummed result.

    The returned tuple is ``(shard, attempt, fired, wired, checksum)``:
    ``fired`` names the injected fault that hit this attempt (``None``
    outside chaos runs), and ``checksum`` is :func:`payload_checksum` over
    the *authentic* payload — computed before an injected ``corrupt`` fault
    mangles the wire tuples, so the parent's integrity check observes the
    mismatch exactly as it would observe real corruption.
    """
    shard, attempt, indices = task
    fired = None
    if _WORKER_INJECTOR is not None:
        # A "crash" raises out of the worker here; "hang"/"delay" sleep.
        fired = _WORKER_INJECTOR.fire(shard, attempt)
    wired = _execute_shard(indices)
    checksum = payload_checksum(wired)
    if fired == "corrupt":
        from ..reliability import corrupt_payload

        wired = corrupt_payload(wired)
    return shard, attempt, fired, wired, checksum


def _rehydrate_outcome(snapshot: TopologySnapshot, wire) -> ProbeOutcome:
    index, wire_cycles, wire_pairs = wire
    cycles = tuple(
        MappingCycle(
            origin=origin,
            mappings=tuple(snapshot.mapping(name) for name in names),
        )
        for origin, names in wire_cycles
    )
    parallel_paths = tuple(
        ParallelPaths(
            source=source,
            target=target,
            first=tuple(snapshot.mapping(name) for name in first),
            second=tuple(snapshot.mapping(name) for name in second),
        )
        for source, target, first, second in wire_pairs
    )
    return ProbeOutcome(index=index, cycles=cycles, parallel_paths=parallel_paths)


def resolve_probe_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit argument, then
    ``REPRO_PROBE_WORKERS``, then the machine's CPU count.

    The environment variable is re-read here (not only captured at import
    in :data:`~repro.constants.DEFAULT_PROBE_WORKERS`) so a malformed value
    surfaces as one clear error at resolution time, naming the variable and
    the accepted values, instead of a raw ``ValueError`` at import."""
    if workers is not None:
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise ValueError(
                f"probe workers must be an integer >= 1, got {workers!r}"
            )
        if workers < 1:
            raise ValueError(f"probe workers must be >= 1, got {workers}")
        return workers
    raw = read_env(PROBE_WORKERS_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{PROBE_WORKERS_ENV} must be an integer worker count "
                f"(unset, empty or <= 0 meaning 'decide at runtime'), "
                f"got {raw!r}"
            ) from None
        if value > 0:
            return value
        return os.cpu_count() or 1
    if DEFAULT_PROBE_WORKERS is not None:
        return DEFAULT_PROBE_WORKERS
    return os.cpu_count() or 1


def resolve_shard_timeout(timeout: object = None) -> float:
    """Resolve a per-shard deadline (seconds): explicit argument, then
    ``REPRO_SHARD_TIMEOUT``, then
    :data:`~repro.constants.DEFAULT_SHARD_TIMEOUT`.

    Pass ``float("inf")`` to disable the deadline entirely; zero and
    negative values are rejected (they would time every shard out
    immediately)."""
    if timeout is not None:
        try:
            value = float(timeout)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ValueError(
                f"shard timeout must be a positive number of seconds, "
                f"got {timeout!r}"
            ) from None
        if not value > 0:
            raise ValueError(
                f"shard timeout must be > 0 seconds, got {timeout!r}"
            )
        return value
    raw = read_env(SHARD_TIMEOUT_ENV)
    if raw:
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{SHARD_TIMEOUT_ENV} must be a positive number of "
                f"seconds, got {raw!r}"
            ) from None
        if not value > 0:
            raise ValueError(
                f"{SHARD_TIMEOUT_ENV} must be > 0 seconds, got {raw!r}"
            )
        return value
    return DEFAULT_SHARD_TIMEOUT if DEFAULT_SHARD_TIMEOUT else float("inf")


#: How often the parent polls outstanding shard results for readiness or
#: deadline expiry — short enough that healthy sub-second probes are not
#: noticeably delayed, long enough not to busy-spin.
_POLL_INTERVAL_SECONDS = 0.005


class ProcessPoolDiscoveryExecutor:
    """Origin-sharded fan-out of a probe plan over a ``multiprocessing`` pool.

    The plan's units are grouped by origin peer (one origin's units never
    split across workers — the per-origin caches key on exactly that
    partition) and the origin groups are dealt round-robin into a few
    shards per worker.  Each worker receives the plan once through the pool
    initializer, executes its shards with the same per-unit walkers the
    serial executor uses, and streams compact, checksummed results back;
    the parent verifies each payload's :func:`payload_checksum` and
    reassembles outcomes by unit index, so the outcome tuple — and hence
    the canonical merge — is bit-identical to serial discovery regardless
    of scheduling.

    Fault policy: fail fast, never hang, never merge garbage.  Every shard
    carries a per-shard deadline (``shard_timeout``, default
    :data:`~repro.constants.DEFAULT_SHARD_TIMEOUT` via
    :func:`resolve_shard_timeout`) — a wedged worker raises
    :class:`~repro.exceptions.DiscoveryTimeoutError` instead of blocking
    the parent forever — and a corrupted payload raises
    :class:`~repro.exceptions.PDMSError` before rehydration.  For retry,
    quarantine and graceful degradation, use the
    :class:`~repro.reliability.ResilientDiscoveryExecutor` subclass.

    Plans smaller than ``min_units`` (or a 1-worker pool) run inline: the
    fork/pickle overhead would dwarf the work, and incremental-refresh delta
    plans are routinely 1–2 units.
    """

    name = PROBE_EXECUTOR_PROCESS

    #: Shards dealt per worker — small enough to keep shard payloads chunky,
    #: large enough that an unlucky hub-heavy shard cannot serialize the run.
    SHARDS_PER_WORKER = 4

    def __init__(
        self,
        workers: Optional[int] = None,
        min_units: int = 4,
        shard_timeout: object = None,
        fault_plan: object = None,
    ) -> None:
        self.workers = resolve_probe_workers(workers)
        self.min_units = min_units
        self.shard_timeout = resolve_shard_timeout(shard_timeout)
        #: Optional :class:`~repro.reliability.FaultPlan` installed into the
        #: workers — deterministic chaos for tests and drills.  The base
        #: executor only *detects* the injected faults (crash propagates,
        #: hang times out, corruption fails the checksum); recovery is the
        #: resilient subclass's job.
        self.fault_plan = fault_plan
        self._serial = SerialDiscoveryExecutor()

    def _shards(self, plan: ProbePlan) -> List[List[int]]:
        groups: Dict[str, List[int]] = {}
        for index, unit in enumerate(plan.work_units):
            groups.setdefault(plan.origin_of(unit), []).append(index)
        shard_count = min(len(groups), self.workers * self.SHARDS_PER_WORKER)
        shards: List[List[int]] = [[] for _ in range(shard_count)]
        for position, indices in enumerate(groups.values()):
            shards[position % shard_count].extend(indices)
        return shards

    def run(self, plan: ProbePlan) -> ProbeRun:
        if self.workers < 2 or len(plan.work_units) < self.min_units:
            run = self._serial.run(plan)
            return ProbeRun(
                plan=plan, outcomes=run.outcomes, sharded=False, workers=1
            )
        shards = self._shards(plan)
        outcomes: List[Optional[ProbeOutcome]] = [None] * len(plan.work_units)
        with multiprocessing.get_context().Pool(
            processes=min(self.workers, len(shards)),
            initializer=_install_worker_plan,
            initargs=(plan, self.fault_plan),
        ) as pool:
            pending: Dict[int, Tuple[object, float]] = {}
            for shard, indices in enumerate(shards):
                handle = pool.apply_async(
                    _execute_shard_task, ((shard, 0, tuple(indices)),)
                )
                pending[shard] = (handle, time.monotonic() + self.shard_timeout)
            while pending:
                progressed = False
                for shard in list(pending):
                    handle, deadline = pending[shard]
                    if handle.ready():  # type: ignore[attr-defined]
                        del pending[shard]
                        progressed = True
                        # Re-raises the worker's exception (e.g. a crash).
                        _, _, _, wired, checksum = handle.get()  # type: ignore[attr-defined]
                        if payload_checksum(wired) != checksum:
                            raise PDMSError(
                                f"corrupted wire payload from probe shard "
                                f"{shard}: checksum mismatch; the shard "
                                f"result was discarded, not merged"
                            )
                        for wire in wired:
                            outcome = _rehydrate_outcome(plan.snapshot, wire)
                            outcomes[outcome.index] = outcome
                    elif time.monotonic() > deadline:
                        raise DiscoveryTimeoutError(
                            f"probe shard {shard} "
                            f"({len(shards[shard])} work units) exceeded its "
                            f"{self.shard_timeout:.1f}s deadline; the worker "
                            f"is presumed wedged (raise {SHARD_TIMEOUT_ENV} "
                            f"for slow hosts, or use the "
                            f"{PROBE_EXECUTOR_RESILIENT!r} probe executor "
                            f"for retry + serial fallback)"
                        )
                if pending and not progressed:
                    time.sleep(_POLL_INTERVAL_SECONDS)
        missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
        if missing:  # pragma: no cover - defensive: a shard vanished
            raise PDMSError(f"probe work units {missing!r} returned no outcome")
        return ProbeRun(
            plan=plan,
            outcomes=tuple(outcomes),  # type: ignore[arg-type]
            sharded=True,
            workers=min(self.workers, len(shards)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessPoolDiscoveryExecutor(workers={self.workers})"


def resolve_discovery_executor(
    executor: object = None,
    workers: Optional[int] = None,
    *,
    shard_timeout: object = None,
    fault_plan: object = None,
) -> DiscoveryExecutor:
    """Resolve a ``probe_executor=`` specification to an executor object.

    ``None`` selects the configured default
    (:data:`repro.constants.DEFAULT_PROBE_EXECUTOR`, overridable through the
    ``REPRO_PROBE_EXECUTOR`` environment variable, re-read here so the
    error for a bad value names the variable); strings name the built-in
    executors (``"serial"`` / ``"process"`` / ``"resilient"``); anything
    with a ``run`` method passes through unchanged (``workers``,
    ``shard_timeout`` and ``fault_plan`` are ignored for it).

    ``fault_plan`` — a :class:`~repro.reliability.FaultPlan`, a spec string,
    or ``None`` to consult ``REPRO_FAULT_PLAN`` — arms deterministic chaos.
    A faulted *process* fan-out always resolves to the resilient executor:
    injected faults must be recovered from, never allowed to abort a probe
    or poison a merge.  ``"serial"`` ignores the fault plan (there is no
    fan-out to inject into).
    """
    from_env = False
    if executor is None:
        executor = read_env(PROBE_EXECUTOR_ENV) or DEFAULT_PROBE_EXECUTOR
        from_env = True
    if isinstance(executor, str):
        if executor in (PROBE_EXECUTOR_PROCESS, PROBE_EXECUTOR_RESILIENT):
            from ..reliability import ResilientDiscoveryExecutor, fault_plan_or_env

            fault_plan = fault_plan_or_env(fault_plan)
            if executor == PROBE_EXECUTOR_RESILIENT or fault_plan is not None:
                return ResilientDiscoveryExecutor(
                    workers=workers,
                    shard_timeout=shard_timeout,
                    fault_plan=fault_plan,
                )
            return ProcessPoolDiscoveryExecutor(
                workers=workers, shard_timeout=shard_timeout
            )
        if executor == PROBE_EXECUTOR_SERIAL:
            return SerialDiscoveryExecutor()
        hint = (
            f" (from the {PROBE_EXECUTOR_ENV} environment variable)"
            if from_env
            else ""
        )
        raise ValueError(
            f"unknown probe executor {executor!r}{hint}; expected "
            f"{PROBE_EXECUTOR_SERIAL!r}, {PROBE_EXECUTOR_PROCESS!r}, "
            f"{PROBE_EXECUTOR_RESILIENT!r} or an executor object"
        )
    if isinstance(executor, DiscoveryExecutor):
        return executor
    raise ValueError(
        f"probe executor must be a name or expose run(plan), got {executor!r}"
    )


# ---------------------------------------------------------------------------
# shared incremental replay
# ---------------------------------------------------------------------------


def replay_structure_log(
    mutations: Sequence[Tuple],
    cycles: Sequence[MappingCycle],
    parallel_paths: Sequence[ParallelPaths],
    *,
    include_parallel_paths: bool,
    has_mapping: Callable[[str], bool],
    structures_through: Callable[
        [int, str], Tuple[Sequence[MappingCycle], Sequence[ParallelPaths]]
    ],
    adapt_cycle: Optional[Callable[[MappingCycle], Optional[MappingCycle]]] = None,
    adapt_path: Optional[Callable[[ParallelPaths], Optional[ParallelPaths]]] = None,
) -> Optional[Tuple[Tuple[MappingCycle, ...], Tuple[ParallelPaths, ...]]]:
    """Replay a network event log onto a cached structure set.

    This is the one incremental-refresh algorithm both structure caches
    lower to (they used to duplicate it).  ``mutations`` holds the typed
    entries of :meth:`~repro.pdms.network.PDMSNetwork.events_since` —
    ``(version, TopologyEvent)`` pairs — or, for older callers, the
    derived legacy ``(version, kind, subject)`` tuples; the two forms may
    not be mixed semantically but normalise to the same replay:

    * ``MappingRemoved`` filters the cached structures (exact: a structure
      stays valid iff all of its own mappings still exist);
    * ``MappingAdded`` grafts the structures *through* the new edge —
      enumerated by ``structures_through(entry_version, name)``, typically a
      :func:`plan_mapping_delta` run through the consumer's discovery
      executor — deduplicated against the survivors by canonical key.
      ``adapt_cycle`` / ``adapt_path`` localise each grafted structure to
      the consumer's view first (the per-origin cache rotates cycles to its
      origin and keeps only pairs departing from it); returning ``None``
      drops the structure;
    * ``PeerAdded`` / ``PeerRemoved`` (or an unknown event kind) abort:
      the caller must fall back to a full re-probe — peer churn changes
      the reachable neighbourhood itself, not just one edge.

    Returns the refreshed ``(cycles, parallel_paths)`` or ``None`` when the
    log cannot be replayed.  Mappings added and removed again later in the
    log are skipped (the later removal entry keeps the set consistent).
    """
    mutations = tuple(
        (entry[0], entry[1].kind, entry[1].subject)
        if len(entry) == 2
        else entry
        for entry in mutations
    )
    kinds = {kind for _, kind, _ in mutations}
    if not kinds <= {"add_mapping", "remove_mapping"}:
        return None
    live_cycles = list(cycles)
    live_paths = list(parallel_paths)
    # Canonical keys are only needed to dedupe grafts; remove-only logs (the
    # common case) never pay for the sets.
    seen: Optional[set] = None
    seen_paths: Optional[set] = None
    for version, kind, name in mutations:
        if kind == "remove_mapping":
            live_cycles = [c for c in live_cycles if name not in c.mapping_names]
            live_paths = [p for p in live_paths if name not in p.mapping_names]
            seen = None
            seen_paths = None
        else:  # add_mapping
            if not has_mapping(name):
                continue
            new_cycles, new_paths = structures_through(version, name)
            if seen is None:
                seen = {cycle.canonical_key() for cycle in live_cycles}
            for cycle in new_cycles:
                if adapt_cycle is not None:
                    adapted = adapt_cycle(cycle)
                    if adapted is None:
                        continue
                    cycle = adapted
                key = cycle.canonical_key()
                if key in seen:
                    continue
                seen.add(key)
                live_cycles.append(cycle)
            if include_parallel_paths:
                if seen_paths is None:
                    seen_paths = {pair.canonical_key() for pair in live_paths}
                for pair in new_paths:
                    if adapt_path is not None:
                        adapted_pair = adapt_path(pair)
                        if adapted_pair is None:
                            continue
                        pair = adapted_pair
                    key = pair.canonical_key()
                    if key in seen_paths:
                        continue
                    seen_paths.add(key)
                    live_paths.append(pair)
    return tuple(live_cycles), tuple(live_paths)
