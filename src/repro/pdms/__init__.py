"""PDMS substrate: peers, mapping networks, queries, reformulation, routing
and neighbourhood probing."""

from .peer import Peer
from .network import PDMSNetwork
from .query import Operation, OperationKind, Query, substring_predicate
from .reformulation import ReformulationResult, reformulate, reformulate_through_chain
from .routing import QueryRouter, RoutingPolicy, execute_locally
from .trace import HopRecord, PeerAnswer, QueryTrace
from .probing import (
    MappingCycle,
    ParallelPaths,
    ProbeResult,
    find_all_cycles,
    find_all_parallel_paths,
    find_cycles_through,
    find_parallel_paths_from,
    probe_neighborhood,
    validate_ttl,
)

__all__ = [
    "Peer",
    "PDMSNetwork",
    "Operation",
    "OperationKind",
    "Query",
    "substring_predicate",
    "ReformulationResult",
    "reformulate",
    "reformulate_through_chain",
    "QueryRouter",
    "RoutingPolicy",
    "execute_locally",
    "HopRecord",
    "PeerAnswer",
    "QueryTrace",
    "MappingCycle",
    "ParallelPaths",
    "ProbeResult",
    "find_all_cycles",
    "find_all_parallel_paths",
    "find_cycles_through",
    "find_parallel_paths_from",
    "probe_neighborhood",
    "validate_ttl",
]
