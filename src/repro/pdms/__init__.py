"""PDMS substrate: peers, mapping networks, queries, reformulation, routing,
neighbourhood probing and the sharded discovery core."""

from .peer import Peer
from .network import PDMSNetwork
from .query import Operation, OperationKind, Query, substring_predicate
from .reformulation import ReformulationResult, reformulate, reformulate_through_chain
from .routing import QueryRouter, RoutingPolicy, execute_locally
from .trace import HopRecord, PeerAnswer, QueryTrace
from .probing import (
    MappingCycle,
    ParallelPaths,
    ProbeResult,
    find_all_cycles,
    find_all_parallel_paths,
    find_cycles_through,
    find_parallel_paths_from,
    probe_neighborhood,
    validate_ttl,
)
from .discovery import (
    DiscoveryExecutor,
    ProbeOutcome,
    ProbePlan,
    ProbeRun,
    ProbeWorkUnit,
    ProcessPoolDiscoveryExecutor,
    SerialDiscoveryExecutor,
    TopologySnapshot,
    plan_full_probe,
    plan_mapping_delta,
    plan_neighborhood_probe,
    replay_structure_log,
    resolve_discovery_executor,
    resolve_probe_workers,
)

__all__ = [
    "Peer",
    "PDMSNetwork",
    "Operation",
    "OperationKind",
    "Query",
    "substring_predicate",
    "ReformulationResult",
    "reformulate",
    "reformulate_through_chain",
    "QueryRouter",
    "RoutingPolicy",
    "execute_locally",
    "HopRecord",
    "PeerAnswer",
    "QueryTrace",
    "MappingCycle",
    "ParallelPaths",
    "ProbeResult",
    "find_all_cycles",
    "find_all_parallel_paths",
    "find_cycles_through",
    "find_parallel_paths_from",
    "probe_neighborhood",
    "validate_ttl",
    "DiscoveryExecutor",
    "ProbeOutcome",
    "ProbePlan",
    "ProbeRun",
    "ProbeWorkUnit",
    "ProcessPoolDiscoveryExecutor",
    "SerialDiscoveryExecutor",
    "TopologySnapshot",
    "plan_full_probe",
    "plan_mapping_delta",
    "plan_neighborhood_probe",
    "replay_structure_log",
    "resolve_discovery_executor",
    "resolve_probe_workers",
]
