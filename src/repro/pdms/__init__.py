"""PDMS substrate: peers, mapping networks, typed topology events, vector
clocks, queries, reformulation, routing, neighbourhood probing and the
sharded discovery core.

The multi-node gossip harness (:mod:`repro.pdms.gossip`) is *not*
re-exported here: it sits in its own layer above the core engines, so
importing this package must not drag the engine stack in.  Import it
directly (``from repro.pdms.gossip import GossipHarness``) or through the
top-level :mod:`repro` API."""

from .peer import Peer
from .network import PDMSNetwork
from .clock import VectorClock
from .events import (
    GossipJournal,
    JournalEntry,
    MappingAdded,
    MappingRemoved,
    PeerAdded,
    PeerRemoved,
    TopologyEvent,
    apply_topology_event,
)
from .query import Operation, OperationKind, Query, substring_predicate
from .reformulation import ReformulationResult, reformulate, reformulate_through_chain
from .routing import QueryRouter, RoutingPolicy, execute_locally
from .trace import HopRecord, PeerAnswer, QueryTrace
from .probing import (
    MappingCycle,
    ParallelPaths,
    ProbeResult,
    find_all_cycles,
    find_all_parallel_paths,
    find_cycles_through,
    find_parallel_paths_from,
    probe_neighborhood,
    validate_ttl,
)
from .discovery import (
    DiscoveryExecutor,
    ProbeOutcome,
    ProbePlan,
    ProbeRun,
    ProbeWorkUnit,
    ProcessPoolDiscoveryExecutor,
    SerialDiscoveryExecutor,
    TopologySnapshot,
    plan_full_probe,
    plan_mapping_delta,
    plan_neighborhood_probe,
    replay_structure_log,
    resolve_discovery_executor,
    resolve_probe_workers,
)

__all__ = [
    "Peer",
    "PDMSNetwork",
    "VectorClock",
    "TopologyEvent",
    "PeerAdded",
    "PeerRemoved",
    "MappingAdded",
    "MappingRemoved",
    "apply_topology_event",
    "JournalEntry",
    "GossipJournal",
    "Operation",
    "OperationKind",
    "Query",
    "substring_predicate",
    "ReformulationResult",
    "reformulate",
    "reformulate_through_chain",
    "QueryRouter",
    "RoutingPolicy",
    "execute_locally",
    "HopRecord",
    "PeerAnswer",
    "QueryTrace",
    "MappingCycle",
    "ParallelPaths",
    "ProbeResult",
    "find_all_cycles",
    "find_all_parallel_paths",
    "find_cycles_through",
    "find_parallel_paths_from",
    "probe_neighborhood",
    "validate_ttl",
    "DiscoveryExecutor",
    "ProbeOutcome",
    "ProbePlan",
    "ProbeRun",
    "ProbeWorkUnit",
    "ProcessPoolDiscoveryExecutor",
    "SerialDiscoveryExecutor",
    "TopologySnapshot",
    "plan_full_probe",
    "plan_mapping_delta",
    "plan_neighborhood_probe",
    "replay_structure_log",
    "resolve_discovery_executor",
    "resolve_probe_workers",
]
