"""Peers: autonomous databases participating in the PDMS.

A peer owns a schema, a local instance store and the set of *outgoing*
mappings it maintains towards its neighbours (the paper's per-hop routing
model only requires the source of a mapping to know about it, §4.1).  Peers
also hold the probabilistic state the core contribution needs: prior
beliefs, the local factor-graph fragment and the latest posteriors — those
are attached lazily by :mod:`repro.core.embedded` so that the network
substrate stays independent of the inference machinery.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping as TMapping, Optional, Tuple

from ..exceptions import PDMSError
from ..mapping.mapping import Mapping
from ..schema.instances import InstanceStore, Record
from ..schema.schema import Schema

__all__ = ["Peer"]


class Peer:
    """One autonomous database in the PDMS.

    Parameters
    ----------
    name:
        Unique peer identifier (the paper's peer ID / address).
    schema:
        The peer's local schema.
    records:
        Optional initial data records.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        records: Iterable[TMapping[str, Any]] = (),
    ) -> None:
        if not name:
            raise PDMSError("peer name must be non-empty")
        self.name = name
        self.schema = schema
        self.store = InstanceStore(schema, records)
        self._outgoing: Dict[str, Mapping] = {}

    # -- mappings -------------------------------------------------------------------

    def add_outgoing_mapping(self, mapping: Mapping) -> Mapping:
        """Register an outgoing mapping; its source must be this peer."""
        if mapping.source != self.name:
            raise PDMSError(
                f"peer {self.name!r} cannot own mapping {mapping.name} "
                f"(source is {mapping.source!r})"
            )
        key = mapping.name
        if key in self._outgoing:
            raise PDMSError(f"peer {self.name!r} already owns mapping {key}")
        self._outgoing[key] = mapping
        return mapping

    @property
    def outgoing_mappings(self) -> Tuple[Mapping, ...]:
        """All mappings departing from this peer."""
        return tuple(self._outgoing.values())

    @property
    def neighbor_names(self) -> Tuple[str, ...]:
        """Names of peers reachable through one outgoing mapping."""
        seen: Dict[str, None] = {}
        for mapping in self._outgoing.values():
            seen.setdefault(mapping.target, None)
        return tuple(seen)

    def mappings_to(self, target: str) -> Tuple[Mapping, ...]:
        """Outgoing mappings towards ``target`` (possibly several, parallel)."""
        return tuple(m for m in self._outgoing.values() if m.target == target)

    def mapping_named(self, name: str) -> Mapping:
        """Return the outgoing mapping called ``name``."""
        try:
            return self._outgoing[name]
        except KeyError:
            raise PDMSError(
                f"peer {self.name!r} owns no mapping named {name!r}"
            ) from None

    # -- data ------------------------------------------------------------------------

    def insert(self, record: TMapping[str, Any] | Record) -> Record:
        """Insert a record into the peer's local store."""
        return self.store.insert(record)

    def insert_many(self, records: Iterable[TMapping[str, Any] | Record]) -> int:
        return self.store.insert_many(records)

    @property
    def record_count(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Peer({self.name!r}, schema={self.schema.name!r}, "
            f"records={self.record_count}, outgoing={len(self._outgoing)})"
        )
