"""In-memory multi-node gossip harness: causal replication, local views.

The paper's runtime model is N autonomous peers, each assessing mapping
quality from *its own* local view while topology knowledge spreads
epidemically.  This module is that model in one process: every
:class:`PeerNode` owns a :class:`~repro.pdms.events.GossipJournal`
(causal delivery over dynamic vector clocks), an event-sourced replica of
the network rebuilt with ``PDMSNetwork.from_events``, and a
:class:`~repro.core.quality.MappingQualityAssessor` whose
blocked-embedded engine computes the peer's §4.5 ``assess_local`` view
over that replica.  Journal entries travel through a
:class:`SeededTransport` that deterministically reorders, duplicates and
drops messages.

Convergence is *bit-identical* by construction: the journal delivers
causally and exposes one canonical total order every replica agrees on
(Lamport sum, then origin, then sequence), so once all nodes hold the
same entry set, each rebuilds the exact same network — same peer and
mapping insertion order, same version — and the deterministic assessor
produces the exact same floats as the single-process oracle built from
the same events (:meth:`GossipHarness.oracle_network`).

Everything here is deterministic from explicit seeds; the harness is the
substrate the ROADMAP's "peers as processes" socket runtime plugs into.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..constants import DEFAULT_SEED
from ..core.quality import MappingQualityAssessor
from ..exceptions import PDMSError, UnknownPeerError
from .events import GossipJournal, JournalEntry, TopologyEvent
from .network import PDMSNetwork

__all__ = ["PeerNode", "SeededTransport", "GossipHarness"]


class PeerNode:
    """One gossiping peer: journal, event-sourced replica, local assessor.

    Parameters
    ----------
    name:
        The peer's name — also the journal owner and the origin this
        node's :meth:`assess_local` judges from.
    assessor_kwargs:
        Keyword arguments forwarded to every
        :class:`~repro.core.quality.MappingQualityAssessor` built over
        the replica (``ttl``, ``delta``, ``include_parallel_paths``,
        ``send_probability``, ...).  All nodes of a harness should share
        the same settings, and they must match the oracle's for the
        bit-identical convergence guarantee.
    """

    def __init__(self, name: str, **assessor_kwargs) -> None:
        if not name:
            raise PDMSError("peer node name must be non-empty")
        self.name = name
        self.journal = GossipJournal(name)
        self._assessor_kwargs = dict(assessor_kwargs)
        self._replica: Optional[PDMSNetwork] = None
        self._replica_entry_count = -1
        self._assessor: Optional[MappingQualityAssessor] = None

    # -- replication ---------------------------------------------------------------

    def originate(self, event: TopologyEvent) -> JournalEntry:
        """Stamp and locally deliver an event this peer decided."""
        return self.journal.append(event)

    def receive(self, entry: JournalEntry) -> Tuple[JournalEntry, ...]:
        """Accept one wire entry; return the deliveries it unlocked."""
        return self.journal.receive(entry)

    # -- the local view ------------------------------------------------------------

    def local_network(self) -> PDMSNetwork:
        """This node's replica, rebuilt from the canonical event order.

        Replicas are *event-sourced*: whenever the delivered set grew,
        the network is re-derived from scratch in the journal's canonical
        total order — so two nodes holding the same entries hold
        byte-for-byte interchangeable networks no matter how differently
        the transport interleaved their deliveries.
        """
        delivered = len(self.journal.entries())
        if self._replica is None or self._replica_entry_count != delivered:
            self._replica = PDMSNetwork.from_events(
                self.journal.canonical_events(), name=f"{self.name}-view"
            )
            self._replica_entry_count = delivered
            self._assessor = None
        return self._replica

    def assessor(self) -> MappingQualityAssessor:
        """The quality assessor over the current replica (rebuilt on growth)."""
        network = self.local_network()
        if self._assessor is None:
            self._assessor = MappingQualityAssessor(
                network, **self._assessor_kwargs
            )
        return self._assessor

    def assess_local(self, attribute: str) -> Dict[str, float]:
        """This peer's §4.5 decision over its own outgoing mappings.

        One blocked-embedded lane for this origin
        (:meth:`~repro.core.quality.MappingQualityAssessor.assess_locals`)
        over the event-sourced replica — the decentralised view the
        convergence guarantee is stated on.
        """
        if not self.local_network().has_peer(self.name):
            raise UnknownPeerError(
                f"node {self.name!r} has not yet delivered its own "
                f"PeerAdded event"
            )
        return self.assessor().assess_locals([self.name], attribute)[self.name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PeerNode({self.name!r}, delivered="
            f"{len(self.journal.entries())}, "
            f"pending={self.journal.pending_count})"
        )


class SeededTransport:
    """A deliberately unreliable in-memory message channel.

    Messages are ``(destination, JournalEntry)`` pairs.  Each
    :meth:`send` may drop the message (``drop_probability``) or enqueue
    it twice (``duplicate_probability``); each :meth:`deliver` flushes
    the in-flight queue in a seeded shuffle (``reorder=True``), so
    arrival order carries no causal information whatsoever.  All three
    disturbances draw from one explicit ``random.Random(seed)`` stream —
    the same seed always produces the same loss/duplication/reordering
    schedule.
    """

    def __init__(
        self,
        seed: int = DEFAULT_SEED,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        reorder: bool = True,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise PDMSError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        if not 0.0 <= duplicate_probability <= 1.0:
            raise PDMSError(
                f"duplicate probability must be in [0, 1], got "
                f"{duplicate_probability}"
            )
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.reorder = reorder
        self._rng = random.Random(seed)
        self._in_flight: List[Tuple[str, JournalEntry]] = []
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.delivered = 0

    def send(self, destination: str, entry: JournalEntry) -> None:
        self.sent += 1
        if (
            self.drop_probability > 0.0
            and self._rng.random() < self.drop_probability
        ):
            self.dropped += 1
            return
        self._in_flight.append((destination, entry))
        if (
            self.duplicate_probability > 0.0
            and self._rng.random() < self.duplicate_probability
        ):
            self._in_flight.append((destination, entry))
            self.duplicated += 1

    def deliver(self) -> Tuple[Tuple[str, JournalEntry], ...]:
        """Flush the in-flight queue (seeded-shuffled when reordering)."""
        if self.reorder:
            self._rng.shuffle(self._in_flight)
        batch = tuple(self._in_flight)
        self._in_flight.clear()
        self.delivered += len(batch)
        return batch


class GossipHarness:
    """N peer nodes exchanging journal entries through a seeded transport.

    Each :meth:`run_round`, every node pushes its delivered log to
    ``fanout`` seeded-random partners and the transport's surviving
    messages are handed to their destinations.  The push is the full
    delivered log — an idempotent anti-entropy: entries lost to the
    transport are simply re-pushed next round and duplicates are dropped
    by the receiving journal, so convergence needs no acknowledgements.
    :meth:`run_until_converged` loops rounds until every node has
    delivered the union of all originated entries (with nothing left
    buffered).

    The parity surface: :meth:`local_views` collects every node's
    decentralised ``assess_local`` decision, :meth:`oracle_views`
    computes the same decisions on the single-process oracle network
    (:meth:`oracle_network`, replayed from the union of originated
    events in canonical order).  After convergence the two are equal —
    not approximately, *bit-identically* — because replicas and oracle
    replay the exact same event sequence and the assessor is
    deterministic.
    """

    def __init__(
        self,
        nodes: Sequence[PeerNode],
        transport: Optional[SeededTransport] = None,
        fanout: int = 2,
        seed: int = DEFAULT_SEED,
    ) -> None:
        if not nodes:
            raise PDMSError("a gossip harness needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise PDMSError(f"duplicate node names in {names}")
        if fanout < 1:
            raise PDMSError(f"fanout must be >= 1, got {fanout}")
        self._nodes: Dict[str, PeerNode] = {node.name: node for node in nodes}
        self.transport = (
            transport if transport is not None else SeededTransport(seed=seed)
        )
        self.fanout = fanout
        self._rng = random.Random(seed)
        self.rounds = 0

    @classmethod
    def of_names(
        cls,
        names: Sequence[str],
        transport: Optional[SeededTransport] = None,
        fanout: int = 2,
        seed: int = DEFAULT_SEED,
        **assessor_kwargs,
    ) -> "GossipHarness":
        """Build a harness of fresh nodes sharing one assessor config."""
        nodes = [PeerNode(name, **assessor_kwargs) for name in names]
        return cls(nodes, transport=transport, fanout=fanout, seed=seed)

    # -- access --------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[PeerNode, ...]:
        return tuple(self._nodes.values())

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def node(self, name: str) -> PeerNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownPeerError(f"unknown gossip node {name!r}") from None

    # -- replication ---------------------------------------------------------------

    def originate(self, name: str, event: TopologyEvent) -> JournalEntry:
        """Originate an event at the named node (delivered there at once)."""
        return self.node(name).originate(event)

    def run_round(self) -> int:
        """One gossip round; returns the number of new deliveries."""
        for node in self._nodes.values():
            entries = node.journal.entries()
            if not entries:
                continue
            others = [name for name in self._nodes if name != node.name]
            if not others:
                continue
            partners = self._rng.sample(
                others, min(self.fanout, len(others))
            )
            for partner in partners:
                for entry in entries:
                    self.transport.send(partner, entry)
        delivered = 0
        for destination, entry in self.transport.deliver():
            delivered += len(self._nodes[destination].receive(entry))
        self.rounds += 1
        return delivered

    def converged(self) -> bool:
        """Every node delivered the union of all originated entries."""
        union: set = set()
        for node in self._nodes.values():
            union |= node.journal.delivered_keys()
        return all(
            node.journal.delivered_keys() == union
            and node.journal.pending_count == 0
            for node in self._nodes.values()
        )

    def run_until_converged(self, max_rounds: int = 64) -> int:
        """Run rounds to convergence; returns the rounds this call used."""
        used = 0
        while not self.converged():
            if used >= max_rounds:
                raise PDMSError(
                    f"gossip did not converge within {max_rounds} rounds "
                    f"(drop={self.transport.drop_probability}, "
                    f"fanout={self.fanout})"
                )
            self.run_round()
            used += 1
        return used

    def broadcast(
        self,
        origin: str,
        events: Iterable[TopologyEvent],
        max_rounds: int = 64,
    ) -> int:
        """Originate ``events`` at ``origin`` and gossip to convergence."""
        for event in events:
            self.originate(origin, event)
        return self.run_until_converged(max_rounds=max_rounds)

    # -- accounting ----------------------------------------------------------------

    @property
    def delivered_event_count(self) -> int:
        """Total deliveries applied across all replicas (the bench's
        events-applied measure: every entry counts once per node)."""
        return sum(
            len(node.journal.entries()) for node in self._nodes.values()
        )

    @property
    def duplicates_dropped(self) -> int:
        return sum(
            node.journal.duplicates_dropped for node in self._nodes.values()
        )

    @property
    def deliveries_buffered(self) -> int:
        return sum(
            node.journal.deliveries_buffered for node in self._nodes.values()
        )

    # -- the oracle ----------------------------------------------------------------

    def all_entries(self) -> Tuple[JournalEntry, ...]:
        """The union of every node's delivered entries, canonical order."""
        merged: Dict[Tuple[str, int], JournalEntry] = {}
        for node in self._nodes.values():
            for entry in node.journal.entries():
                merged[entry.key] = entry
        return tuple(sorted(merged.values(), key=JournalEntry.sort_key))

    def oracle_network(self) -> PDMSNetwork:
        """The single-process network: every originated event, replayed
        once in the canonical order all replicas converge to."""
        return PDMSNetwork.from_events(
            (entry.event for entry in self.all_entries()), name="oracle"
        )

    def local_views(self, attribute: str) -> Dict[str, Dict[str, float]]:
        """Every node's own decentralised decision for ``attribute``."""
        return {
            name: node.assess_local(attribute)
            for name, node in self._nodes.items()
        }

    def oracle_views(self, attribute: str) -> Dict[str, Dict[str, float]]:
        """The same per-origin decisions on the single-process oracle.

        One assessor over the oracle network, one blocked lane per
        origin — exactly the computation each node runs on its replica,
        so after convergence ``oracle_views(a) == local_views(a)``
        (exact float equality, not approximate).
        """
        sample = next(iter(self._nodes.values()))
        assessor = MappingQualityAssessor(
            self.oracle_network(), **sample._assessor_kwargs
        )
        return {
            name: assessor.assess_locals([name], attribute)[name]
            for name in self._nodes
        }
