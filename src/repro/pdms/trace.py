"""Query traces: a record of how a query travelled through the PDMS.

Traces serve two purposes: they let the examples show exactly which mapping
produced which (possibly false-positive) answers, and they are the raw
material of the *lazy* message-passing schedule, which piggybacks inference
messages on query traffic (§4.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..schema.instances import Record

__all__ = ["HopRecord", "PeerAnswer", "QueryTrace"]


@dataclass(frozen=True)
class HopRecord:
    """One forwarding decision taken while routing a query."""

    mapping_name: str
    source: str
    target: str
    forwarded: bool
    reason: str
    attribute_probabilities: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class PeerAnswer:
    """The records one peer contributed to a query's answer."""

    peer_name: str
    records: Tuple[Record, ...]
    hops_from_origin: int

    @property
    def count(self) -> int:
        return len(self.records)


@dataclass
class QueryTrace:
    """Everything that happened while resolving one query."""

    query_id: int
    origin: str
    hops: List[HopRecord] = field(default_factory=list)
    answers: List[PeerAnswer] = field(default_factory=list)
    visited_peers: List[str] = field(default_factory=list)

    def record_hop(self, hop: HopRecord) -> None:
        self.hops.append(hop)

    def record_answer(self, answer: PeerAnswer) -> None:
        self.answers.append(answer)

    def record_visit(self, peer_name: str) -> None:
        if peer_name not in self.visited_peers:
            self.visited_peers.append(peer_name)

    # -- summaries -----------------------------------------------------------------

    @property
    def forwarded_hops(self) -> Tuple[HopRecord, ...]:
        return tuple(hop for hop in self.hops if hop.forwarded)

    @property
    def blocked_hops(self) -> Tuple[HopRecord, ...]:
        return tuple(hop for hop in self.hops if not hop.forwarded)

    @property
    def total_answers(self) -> int:
        return sum(answer.count for answer in self.answers)

    def answers_from(self, peer_name: str) -> Tuple[Record, ...]:
        records: List[Record] = []
        for answer in self.answers:
            if answer.peer_name == peer_name:
                records.extend(answer.records)
        return tuple(records)

    def used_mappings(self) -> Tuple[str, ...]:
        """Names of mappings actually used to forward the query."""
        return tuple(hop.mapping_name for hop in self.forwarded_hops)

    def summary(self) -> str:
        """Human-readable one-paragraph summary of the trace."""
        lines = [
            f"query {self.query_id} from {self.origin}: visited "
            f"{len(self.visited_peers)} peers, {self.total_answers} answers",
        ]
        for hop in self.hops:
            verdict = "forwarded" if hop.forwarded else "blocked"
            lines.append(f"  {hop.mapping_name}: {verdict} ({hop.reason})")
        return "\n".join(lines)
