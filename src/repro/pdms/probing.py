"""Cycle and parallel-path discovery by TTL-bounded probing.

Peers discover the structures that generate feedback — mapping cycles and
parallel mapping paths — "either by proactively flooding their neighbourhood
with probe messages with a certain Time-To-Live (TTL) or by examining the
trace of routed queries" (§3.2.1).  This module implements the probing view:
starting from a peer, it enumerates the simple directed cycles through that
peer's outgoing mappings and the pairs of edge-disjoint parallel paths
departing from it, both bounded by a TTL (maximum number of mapping hops).

The returned structures are lists of :class:`~repro.mapping.mapping.Mapping`
objects in traversal order, ready to be fed to the feedback analysis.

This module holds only the *per-work-unit* walkers: each entry point
enumerates one origin peer's view (or one mapping's delta).  Whole-network
enumeration is a composition concern — :mod:`repro.pdms.discovery` builds
frontiers of per-origin work units over these walkers and runs them through
pluggable serial / process-pool executors; :func:`find_all_cycles` and
:func:`find_all_parallel_paths` remain as thin conveniences delegating to a
serial full-probe plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..constants import DEFAULT_TTL
from ..exceptions import PDMSError
from ..mapping.mapping import Mapping
from .network import PDMSNetwork

__all__ = [
    "MappingCycle",
    "ParallelPaths",
    "find_cycles_through",
    "find_parallel_paths_from",
    "find_parallel_paths_through",
    "find_all_cycles",
    "find_all_parallel_paths",
    "probe_neighborhood",
    "validate_ttl",
    "ProbeResult",
]


def validate_ttl(ttl: int) -> int:
    """Check that a probe TTL is a positive hop count; return it.

    Historically the entry points disagreed: :func:`find_cycles_through`
    silently returned an empty tuple for ``ttl < 2`` (indistinguishable
    from "no cycles exist") while other callers happily recursed with
    nonsense bounds.  A non-positive TTL is always a caller bug, so every
    probing entry point — and the structure caches and assessor layered on
    top — now rejects it with :class:`ValueError`.  ``ttl == 1`` stays
    valid: it legitimately means "one hop", which can discover no cycle but
    is a well-defined probe.
    """
    if ttl < 1:
        raise ValueError(f"probe ttl must be a positive hop count, got {ttl}")
    return ttl


@dataclass(frozen=True)
class MappingCycle:
    """A directed cycle of mappings starting and ending at ``origin``."""

    origin: str
    mappings: Tuple[Mapping, ...]

    @property
    def length(self) -> int:
        return len(self.mappings)

    # Cached: the evidence evaluation re-reads the names once per attribute
    # (frozen dataclasses keep a __dict__, which cached_property writes to).
    @cached_property
    def mapping_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.mappings)

    def canonical_key(self) -> Tuple[str, ...]:
        """Rotation-invariant key identifying the cycle regardless of the
        peer that discovered it."""
        names = list(self.mapping_names)
        rotations = [tuple(names[i:] + names[:i]) for i in range(len(names))]
        return min(rotations)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " -> ".join(self.mapping_names)


@dataclass(frozen=True)
class ParallelPaths:
    """Two edge-disjoint directed mapping paths sharing source and target."""

    source: str
    target: str
    first: Tuple[Mapping, ...]
    second: Tuple[Mapping, ...]

    @property
    def mappings(self) -> Tuple[Mapping, ...]:
        """All mappings involved, first path then second path."""
        return self.first + self.second

    @cached_property
    def mapping_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.mappings)

    def canonical_key(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Order-invariant key identifying the pair of paths."""
        a = tuple(m.name for m in self.first)
        b = tuple(m.name for m in self.second)
        return (a, b) if a <= b else (b, a)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        first = " -> ".join(m.name for m in self.first)
        second = " -> ".join(m.name for m in self.second)
        return f"{first} || {second}"


@dataclass(frozen=True)
class ProbeResult:
    """Everything a peer learns from probing its neighbourhood."""

    origin: str
    ttl: int
    cycles: Tuple[MappingCycle, ...]
    parallel_paths: Tuple[ParallelPaths, ...]

    @property
    def structure_count(self) -> int:
        return len(self.cycles) + len(self.parallel_paths)


def _paths_from(
    network: PDMSNetwork,
    start: str,
    max_hops: int,
) -> Iterable[Tuple[Mapping, ...]]:
    """Enumerate simple directed mapping paths (no repeated peer) from
    ``start`` with at most ``max_hops`` mappings."""

    def extend(path: Tuple[Mapping, ...], visited: Tuple[str, ...]):
        if len(path) >= max_hops:
            return
        current = path[-1].target if path else start
        for mapping in network.peer(current).outgoing_mappings:
            if mapping.target in visited:
                continue
            new_path = path + (mapping,)
            yield new_path
            yield from extend(new_path, visited + (mapping.target,))

    yield from extend((), (start,))


def find_cycles_through(
    network: PDMSNetwork, origin: str, ttl: int = DEFAULT_TTL
) -> Tuple[MappingCycle, ...]:
    """Simple directed mapping cycles through ``origin`` of length ≤ ``ttl``.

    A cycle is reported once, oriented to start at ``origin`` with one of
    the peer's outgoing mappings.  Raises :class:`ValueError` for a
    non-positive ``ttl`` (``ttl == 1`` is valid but can discover no cycle).
    """
    if validate_ttl(ttl) < 2:
        return ()
    cycles: List[MappingCycle] = []
    seen: set[Tuple[str, ...]] = set()

    def walk(path: Tuple[Mapping, ...], visited: Tuple[str, ...]) -> None:
        current = path[-1].target
        if len(path) >= 2:
            # Close the cycle if an outgoing mapping returns to the origin.
            pass
        for mapping in network.peer(current).outgoing_mappings:
            if mapping.target == origin and len(path) + 1 >= 2:
                cycle = MappingCycle(origin=origin, mappings=path + (mapping,))
                key = cycle.canonical_key()
                if key not in seen:
                    seen.add(key)
                    cycles.append(cycle)
                continue
            if mapping.target in visited:
                continue
            if len(path) + 1 >= ttl:
                continue
            walk(path + (mapping,), visited + (mapping.target,))

    for first in network.peer(origin).outgoing_mappings:
        if first.target == origin:
            continue
        walk((first,), (origin, first.target))
    return tuple(cycles)


def find_parallel_paths_from(
    network: PDMSNetwork, origin: str, ttl: int = DEFAULT_TTL
) -> Tuple[ParallelPaths, ...]:
    """Pairs of edge-disjoint directed paths from ``origin`` to a common
    destination, each of length ≤ ``ttl``.

    Mirrors the paper's f⇒ feedback structures (§3.3).  Pairs whose two
    branches share a mapping are skipped (they would not provide independent
    evidence about the shared mapping anyway), as are trivial pairs whose
    branches are identical.
    """
    validate_ttl(ttl)
    paths_by_destination: Dict[str, List[Tuple[Mapping, ...]]] = {}
    for path in _paths_from(network, origin, max_hops=ttl):
        destination = path[-1].target
        if destination == origin:
            continue
        paths_by_destination.setdefault(destination, []).append(path)

    results: List[ParallelPaths] = []
    seen: set[Tuple[Tuple[str, ...], Tuple[str, ...]]] = set()
    for destination, paths in paths_by_destination.items():
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                first, second = paths[i], paths[j]
                first_names = {m.name for m in first}
                second_names = {m.name for m in second}
                if first_names & second_names:
                    continue
                pair = ParallelPaths(
                    source=origin, target=destination, first=first, second=second
                )
                key = pair.canonical_key()
                if key in seen:
                    continue
                seen.add(key)
                results.append(pair)
    return tuple(results)


def find_parallel_paths_through(
    network: PDMSNetwork, mapping_name: str, ttl: int = DEFAULT_TTL
) -> Tuple[ParallelPaths, ...]:
    """All parallel-path pairs one of whose branches traverses ``mapping_name``.

    The incremental complement of :func:`find_all_parallel_paths`: after a
    mapping is added, every genuinely new pair must route one branch through
    the new edge, so enumerating the branches through it — backward simple
    prefixes into its source peer × forward simple suffixes out of its
    target peer, within the TTL — and the edge-disjoint partner paths of
    each branch yields exactly the pairs a full re-probe would add.  Each
    pair is reported from the shared start peer of its two branches, i.e.
    the origin whose own probe (:func:`find_parallel_paths_from`) would
    discover it.
    """
    validate_ttl(ttl)
    mapping = network.mapping(mapping_name)
    if mapping.source == mapping.target:
        # A self-loop never appears in a simple path, so no pair contains it.
        return ()
    incoming: Dict[str, List[Mapping]] = {}
    for candidate in network.mappings:
        incoming.setdefault(candidate.target, []).append(candidate)

    results: List[ParallelPaths] = []
    seen: set[Tuple[Tuple[str, ...], Tuple[str, ...]]] = set()
    # Partner paths are enumerated once per distinct branch origin (the
    # peers within TTL upstream of the new edge), not once per branch.
    partner_memo: Dict[str, Dict[str, List[Tuple[Mapping, ...]]]] = {}

    def partner_paths(origin: str) -> Dict[str, List[Tuple[Mapping, ...]]]:
        by_destination = partner_memo.get(origin)
        if by_destination is None:
            by_destination = {}
            for path in _paths_from(network, origin, max_hops=ttl):
                destination = path[-1].target
                if destination == origin:
                    continue
                by_destination.setdefault(destination, []).append(path)
            partner_memo[origin] = by_destination
        return by_destination

    def emit(branch: Tuple[Mapping, ...]) -> None:
        origin, destination = branch[0].source, branch[-1].target
        branch_names = {m.name for m in branch}
        for partner in partner_paths(origin).get(destination, []):
            if branch_names & {m.name for m in partner}:
                continue
            pair = ParallelPaths(
                source=origin, target=destination, first=branch, second=partner
            )
            key = pair.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            results.append(pair)

    def extend_backward(
        prefix: Tuple[Mapping, ...],
        suffix: Tuple[Mapping, ...],
        visited: frozenset,
    ) -> None:
        emit(prefix + (mapping,) + suffix)
        if len(prefix) + 1 + len(suffix) >= ttl:
            return
        head = prefix[0].source if prefix else mapping.source
        for previous in incoming.get(head, []):
            if previous.source in visited:
                continue
            extend_backward(
                (previous,) + prefix, suffix, visited | {previous.source}
            )

    def extend_forward(
        suffix: Tuple[Mapping, ...], visited: frozenset
    ) -> None:
        extend_backward((), suffix, visited)
        if len(suffix) + 1 >= ttl:
            return
        current = suffix[-1].target if suffix else mapping.target
        for nxt in network.peer(current).outgoing_mappings:
            if nxt.target in visited:
                continue
            extend_forward(suffix + (nxt,), visited | {nxt.target})

    extend_forward((), frozenset((mapping.source, mapping.target)))
    return tuple(results)


def probe_neighborhood(
    network: PDMSNetwork, origin: str, ttl: int = DEFAULT_TTL
) -> ProbeResult:
    """Run a full probe from ``origin``: cycles and parallel paths within TTL."""
    validate_ttl(ttl)
    if not network.has_peer(origin):
        raise PDMSError(f"unknown peer {origin!r}")
    return ProbeResult(
        origin=origin,
        ttl=ttl,
        cycles=find_cycles_through(network, origin, ttl=ttl),
        parallel_paths=find_parallel_paths_from(network, origin, ttl=ttl),
    )


def find_all_cycles(
    network: PDMSNetwork, ttl: int = DEFAULT_TTL
) -> Tuple[MappingCycle, ...]:
    """All distinct mapping cycles in the network (deduplicated across peers).

    Delegates to a serial full-probe plan of :mod:`repro.pdms.discovery`
    (imported lazily — discovery composes this module's walkers); the
    canonical merge reproduces the historical per-peer sweep exactly.
    """
    from .discovery import SerialDiscoveryExecutor, plan_full_probe

    plan = plan_full_probe(network, ttl=ttl, include_parallel_paths=False)
    cycles, _ = SerialDiscoveryExecutor().run(plan).merged()
    return cycles


def find_all_parallel_paths(
    network: PDMSNetwork, ttl: int = DEFAULT_TTL
) -> Tuple[ParallelPaths, ...]:
    """All distinct pairs of parallel paths in the network."""
    from .discovery import (
        PATHS_FROM,
        ProbePlan,
        ProbeWorkUnit,
        SerialDiscoveryExecutor,
        TopologySnapshot,
    )

    validate_ttl(ttl)
    snapshot = TopologySnapshot.of(network)
    plan = ProbePlan(
        snapshot=snapshot,
        work_units=tuple(
            ProbeWorkUnit(PATHS_FROM, name) for name in snapshot.peer_names
        ),
        ttl=ttl,
        include_parallel_paths=True,
    )
    _, pairs = SerialDiscoveryExecutor().run(plan).merged()
    return pairs
