"""Typed topology events: the replicable log every consumer shares.

The paper's system is decentralised — peers learn about the mapping
network from information that *travels*.  This module makes topology
change itself first-class: every mutation of a :class:`~repro.pdms.network.PDMSNetwork`
is one of four typed, frozen, picklable records —

* :class:`PeerAdded` — a peer (name + schema) joined;
* :class:`PeerRemoved` — a peer left (its incident mappings are removed
  first, as explicit :class:`MappingRemoved` events, so logs replay
  without hidden cascades);
* :class:`MappingAdded` — a directed mapping was registered;
* :class:`MappingRemoved` — a mapping was unregistered —

plus the deterministic transition :func:`apply` that turns an event into
the corresponding network mutation.  ``PDMSNetwork.from_events`` replays
a recorded log through :func:`apply`, reproducing peers, mappings and the
``version`` counter exactly; the legacy ``(version, kind, subject)``
tuples of ``mutations_since`` are now merely a derived view of this log.

:class:`GossipJournal` is the replication substrate on top: it stamps
each locally-originated event with a dynamically-growing
:class:`~repro.pdms.clock.VectorClock`, buffers out-of-order deliveries
until their causal predecessors arrive, drops duplicates, and exposes a
canonical total order (:meth:`GossipJournal.canonical_entries`) every
replica agrees on — the property the multi-node harness in
:mod:`repro.pdms.gossip` relies on for bit-identical convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Tuple

from ..exceptions import PDMSError
from ..mapping.mapping import Mapping
from ..schema.schema import Schema
from .clock import VectorClock
from .peer import Peer

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .network import PDMSNetwork

__all__ = [
    "TopologyEvent",
    "PeerAdded",
    "PeerRemoved",
    "MappingAdded",
    "MappingRemoved",
    "apply",
    "apply_topology_event",
    "JournalEntry",
    "GossipJournal",
]


# ---------------------------------------------------------------------------
# the event types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologyEvent:
    """Base of the four topology transitions.

    Every event exposes the legacy mutation-log vocabulary — ``kind``
    (the old mutation-kind string) and ``subject`` (the peer / mapping
    name) — so the ``(version, kind, subject)`` tuples consumed by older
    incremental callers remain a cheap derived view of the typed log.
    """

    kind: ClassVar[str] = ""

    @property
    def subject(self) -> str:
        raise NotImplementedError  # pragma: no cover - abstract

    def as_legacy(self, version: int) -> Tuple[int, str, str]:
        """The old mutation-log tuple for this event at ``version``."""
        return (version, self.kind, self.subject)


@dataclass(frozen=True)
class PeerAdded(TopologyEvent):
    """A peer joined the network.

    Carries the peer's name and schema — everything needed to rebuild the
    peer on replay.  Local instance records are *data*, not topology, and
    do not ride the event log.
    """

    name: str
    schema: Schema

    kind: ClassVar[str] = "add_peer"

    @property
    def subject(self) -> str:
        return self.name


@dataclass(frozen=True)
class PeerRemoved(TopologyEvent):
    """A peer left the network.

    Well-formed logs remove the peer's incident mappings first (the
    cascade :meth:`~repro.pdms.network.PDMSNetwork.remove_peer` records
    explicitly), so applying this event finds the peer isolated.
    """

    name: str

    kind: ClassVar[str] = "remove_peer"

    @property
    def subject(self) -> str:
        return self.name


@dataclass(frozen=True)
class MappingAdded(TopologyEvent):
    """A directed mapping was registered (one event per direction)."""

    mapping: Mapping

    kind: ClassVar[str] = "add_mapping"

    @property
    def subject(self) -> str:
        return self.mapping.name


@dataclass(frozen=True)
class MappingRemoved(TopologyEvent):
    """A mapping was unregistered."""

    name: str

    kind: ClassVar[str] = "remove_mapping"

    @property
    def subject(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# the deterministic transition
# ---------------------------------------------------------------------------


def apply(network: "PDMSNetwork", event: TopologyEvent) -> object:
    """Apply one event to ``network``; return the affected peer / mapping.

    This is the single transition function replay, evolution and the
    gossip replicas all lower to: each event maps to exactly one public
    mutator call (mapping additions always apply *directionally* —
    undirected networks record the reverse direction as its own event),
    so replaying a recorded log bumps ``version`` exactly as the original
    run did.  Malformed events (duplicate peers, unknown mappings, ...)
    raise the same exceptions the mutators raise, deterministically.
    """
    if isinstance(event, PeerAdded):
        return network.add_peer(Peer(event.name, event.schema))
    if isinstance(event, PeerRemoved):
        return network.remove_peer(event.name)
    if isinstance(event, MappingAdded):
        return network.add_mapping(event.mapping, bidirectional=False)
    if isinstance(event, MappingRemoved):
        return network.remove_mapping(event.name)
    raise PDMSError(f"unknown topology event {event!r}")


#: Qualified alias for namespaces where bare ``apply`` is too generic
#: (e.g. the ``repro.pdms`` package surface).
apply_topology_event = apply


# ---------------------------------------------------------------------------
# the gossip journal
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalEntry:
    """One causally-stamped event as it crosses the gossip wire.

    ``origin`` is the peer that appended the event, ``seq`` its 1-based
    origin-local sequence number (always equal to
    ``clock.counter(origin)``), and ``clock`` the originator's vector
    clock *after* the local increment — the stamp causal delivery checks
    against.  Entries are frozen and picklable; ``(origin, seq)`` is the
    globally-unique identity duplicates are detected by.
    """

    origin: str
    seq: int
    clock: VectorClock
    event: TopologyEvent

    def __post_init__(self) -> None:
        if self.seq != self.clock.counter(self.origin):
            raise PDMSError(
                f"journal entry {self.origin!r}#{self.seq} disagrees with "
                f"its clock {self.clock!r}"
            )

    @property
    def key(self) -> Tuple[str, int]:
        return (self.origin, self.seq)

    def sort_key(self) -> Tuple[int, str, int]:
        """Deterministic total order extending causality: Lamport total
        first (a cause always has a strictly smaller clock sum than its
        effects), origin name and sequence number as tie-breakers for
        concurrent entries."""
        return (self.clock.total(), self.origin, self.seq)


class GossipJournal:
    """Per-peer causal log of topology events.

    The journal plays both roles of a gossip replica:

    * **originator** — :meth:`append` stamps a locally-decided event with
      the next vector clock (own counter incremented over everything
      delivered so far) and delivers it locally;
    * **receiver** — :meth:`receive` accepts entries off the wire in *any*
      order: duplicates are dropped, entries whose causal predecessors
      are missing are buffered, and every arrival drains the buffer so
      chains unlock as their dependencies land.

    An entry ``e`` from origin ``o`` is deliverable when ``e.seq`` is the
    next sequence number expected from ``o`` **and** every other
    component of ``e.clock`` is already covered by the delivered clock —
    the standard vector-clock causal-delivery predicate.

    :meth:`canonical_entries` returns the delivered entries in the
    deterministic total order of :meth:`JournalEntry.sort_key`; two
    replicas that delivered the same entry *set* therefore agree on the
    exact sequence, which is what lets every replica rebuild an identical
    network via ``PDMSNetwork.from_events`` regardless of arrival order.
    """

    def __init__(self, owner: str) -> None:
        if not owner:
            raise PDMSError("journal owner must be a non-empty peer name")
        self.owner = owner
        self._clock = VectorClock()
        self._delivered: Dict[Tuple[str, int], JournalEntry] = {}
        self._order: List[JournalEntry] = []
        self._buffer: Dict[Tuple[str, int], JournalEntry] = {}
        #: Wire accounting: duplicates dropped and deliveries that had to
        #: wait in the out-of-order buffer before their turn came.
        self.duplicates_dropped = 0
        self.deliveries_buffered = 0

    # -- reads ---------------------------------------------------------------------

    @property
    def clock(self) -> VectorClock:
        """The merged clock of everything delivered so far."""
        return self._clock

    def entries(self) -> Tuple[JournalEntry, ...]:
        """Delivered entries in local delivery order."""
        return tuple(self._order)

    def canonical_entries(self) -> Tuple[JournalEntry, ...]:
        """Delivered entries in the replica-independent total order."""
        return tuple(sorted(self._order, key=JournalEntry.sort_key))

    def canonical_events(self) -> Tuple[TopologyEvent, ...]:
        """The delivered events in canonical order — the exact sequence
        ``PDMSNetwork.from_events`` should replay."""
        return tuple(entry.event for entry in self.canonical_entries())

    def delivered_keys(self) -> frozenset:
        """The ``(origin, seq)`` identities delivered so far."""
        return frozenset(self._delivered)

    @property
    def pending_count(self) -> int:
        """Entries buffered awaiting causal predecessors."""
        return len(self._buffer)

    def knows(self, entry: JournalEntry) -> bool:
        return entry.key in self._delivered

    def delta_for(self, known: VectorClock) -> Tuple[JournalEntry, ...]:
        """Delivered entries a replica at clock ``known`` still misses,
        in local delivery order (a causally-safe transmission order)."""
        return tuple(
            entry
            for entry in self._order
            if entry.seq > known.counter(entry.origin)
        )

    # -- writes --------------------------------------------------------------------

    def append(self, event: TopologyEvent) -> JournalEntry:
        """Stamp and deliver a locally-originated event."""
        clock = self._clock.increment(self.owner)
        entry = JournalEntry(
            origin=self.owner,
            seq=clock.counter(self.owner),
            clock=clock,
            event=event,
        )
        self._deliver(entry)
        return entry

    def receive(self, entry: JournalEntry) -> Tuple[JournalEntry, ...]:
        """Accept one entry off the wire; return what got delivered.

        The result is the (possibly empty) chain of deliveries this
        arrival unlocked, in delivery order: empty for duplicates and for
        entries parked in the out-of-order buffer.
        """
        if entry.key in self._delivered or entry.key in self._buffer:
            self.duplicates_dropped += 1
            return ()
        if not self._deliverable(entry):
            self._buffer[entry.key] = entry
            self.deliveries_buffered += 1
            return ()
        delivered = [entry]
        self._deliver(entry)
        # Each delivery may unlock buffered successors; drain to fixpoint.
        progressed = True
        while progressed and self._buffer:
            progressed = False
            for key in list(self._buffer):
                held = self._buffer[key]
                if self._deliverable(held):
                    del self._buffer[key]
                    self._deliver(held)
                    delivered.append(held)
                    progressed = True
        return tuple(delivered)

    # -- internals -----------------------------------------------------------------

    def _deliverable(self, entry: JournalEntry) -> bool:
        if entry.seq != self._clock.counter(entry.origin) + 1:
            return False
        return all(
            counter <= self._clock.counter(name)
            for name, counter in entry.clock.entries
            if name != entry.origin
        )

    def _deliver(self, entry: JournalEntry) -> None:
        self._delivered[entry.key] = entry
        self._order.append(entry)
        self._clock = self._clock.merge(entry.clock)
