"""Query reformulation through schema mappings.

When a peer forwards a query over a mapping, every operation's attribute is
rewritten to its image under the mapping (the XQuery ``T12`` transformation
of the paper's Figure 2 collapses, for our purposes, to this renaming).
Operations whose attribute has no image are dropped; the result records
which attributes were preserved, translated or lost so that the router and
the feedback analysis can reason about them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import QueryError
from ..mapping.mapping import Mapping
from .query import Operation, Query

__all__ = ["ReformulationResult", "reformulate", "reformulate_through_chain"]


@dataclass(frozen=True)
class ReformulationResult:
    """Outcome of pushing a query through one mapping.

    Attributes
    ----------
    query:
        The reformulated query expressed against the target schema, or
        ``None`` when no operation survived the mapping.
    translated:
        ``{original attribute: target attribute}`` for attributes that
        survived.
    lost:
        Attributes of the original query the mapping could not translate
        (the ⊥ case).
    """

    query: Optional[Query]
    translated: Dict[str, str]
    lost: Tuple[str, ...]

    @property
    def is_complete(self) -> bool:
        """True when every attribute of the original query was translated."""
        return not self.lost


def reformulate(query: Query, mapping: Mapping) -> ReformulationResult:
    """Reformulate ``query`` through ``mapping``.

    The query must be expressed against the mapping's source schema.
    """
    if query.schema_name != mapping.source:
        raise QueryError(
            f"query is against schema {query.schema_name!r} but mapping "
            f"{mapping.name} departs from {mapping.source!r}"
        )
    translated: Dict[str, str] = {}
    lost: List[str] = []
    new_operations: List[Operation] = []
    for operation in query.operations:
        image = mapping.apply(operation.attribute)
        if image is None:
            if operation.attribute not in lost:
                lost.append(operation.attribute)
            continue
        translated[operation.attribute] = image
        new_operations.append(operation.renamed(image))
    if not new_operations:
        return ReformulationResult(query=None, translated=translated, lost=tuple(lost))
    reformulated = query.with_operations(new_operations, schema_name=mapping.target)
    return ReformulationResult(
        query=reformulated, translated=translated, lost=tuple(lost)
    )


def reformulate_through_chain(
    query: Query, mappings: Sequence[Mapping]
) -> ReformulationResult:
    """Reformulate ``query`` through a chain of mappings.

    Used to compute the transitive closure ``q' = m_{n-1}(...(m_0(q)))`` the
    paper compares against the original query when analysing cycles.
    ``translated`` maps original attributes to their final images; ``lost``
    collects original attributes dropped anywhere along the chain.
    """
    if not mappings:
        raise QueryError("cannot reformulate through an empty mapping chain")
    current = query
    overall: Dict[str, str] = {attribute: attribute for attribute in query.attributes}
    lost: List[str] = []
    for mapping in mappings:
        result = reformulate(current, mapping)
        # Track loss in terms of the *original* attribute names.
        surviving: Dict[str, str] = {}
        for original, intermediate in overall.items():
            if original in [l for l in lost]:
                continue
            if intermediate in result.translated:
                surviving[original] = result.translated[intermediate]
            else:
                lost.append(original)
        overall = surviving
        if result.query is None:
            return ReformulationResult(query=None, translated=overall, lost=tuple(lost))
        current = result.query
    return ReformulationResult(query=current, translated=overall, lost=tuple(lost))
