"""Full scenario generation: topology + mappings + injected errors + ground truth.

A :class:`Scenario` bundles everything an experiment needs: the PDMS network
(with some correspondences corrupted), and the ground-truth labels of every
(mapping, attribute) pair so that precision / recall can be computed by the
evaluation harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import GenerationError
from ..mapping.corruption import corrupt_mapping_in_place
from ..mapping.mapping import Mapping
from ..pdms.network import PDMSNetwork
from ..pdms.peer import Peer
from .topologies import (
    cycle_network,
    parallel_paths_network,
    random_network,
    scale_free_network,
)

__all__ = ["Scenario", "generate_scenario", "inject_errors"]

_TOPOLOGY_BUILDERS = {
    "cycle": cycle_network,
    "random": random_network,
    "scale-free": scale_free_network,
}


@dataclass
class Scenario:
    """A generated PDMS with known ground truth."""

    network: PDMSNetwork
    ground_truth: Dict[Tuple[str, str], bool]
    error_rate: float
    seed: int
    topology: str

    @property
    def erroneous_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """(mapping name, attribute) pairs that are actually wrong."""
        return tuple(key for key, correct in self.ground_truth.items() if not correct)

    @property
    def correct_pairs(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(key for key, correct in self.ground_truth.items() if correct)

    def is_correct(self, mapping_name: str, attribute: str) -> Optional[bool]:
        return self.ground_truth.get((mapping_name, attribute))

    def erroneous_mappings(self, attribute: str) -> Tuple[str, ...]:
        """Mappings whose correspondence for ``attribute`` is wrong."""
        return tuple(
            mapping_name
            for (mapping_name, attr), correct in self.ground_truth.items()
            if attr == attribute and not correct
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Scenario(topology={self.topology!r}, peers={len(self.network)}, "
            f"mappings={len(self.network.mappings)}, "
            f"errors={len(self.erroneous_pairs)})"
        )


def inject_errors(
    network: PDMSNetwork,
    error_rate: float,
    seed: int = 0,
) -> Dict[Tuple[str, str], bool]:
    """Corrupt a fraction of correspondences in-place and return ground truth.

    Every correspondence of every mapping is corrupted independently with
    probability ``error_rate`` (retargeted to a random wrong attribute of
    the target schema).  Because :class:`PDMSNetwork` and
    :class:`~repro.pdms.peer.Peer` hold references to the original
    ``Mapping`` objects, corrupted replacements are swapped in by rebuilding
    the registrations — callers should therefore inject errors right after
    building the network, before taking other references to the mappings.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise GenerationError(f"error_rate must be in [0, 1], got {error_rate}")
    rng = random.Random(seed)
    ground_truth: Dict[Tuple[str, str], bool] = {}
    for mapping in network.mappings:
        target_schema = network.peer(mapping.target).schema
        corrupt_mapping_in_place(
            mapping, target_schema, error_rate=error_rate, rng=rng
        )
        for correspondence in mapping.correspondences:
            ground_truth[(mapping.name, correspondence.source_attribute)] = (
                correspondence.is_correct is not False
            )
    return ground_truth


def generate_scenario(
    topology: str = "scale-free",
    peer_count: int = 12,
    attribute_count: int = 10,
    error_rate: float = 0.2,
    seed: int = 0,
    **topology_kwargs,
) -> Scenario:
    """Generate a complete scenario.

    Parameters
    ----------
    topology:
        One of ``"cycle"``, ``"random"`` or ``"scale-free"``.
    peer_count / attribute_count:
        Size of the network and of each schema.
    error_rate:
        Probability that any correspondence is corrupted.
    seed:
        Seed controlling topology, schema generation and error injection.
    topology_kwargs:
        Extra arguments forwarded to the topology builder (e.g.
        ``edge_probability`` for ``"random"``).
    """
    try:
        builder = _TOPOLOGY_BUILDERS[topology]
    except KeyError:
        raise GenerationError(
            f"unknown topology {topology!r}; expected one of "
            f"{sorted(_TOPOLOGY_BUILDERS)}"
        ) from None
    network = builder(
        peer_count, attribute_count=attribute_count, seed=seed, **topology_kwargs
    )
    ground_truth = inject_errors(network, error_rate, seed=seed + 1)
    return Scenario(
        network=network,
        ground_truth=ground_truth,
        error_rate=error_rate,
        seed=seed,
        topology=topology,
    )
