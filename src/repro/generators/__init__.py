"""Synthetic workload generators: schemas, topologies, full scenarios and
the paper's named experimental setups."""

from .schemas import DEFAULT_CONCEPTS, concept_pool, generate_schema, generate_schema_family
from .topologies import (
    chain_network,
    cycle_network,
    identity_mapping,
    network_from_graph,
    parallel_paths_network,
    random_network,
    scale_free_network,
)
from .scenarios import Scenario, generate_scenario, inject_errors
from .paper import (
    INTRO_ATTRIBUTE,
    INTRO_SCHEMA_CONCEPTS,
    extended_cycle_feedbacks,
    figure4_feedbacks,
    intro_example_feedbacks,
    intro_example_network,
    single_cycle_feedback,
)

__all__ = [
    "DEFAULT_CONCEPTS",
    "concept_pool",
    "generate_schema",
    "generate_schema_family",
    "chain_network",
    "cycle_network",
    "identity_mapping",
    "network_from_graph",
    "parallel_paths_network",
    "random_network",
    "scale_free_network",
    "Scenario",
    "generate_scenario",
    "inject_errors",
    "INTRO_ATTRIBUTE",
    "INTRO_SCHEMA_CONCEPTS",
    "extended_cycle_feedbacks",
    "figure4_feedbacks",
    "intro_example_feedbacks",
    "intro_example_network",
    "single_cycle_feedback",
]
