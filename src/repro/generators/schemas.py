"""Synthetic schema generation.

The simulation experiments of the paper use "automatically-generated
schemas" of a given size.  We generate schemas from a shared *concept pool*:
every schema covers the same underlying concepts (so that correct identity
mappings exist between any two schemas), optionally renaming attributes with
schema-specific decorations so that the alignment substrate has realistic
work to do.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import GenerationError
from ..schema.attribute import Attribute, AttributeType
from ..schema.schema import DataModel, Schema

__all__ = [
    "DEFAULT_CONCEPTS",
    "concept_pool",
    "generate_schema",
    "generate_schema_family",
]

#: Concepts loosely inspired by the paper's art/bibliography examples; used
#: when the caller does not supply its own pool.
DEFAULT_CONCEPTS: Tuple[str, ...] = (
    "Creator",
    "Title",
    "Subject",
    "CreatedOn",
    "Identifier",
    "Format",
    "Language",
    "Publisher",
    "Rights",
    "Description",
    "Location",
    "Keyword",
    "Contributor",
    "Medium",
    "Collection",
    "Provenance",
    "Dimension",
    "Genre",
    "Period",
    "Technique",
)

_DECORATION_PREFIXES = ("", "has", "item", "doc", "rec", "art")
_DECORATION_SUFFIXES = ("", "Value", "Field", "Info", "Entry", "Tag")


def concept_pool(size: int, rng: Optional[random.Random] = None) -> Tuple[str, ...]:
    """Return ``size`` concept names, extending the default pool if needed."""
    if size < 1:
        raise GenerationError(f"concept pool size must be >= 1, got {size}")
    if size <= len(DEFAULT_CONCEPTS):
        return DEFAULT_CONCEPTS[:size]
    extra = [f"Concept{i}" for i in range(size - len(DEFAULT_CONCEPTS))]
    return DEFAULT_CONCEPTS + tuple(extra)


def _decorate(concept: str, rng: random.Random) -> str:
    prefix = rng.choice(_DECORATION_PREFIXES)
    suffix = rng.choice(_DECORATION_SUFFIXES)
    name = concept
    if prefix:
        name = prefix + name[0].upper() + name[1:]
    if suffix:
        name = name + suffix
    return name


def generate_schema(
    name: str,
    concepts: Sequence[str],
    rename: bool = False,
    rng: Optional[random.Random] = None,
    data_model: DataModel = DataModel.XML,
) -> Tuple[Schema, Dict[str, str]]:
    """Generate one schema covering ``concepts``.

    Returns ``(schema, concept_to_attribute)`` where the dict maps each
    concept to the attribute name used by this schema (identity unless
    ``rename`` is set).
    """
    rng = rng or random.Random(0)
    mapping: Dict[str, str] = {}
    attributes: List[Attribute] = []
    used: set[str] = set()
    for concept in concepts:
        attribute_name = concept
        if rename:
            attribute_name = _decorate(concept, rng)
            while attribute_name in used:
                attribute_name = _decorate(concept, rng) + str(rng.randint(1, 99))
        used.add(attribute_name)
        mapping[concept] = attribute_name
        attributes.append(Attribute(attribute_name))
    return Schema(name, attributes=attributes, data_model=data_model), mapping


def generate_schema_family(
    count: int,
    attribute_count: int = 10,
    rename: bool = False,
    seed: int = 0,
    name_prefix: str = "p",
) -> Tuple[List[Schema], Dict[str, Dict[str, str]]]:
    """Generate ``count`` schemas over the same ``attribute_count`` concepts.

    Returns ``(schemas, {schema name: {concept: attribute name}})``.  All
    schemas cover all concepts, so a correct mapping exists between every
    pair — the generators then corrupt a controlled fraction of them.
    """
    if count < 1:
        raise GenerationError(f"schema family size must be >= 1, got {count}")
    rng = random.Random(seed)
    concepts = concept_pool(attribute_count)
    schemas: List[Schema] = []
    concept_maps: Dict[str, Dict[str, str]] = {}
    for index in range(1, count + 1):
        schema, mapping = generate_schema(
            f"{name_prefix}{index}", concepts, rename=rename, rng=rng
        )
        schemas.append(schema)
        concept_maps[schema.name] = mapping
    return schemas, concept_maps
