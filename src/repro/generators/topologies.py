"""Topology generators for synthetic PDMS networks.

The paper motivates its cycle analysis with the topology of real semantic
overlay networks: high clustering, scale-free degree distributions, and an
exponentially growing number of loops (§3.2.1).  The generators here build
mapping graphs with those characteristics — simple cycles and chains for the
controlled experiments, Erdős–Rényi and Barabási–Albert graphs for the
larger simulations — and wire correct identity mappings along every edge.
Error injection is applied afterwards by the scenario builder.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..exceptions import GenerationError
from ..mapping.mapping import Mapping
from ..pdms.network import PDMSNetwork
from ..pdms.peer import Peer
from ..schema.schema import Schema
from .schemas import generate_schema_family

__all__ = [
    "identity_mapping",
    "cycle_network",
    "chain_network",
    "parallel_paths_network",
    "random_network",
    "scale_free_network",
    "network_from_graph",
]


def identity_mapping(source: Schema, target: Schema, label: str = "") -> Mapping:
    """Correct mapping linking identically named attributes of two schemas."""
    shared = [name for name in source.attribute_names if target.has_attribute(name)]
    if not shared:
        raise GenerationError(
            f"schemas {source.name!r} and {target.name!r} share no attribute"
        )
    return Mapping.from_pairs(
        source.name,
        target.name,
        {name: name for name in shared},
        label=label,
        is_correct=True,
        provenance="generator",
    )


def _build_peers(
    count: int, attribute_count: int, seed: int, name_prefix: str = "p"
) -> List[Peer]:
    schemas, _ = generate_schema_family(
        count, attribute_count=attribute_count, seed=seed, name_prefix=name_prefix
    )
    return [Peer(schema.name, schema) for schema in schemas]


def cycle_network(
    peer_count: int,
    attribute_count: int = 10,
    directed: bool = True,
    seed: int = 0,
    name: str = "cycle",
) -> PDMSNetwork:
    """A single directed cycle p1 → p2 → … → pn → p1 of correct mappings."""
    if peer_count < 2:
        raise GenerationError(f"a cycle needs at least 2 peers, got {peer_count}")
    network = PDMSNetwork(name=name, directed=directed)
    peers = _build_peers(peer_count, attribute_count, seed)
    for peer in peers:
        network.add_peer(peer)
    for index, peer in enumerate(peers):
        successor = peers[(index + 1) % peer_count]
        network.add_mapping(
            identity_mapping(peer.schema, successor.schema), bidirectional=False
        )
    return network


def chain_network(
    peer_count: int,
    attribute_count: int = 10,
    directed: bool = True,
    seed: int = 0,
    name: str = "chain",
) -> PDMSNetwork:
    """A simple chain p1 → p2 → … → pn (no cycle, hence no feedback)."""
    if peer_count < 2:
        raise GenerationError(f"a chain needs at least 2 peers, got {peer_count}")
    network = PDMSNetwork(name=name, directed=directed)
    peers = _build_peers(peer_count, attribute_count, seed)
    for peer in peers:
        network.add_peer(peer)
    for first, second in zip(peers, peers[1:]):
        network.add_mapping(
            identity_mapping(first.schema, second.schema), bidirectional=False
        )
    return network


def parallel_paths_network(
    branch_lengths: Sequence[int] = (1, 2),
    attribute_count: int = 10,
    seed: int = 0,
    name: str = "parallel",
) -> PDMSNetwork:
    """Two (or more) directed branches from a common source to a common sink.

    ``branch_lengths`` gives the number of mappings on each branch; the
    shortest possible branch has length 1 (a direct mapping).
    """
    if len(branch_lengths) < 2:
        raise GenerationError("need at least two branches for parallel paths")
    if any(length < 1 for length in branch_lengths):
        raise GenerationError("branch lengths must be >= 1")
    intermediate_count = sum(length - 1 for length in branch_lengths)
    peers = _build_peers(2 + intermediate_count, attribute_count, seed)
    source, sink = peers[0], peers[1]
    network = PDMSNetwork(name=name, directed=True)
    for peer in peers:
        network.add_peer(peer)
    next_intermediate = 2
    for length in branch_lengths:
        previous = source
        for _ in range(length - 1):
            middle = peers[next_intermediate]
            next_intermediate += 1
            network.add_mapping(
                identity_mapping(previous.schema, middle.schema), bidirectional=False
            )
            previous = middle
        network.add_mapping(
            identity_mapping(previous.schema, sink.schema), bidirectional=False
        )
    return network


def network_from_graph(
    graph: nx.Graph | nx.DiGraph,
    attribute_count: int = 10,
    seed: int = 0,
    name: str = "pdms",
    directed: bool = True,
) -> PDMSNetwork:
    """Build a PDMS whose mapping graph mirrors ``graph``.

    Node labels become peer names (prefixed with ``p`` when they are bare
    integers); every edge becomes a correct identity mapping.  Undirected
    input graphs produce one mapping per direction when ``directed`` is
    ``True``, or a bidirectional registration otherwise.
    """
    nodes = list(graph.nodes())
    if not nodes:
        raise GenerationError("cannot build a network from an empty graph")
    schemas, _ = generate_schema_family(
        len(nodes), attribute_count=attribute_count, seed=seed
    )
    names = {
        node: (f"p{node}" if isinstance(node, int) else str(node)) for node in nodes
    }
    schema_by_node: Dict[object, Schema] = {}
    network = PDMSNetwork(name=name, directed=directed)
    for node, schema in zip(nodes, schemas):
        renamed = schema.rename(names[node])
        schema_by_node[node] = renamed
        network.add_peer(Peer(renamed.name, renamed))
    seen_pairs: set[Tuple[str, str]] = set()
    for edge in graph.edges():
        source, target = edge[0], edge[1]
        if source == target:
            continue
        key = (names[source], names[target])
        if key in seen_pairs:
            continue
        seen_pairs.add(key)
        network.add_mapping(
            identity_mapping(schema_by_node[source], schema_by_node[target]),
            bidirectional=False,
        )
        if not graph.is_directed():
            reverse_key = (names[target], names[source])
            if reverse_key not in seen_pairs:
                seen_pairs.add(reverse_key)
                network.add_mapping(
                    identity_mapping(schema_by_node[target], schema_by_node[source]),
                    bidirectional=False,
                )
    return network


def random_network(
    peer_count: int,
    edge_probability: float = 0.3,
    attribute_count: int = 10,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> PDMSNetwork:
    """Erdős–Rényi style PDMS: each ordered pair is linked with probability
    ``edge_probability``, then the graph is patched to be weakly connected."""
    if peer_count < 2:
        raise GenerationError(f"need at least 2 peers, got {peer_count}")
    if not 0.0 <= edge_probability <= 1.0:
        raise GenerationError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(peer_count, edge_probability, seed=seed, directed=True)
    # Ensure weak connectivity so that queries / probes can reach everybody.
    components = list(nx.weakly_connected_components(graph))
    for first, second in zip(components, components[1:]):
        graph.add_edge(rng.choice(sorted(first)), rng.choice(sorted(second)))
    return network_from_graph(
        graph, attribute_count=attribute_count, seed=seed, name=name
    )


def scale_free_network(
    peer_count: int,
    attachment: int = 2,
    attribute_count: int = 10,
    seed: int = 0,
    name: str = "scale-free",
) -> PDMSNetwork:
    """Barabási–Albert style PDMS with the high clustering the paper reports
    for real semantic overlay networks."""
    if peer_count < 3:
        raise GenerationError(f"need at least 3 peers, got {peer_count}")
    attachment = min(attachment, peer_count - 1)
    graph = nx.barabasi_albert_graph(peer_count, attachment, seed=seed)
    return network_from_graph(
        graph, attribute_count=attribute_count, seed=seed, name=name
    )
