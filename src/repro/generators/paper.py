"""The paper's named experimental setups, reproduced as reusable builders.

Every figure of the evaluation section works on one of a handful of small,
hand-specified configurations:

* the **introductory example** (Figures 1 and 5, revisited in §4.5): four
  art databases, six directed mappings, one of which erroneously maps
  ``Creator`` onto ``CreatedOn``;
* the **example factor graph** (Figure 4): five mappings, three cycle
  feedbacks — used for the convergence (Figure 7) and fault-tolerance
  (Figure 11) experiments;
* the **growing-cycle family** (Figure 8): the example graph whose long
  cycle is stretched by inserting additional peers — used for the
  relative-error experiment (Figure 9);
* the **single positive cycle** of 2–20 mappings — used for the
  cycle-length experiment (Figure 10).

The builders below return either fully materialised
:class:`~repro.pdms.network.PDMSNetwork` objects (when instance data and
routing matter) or plain lists of :class:`~repro.core.feedback.Feedback`
(when only the probabilistic model matters, exactly like the paper which
simply posits the feedback signs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.feedback import Feedback, FeedbackKind, StructureKind
from ..mapping.mapping import Mapping
from ..pdms.network import PDMSNetwork
from ..pdms.peer import Peer
from ..schema.schema import Schema

__all__ = [
    "INTRO_ATTRIBUTE",
    "INTRO_SCHEMA_CONCEPTS",
    "intro_example_network",
    "intro_example_feedbacks",
    "figure4_feedbacks",
    "extended_cycle_feedbacks",
    "single_cycle_feedback",
]

#: The attribute the worked example reasons about.
INTRO_ATTRIBUTE = "Creator"

#: Eleven concepts per schema, giving Δ = 1/10 as in §4.5.
INTRO_SCHEMA_CONCEPTS: Tuple[str, ...] = (
    "Creator",
    "Title",
    "Subject",
    "CreatedOn",
    "Identifier",
    "Format",
    "Language",
    "Publisher",
    "Rights",
    "Medium",
    "Location",
)

_SIGNS = {"+": FeedbackKind.POSITIVE, "-": FeedbackKind.NEGATIVE, "0": FeedbackKind.NEUTRAL}


def _kind(sign: str | FeedbackKind) -> FeedbackKind:
    if isinstance(sign, FeedbackKind):
        return sign
    return _SIGNS[sign]


# ---------------------------------------------------------------------------
# Introductory example (Figures 1 / 5, §1.2 and §4.5)
# ---------------------------------------------------------------------------


def intro_example_network(with_records: bool = True) -> PDMSNetwork:
    """The four-peer art-database PDMS of the introductory example.

    Six directed mappings: ``p1→p2``, ``p2→p1``, ``p2→p3``, ``p3→p4``,
    ``p4→p1`` and ``p2→p4``; all are correct except ``p2→p4`` which maps
    ``Creator`` onto ``CreatedOn`` (the error the paper's detector flags).
    """
    network = PDMSNetwork(name="intro-example", directed=True)
    schemas = {
        name: Schema.from_names(name, INTRO_SCHEMA_CONCEPTS)
        for name in ("p1", "p2", "p3", "p4")
    }
    for name, schema in schemas.items():
        network.add_peer(Peer(name, schema))

    def correct(source: str, target: str) -> Mapping:
        return Mapping.from_pairs(
            source,
            target,
            {concept: concept for concept in INTRO_SCHEMA_CONCEPTS},
            is_correct=True,
            provenance="intro-example",
        )

    network.add_mapping(correct("p1", "p2"), bidirectional=False)
    network.add_mapping(correct("p2", "p1"), bidirectional=False)
    network.add_mapping(correct("p2", "p3"), bidirectional=False)
    network.add_mapping(correct("p3", "p4"), bidirectional=False)
    network.add_mapping(correct("p4", "p1"), bidirectional=False)

    faulty = Mapping(source="p2", target="p4")
    for concept in INTRO_SCHEMA_CONCEPTS:
        if concept == INTRO_ATTRIBUTE:
            # The erroneous correspondence of the introductory example.
            faulty.add(
                correct("p2", "p4").correspondence_for(concept).with_target(
                    "CreatedOn", is_correct=False
                )
            )
        else:
            faulty.add(correct("p2", "p4").correspondence_for(concept))
    network.add_mapping(faulty, bidirectional=False)

    if with_records:
        network.peer("p2").insert_many(
            [
                {"Creator": "Henry Peach Robinson", "Subject": "A view of the river Medway", "Title": "Landscape"},
                {"Creator": "Claude Monet", "Subject": "The river Seine at dawn", "Title": "Morning on the Seine"},
                {"Creator": "Paul Cezanne", "Subject": "Still life with apples", "Title": "Nature morte"},
            ]
        )
        network.peer("p3").insert_many(
            [
                {"Creator": "Alfred Sisley", "Subject": "Flood at the river bank", "Title": "The Flood"},
                {"Creator": "Gustave Courbet", "Subject": "Portrait of a man", "Title": "The Desperate Man"},
            ]
        )
        network.peer("p4").insert_many(
            [
                {"Creator": "Katsushika Hokusai", "Subject": "The great wave off the river mouth", "CreatedOn": "1831"},
                {"Creator": "J. M. W. Turner", "Subject": "Rain, steam and speed", "CreatedOn": "1844"},
            ]
        )
        network.peer("p1").insert_many(
            [
                {"Creator": "Vincent van Gogh", "Subject": "Starry night over the river Rhone", "CreatedOn": "1888"},
            ]
        )
    return network


def intro_example_feedbacks(attribute: str = INTRO_ATTRIBUTE) -> List[Feedback]:
    """The three feedbacks p2 gathers in §4.5 (f1+, f2−, f3−⇒)."""
    return [
        Feedback(
            identifier="f1",
            kind=FeedbackKind.POSITIVE,
            structure=StructureKind.CYCLE,
            mapping_names=("p1->p2", "p2->p3", "p3->p4", "p4->p1"),
            attribute=attribute,
            origin="p2",
        ),
        Feedback(
            identifier="f2",
            kind=FeedbackKind.NEGATIVE,
            structure=StructureKind.CYCLE,
            mapping_names=("p1->p2", "p2->p4", "p4->p1"),
            attribute=attribute,
            origin="p2",
        ),
        Feedback(
            identifier="f3=>",
            kind=FeedbackKind.NEGATIVE,
            structure=StructureKind.PARALLEL_PATHS,
            mapping_names=("p2->p4", "p2->p3", "p3->p4"),
            attribute=attribute,
            origin="p2",
        ),
    ]


# ---------------------------------------------------------------------------
# Example factor graph of Figure 4 (used by Figures 7 and 11)
# ---------------------------------------------------------------------------


def figure4_feedbacks(
    signs: Sequence[str | FeedbackKind] = ("+", "-", "-"),
    attribute: str = INTRO_ATTRIBUTE,
) -> List[Feedback]:
    """The three cycle feedbacks of the Figure 4 example graph.

    ``signs`` gives the observed outcome of ``f1`` (m12–m23–m34–m41),
    ``f2`` (m12–m24–m41) and ``f3`` (m23–m34–m24); the paper's convergence
    and fault-tolerance experiments use ``(+, −, −)``.
    """
    if len(signs) != 3:
        raise ValueError(f"figure4_feedbacks needs exactly 3 signs, got {len(signs)}")
    structures = (
        ("f1", ("p1->p2", "p2->p3", "p3->p4", "p4->p1")),
        ("f2", ("p1->p2", "p2->p4", "p4->p1")),
        ("f3", ("p2->p3", "p3->p4", "p2->p4")),
    )
    return [
        Feedback(
            identifier=identifier,
            kind=_kind(sign),
            structure=StructureKind.CYCLE,
            mapping_names=mapping_names,
            attribute=attribute,
            origin="p1",
        )
        for (identifier, mapping_names), sign in zip(structures, signs)
    ]


# ---------------------------------------------------------------------------
# Growing-cycle family of Figure 8 (used by Figure 9)
# ---------------------------------------------------------------------------


def extended_cycle_feedbacks(
    extra_peers: int,
    signs: Sequence[str | FeedbackKind] = ("+", "-", "-"),
    attribute: str = INTRO_ATTRIBUTE,
) -> List[Feedback]:
    """The Figure 4 example graph with ``extra_peers`` peers inserted on the
    p1→p2 edge (Figure 8), lengthening cycles f1 and f2.

    ``extra_peers=0`` reproduces :func:`figure4_feedbacks` exactly.
    """
    if extra_peers < 0:
        raise ValueError(f"extra_peers must be >= 0, got {extra_peers}")
    if len(signs) != 3:
        raise ValueError(f"extended_cycle_feedbacks needs exactly 3 signs")
    chain: List[str] = []
    previous = "p1"
    for index in range(1, extra_peers + 1):
        inserted = f"x{index}"
        chain.append(f"{previous}->{inserted}")
        previous = inserted
    chain.append(f"{previous}->p2")
    structures = (
        ("f1", tuple(chain) + ("p2->p3", "p3->p4", "p4->p1")),
        ("f2", tuple(chain) + ("p2->p4", "p4->p1")),
        ("f3", ("p2->p3", "p3->p4", "p2->p4")),
    )
    return [
        Feedback(
            identifier=identifier,
            kind=_kind(sign),
            structure=StructureKind.CYCLE,
            mapping_names=mapping_names,
            attribute=attribute,
            origin="p1",
        )
        for (identifier, mapping_names), sign in zip(structures, signs)
    ]


# ---------------------------------------------------------------------------
# Single positive cycle (Figure 10)
# ---------------------------------------------------------------------------


def single_cycle_feedback(
    length: int,
    kind: str | FeedbackKind = "+",
    attribute: str = INTRO_ATTRIBUTE,
) -> Feedback:
    """One cycle feedback over ``length`` mappings p1→p2→…→p1 (Figure 10)."""
    if length < 2:
        raise ValueError(f"a cycle needs at least 2 mappings, got {length}")
    mapping_names = tuple(
        f"p{i}->p{i % length + 1}" for i in range(1, length + 1)
    )
    return Feedback(
        identifier=f"cycle{length}",
        kind=_kind(kind),
        structure=StructureKind.CYCLE,
        mapping_names=mapping_names,
        attribute=attribute,
        origin="p1",
    )
