"""Command-line interface for running the paper's experiments.

Installing the package exposes a ``repro-experiments`` console script (see
``setup.py``); the same entry point is reachable with
``python -m repro.cli``.  Each sub-command runs one experiment of the
evaluation section and prints the corresponding paper-vs-measured table —
the same runners the benchmark harness uses, without the timing machinery.

A sibling ``repro-lint`` console script (``python -m repro.lintkit``) runs
the AST-based architectural analyzer over the tree — the layering,
determinism, process-safety, knob-hygiene and numeric invariants stated in
``ARCHITECTURE.md``.

Examples
--------
::

    repro-experiments intro
    repro-experiments cycle-length --deltas 0.01 0.1
    repro-experiments real-world --thetas 0.3 0.5 0.7
    repro-experiments scenario --peers 16 --error-rate 0.2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .constants import DEFAULT_SHARD_TIMEOUT, DEFAULT_TTL
from .core.quality import MappingQualityAssessor
from .evaluation.experiments import (
    run_assessor_amortization,
    run_baseline_comparison,
    run_convergence,
    run_cycle_length,
    run_embedded_throughput,
    run_engine_throughput,
    run_fault_tolerance,
    run_gossip_convergence,
    run_intro_example,
    run_local_assessment,
    run_long_cycle_throughput,
    run_probe_throughput,
    run_real_world,
    run_relative_error,
    run_schedule_comparison,
)
from .evaluation.metrics import score_detection
from .evaluation.reporting import format_comparison, format_table
from .generators.scenarios import generate_scenario

__all__ = ["build_parser", "main"]

#: Probe TTL of the generated throughput networks.  Deliberately shallower
#: than the assessor's :data:`~repro.constants.DEFAULT_TTL`: the timed
#: workloads only need enough structures to saturate the engines, not the
#: full exponential enumeration.
THROUGHPUT_DEFAULT_TTL = 3


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with one sub-command per experiment."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the experiments of 'Probabilistic Message "
        "Passing in Peer Data Management Systems' (ICDE 2006).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("intro", help="worked example of §4.5 (E1)")

    convergence = subparsers.add_parser("convergence", help="Figure 7 (E2)")
    convergence.add_argument("--priors", type=float, default=0.7)
    convergence.add_argument("--delta", type=float, default=0.1)

    relative = subparsers.add_parser("relative-error", help="Figure 9 (E3)")
    relative.add_argument("--max-extra-peers", type=int, default=7)

    cycle = subparsers.add_parser("cycle-length", help="Figure 10 (E4)")
    cycle.add_argument("--max-length", type=int, default=20)
    cycle.add_argument("--deltas", type=float, nargs="+", default=[0.01, 0.1, 0.2])

    fault = subparsers.add_parser("fault-tolerance", help="Figure 11 (E5)")
    fault.add_argument("--repetitions", type=int, default=5)
    fault.add_argument(
        "--send-probabilities", type=float, nargs="+",
        default=[1.0, 0.8, 0.6, 0.4, 0.2, 0.1],
    )

    real = subparsers.add_parser("real-world", help="Figure 12 (E6)")
    real.add_argument(
        "--thetas", type=float, nargs="+",
        default=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    )
    real.add_argument("--ttl", type=int, default=3)

    subparsers.add_parser("baseline", help="ablation vs the Chatty-Web heuristic (E7)")
    subparsers.add_parser("schedules", help="ablation periodic vs lazy schedules (E8)")

    throughput = subparsers.add_parser(
        "throughput",
        help="throughput of the inference engines (centralised sum-product "
        "backends, embedded dict vs array state with --mode embedded, "
        "the batched per-origin decentralised view with --mode local, "
        "the count-space kernels on long mapping rings with "
        "--mode long-cycle, origin-sharded structure discovery with "
        "--mode probe, or the event-sourced multi-node gossip harness "
        "with --mode gossip)",
    )
    throughput.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="peer counts of the generated scale-free networks "
        "(default 8 16 32 64 128; 8 16 32 64 in embedded mode; "
        "8 16 32 in local mode; 64 128 256 in probe mode; 16 32 in "
        "gossip mode); in long-cycle "
        "mode the *cycle lengths* of the generated mapping rings "
        "(default 20 30 40)",
    )
    throughput.add_argument(
        "--mode",
        choices=("sum-product", "embedded", "local", "long-cycle", "probe", "gossip"),
        default="sum-product",
        help="'sum-product' times the centralised loop vs vectorized "
        "backends; 'embedded' times decentralised rounds on the dict vs "
        "array state backends; 'local' times the all-origins §4.5 decision "
        "batched (one block-diagonal stacked engine) vs engine-per-origin; "
        "'long-cycle' times the count-space kernels against the loop "
        "reference on rings far beyond the dense arity limit; 'probe' times "
        "full-probe structure discovery on the process-pool executor vs the "
        "serial walkers; 'gossip' runs N event-sourced peer replicas to "
        "convergence through a dropping/duplicating/reordering transport "
        "and verifies every local view equals the single-process oracle",
    )
    throughput.add_argument(
        "--ttl", type=int, default=None,
        help="probe TTL of the generated networks (default 3; not "
        "applicable in long-cycle mode, which always probes the full ring)",
    )
    throughput.add_argument("--repeats", type=int, default=3)
    throughput.add_argument(
        "--max-iterations", type=int, default=None,
        help="sum-product mode only: iteration cap per timed run (default 50)",
    )
    throughput.add_argument(
        "--rounds", type=int, default=None,
        help="embedded mode only: decentralised rounds per timed run "
        "(default 25)",
    )
    throughput.add_argument(
        "--send-probability", type=float, default=None,
        help="embedded and local modes: transport reliability of the timed "
        "runs (default 1.0)",
    )
    throughput.add_argument(
        "--executor", choices=("numpy", "threaded"), default=None,
        help="plan executor running the engines' sweep rounds (default "
        "numpy, or the REPRO_EXECUTOR environment variable): 'threaded' "
        "fans independent arity buckets out to a thread pool; not "
        "applicable in sum-product mode, which times the centralised "
        "loop vs vectorized backends",
    )
    throughput.add_argument(
        "--probe-workers", type=int, default=None,
        help="probe mode only: worker count of the process-pool discovery "
        "executor (default: REPRO_PROBE_WORKERS or the CPU count)",
    )
    throughput.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="probe mode only: seeded chaos fault plan injected into the "
        "process-side discovery shards (e.g. "
        "'seed=7:rate=0.25:kinds=crash,hang'; default: REPRO_FAULT_PLAN). "
        "Upgrades the process executor to the resilient wrapper; parity "
        "with the serial run is still enforced and the survived faults "
        "are reported",
    )
    throughput.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="probe mode only: per-shard deadline of the process-side "
        "discovery fan-out (default: REPRO_SHARD_TIMEOUT or "
        f"{DEFAULT_SHARD_TIMEOUT:.0f}s)",
    )
    throughput.add_argument(
        "--fanout", type=int, default=None,
        help="gossip mode only: partners each node pushes its journal to "
        "per round (default 3)",
    )
    throughput.add_argument(
        "--drop-probability", type=float, default=None,
        help="gossip mode only: per-message drop probability of the "
        "seeded transport (default 0.05; duplicates ride at the same "
        "rate, reordering is always on)",
    )

    amortization = subparsers.add_parser(
        "amortization",
        help="probe-once structure cache vs per-attribute probing on a "
        "full assess_all_attributes pass",
    )
    amortization.add_argument("--peers", type=int, default=32)
    amortization.add_argument("--attributes", type=int, default=10)
    amortization.add_argument("--ttl", type=int, default=3)

    scenario = subparsers.add_parser(
        "scenario", help="assess a generated synthetic PDMS scenario"
    )
    scenario.add_argument("--topology", choices=("cycle", "random", "scale-free"), default="scale-free")
    scenario.add_argument("--peers", type=int, default=12)
    scenario.add_argument("--attributes", type=int, default=10)
    scenario.add_argument("--error-rate", type=float, default=0.2)
    scenario.add_argument("--theta", type=float, default=0.5)
    scenario.add_argument("--ttl", type=int, default=DEFAULT_TTL)
    scenario.add_argument("--seed", type=int, default=0)

    return parser


# ---------------------------------------------------------------------------
# per-command renderers
# ---------------------------------------------------------------------------


def _render_intro() -> str:
    result = run_intro_example()
    lines = [
        format_comparison("P(p2->p3 correct)", 0.59, result.posteriors["p2->p3"]),
        format_comparison("P(p2->p4 correct)", 0.30, result.posteriors["p2->p4"]),
        format_comparison("updated prior p2->p3", 0.55, result.updated_priors["p2->p3"]),
        format_comparison("updated prior p2->p4", 0.40, result.updated_priors["p2->p4"]),
        f"blocked mappings at θ=0.5: {', '.join(result.blocked_mappings)}",
        f"false positives: {result.standard_false_positive_count} (standard) -> "
        f"{result.aware_false_positive_count} (quality-aware)",
    ]
    return "\n".join(lines)


def _render_convergence(priors: float, delta: float) -> str:
    result = run_convergence(priors=priors, delta=delta)
    rows = [
        (i + 1, result.history["p2->p3"][i], result.history["p2->p4"][i])
        for i in range(result.iterations)
    ]
    return format_table(
        ("iteration", "P(m23 correct)", "P(m24 correct)"),
        rows,
        title=f"Figure 7 — convergence (priors {priors}, Δ={delta})",
    )


def _render_relative_error(max_extra_peers: int) -> str:
    result = run_relative_error(extra_peer_range=range(0, max_extra_peers + 1))
    worst = dict(result.worst_case_points)
    return format_table(
        ("long-cycle length", "mean |Δposterior|", "max |Δposterior|"),
        [(length, error, worst[length]) for length, error in result.points],
        title="Figure 9 — iterative vs exact inference",
    )


def _render_cycle_length(max_length: int, deltas: Sequence[float]) -> str:
    result = run_cycle_length(lengths=tuple(range(2, max_length + 1)), deltas=tuple(deltas))
    lengths = [length for length, _ in next(iter(result.series.values()))]
    rows = []
    for index, length in enumerate(lengths):
        rows.append(
            tuple([length] + [result.series[delta][index][1] for delta in deltas])
        )
    return format_table(
        tuple(["cycle length"] + [f"Δ={delta}" for delta in deltas]),
        rows,
        title="Figure 10 — posterior of a positive cycle",
    )


def _render_fault_tolerance(repetitions: int, send_probabilities: Sequence[float]) -> str:
    result = run_fault_tolerance(
        send_probabilities=tuple(send_probabilities), repetitions=repetitions
    )
    return format_table(
        ("P(send)", "mean iterations", "converged fraction"),
        [(p, iterations, converged) for p, iterations, converged in result.points],
        title="Figure 11 — convergence under message loss",
    )


def _render_real_world(thetas: Sequence[float], ttl: int) -> str:
    result = run_real_world(thetas=tuple(thetas), ttl=ttl)
    rows = [
        (theta, result.metrics[theta].precision, result.metrics[theta].recall,
         result.metrics[theta].counts.flagged)
        for theta in thetas
    ]
    header = (
        f"{result.correspondence_count} generated correspondences, "
        f"{result.erroneous_count} erroneous"
    )
    return header + "\n" + format_table(
        ("θ", "precision", "recall", "flagged"),
        rows,
        title="Figure 12 — precision of the message passing approach",
    )


def _render_baseline() -> str:
    result = run_baseline_comparison()
    return format_table(
        ("detector", "flagged", "precision", "recall"),
        [
            ("probabilistic", ", ".join(result.probabilistic_flagged),
             result.probabilistic.precision, result.probabilistic.recall),
            ("chatty-web heuristic", ", ".join(result.baseline_flagged),
             result.baseline.precision, result.baseline.recall),
        ],
        title="Ablation — probabilistic inference vs deductive heuristic",
    )


def _render_schedules() -> str:
    result = run_schedule_comparison()
    return format_table(
        ("schedule", "rounds", "remote messages", "P(p2->p4 correct)"),
        [
            ("periodic", result.periodic_rounds, result.periodic_messages,
             result.periodic_posteriors["p2->p4"]),
            ("lazy", result.lazy_rounds, result.lazy_messages,
             result.lazy_posteriors["p2->p4"]),
        ],
        title="Ablation — schedules of §4.3",
    )


def _render_throughput(args: argparse.Namespace) -> str:
    if args.mode == "embedded":
        return _render_embedded_throughput(args)
    if args.mode == "local":
        return _render_local_throughput(args)
    if args.mode == "long-cycle":
        return _render_long_cycle_throughput(args)
    if args.mode == "probe":
        return _render_probe_throughput(args)
    if args.mode == "gossip":
        return _render_gossip_convergence(args)
    sizes = tuple(args.sizes) if args.sizes else (8, 16, 32, 64, 128)
    result = run_engine_throughput(
        peer_counts=sizes,
        ttl=args.ttl if args.ttl is not None else THROUGHPUT_DEFAULT_TTL,
        max_iterations=args.max_iterations if args.max_iterations is not None else 50,
        repeats=args.repeats,
    )
    rows = [
        (
            point.peer_count,
            point.edge_count,
            f"{point.loop_edges_per_second:,.0f}",
            f"{point.vectorized_edges_per_second:,.0f}",
            f"{point.speedup:.1f}x",
            f"{point.max_marginal_difference:.1e}",
        )
        for point in result.points
    ]
    return format_table(
        ("peers", "edges", "loop msg/s", "vectorized msg/s", "speedup", "max |Δmarginal|"),
        rows,
        title="Engine throughput — loop vs vectorized sum-product backends",
    )


def _render_embedded_throughput(args: argparse.Namespace) -> str:
    sizes = tuple(args.sizes) if args.sizes else (8, 16, 32, 64)
    send_probability = (
        args.send_probability if args.send_probability is not None else 1.0
    )
    result = run_embedded_throughput(
        peer_counts=sizes,
        ttl=args.ttl if args.ttl is not None else THROUGHPUT_DEFAULT_TTL,
        rounds=args.rounds if args.rounds is not None else 25,
        repeats=args.repeats,
        send_probability=send_probability,
        executor=args.executor,
    )
    rows = [
        (
            point.peer_count,
            point.feedback_count,
            point.remote_messages_per_round,
            f"{point.dict_rounds_per_second:,.0f}",
            f"{point.array_rounds_per_second:,.0f}",
            f"{point.speedup:.1f}x",
            f"{point.max_posterior_difference:.1e}",
        )
        for point in result.points
    ]
    return format_table(
        (
            "peers",
            "feedbacks",
            "remote msgs/round",
            "dict rounds/s",
            "array rounds/s",
            "speedup",
            "max |Δposterior|",
        ),
        rows,
        title=(
            "Embedded throughput — dict vs array state backends "
            f"(P(send)={send_probability})"
        ),
    )


def _render_local_throughput(args: argparse.Namespace) -> str:
    sizes = tuple(args.sizes) if args.sizes else (8, 16, 32)
    send_probability = (
        args.send_probability if args.send_probability is not None else 1.0
    )
    result = run_local_assessment(
        peer_counts=sizes,
        ttl=args.ttl if args.ttl is not None else THROUGHPUT_DEFAULT_TTL,
        repeats=args.repeats,
        send_probability=send_probability,
        executor=args.executor,
    )
    rows = [
        (
            point.peer_count,
            point.origin_count,
            point.structure_count,
            f"{point.sequential_seconds * 1e3:.1f}",
            f"{point.batched_seconds * 1e3:.1f}",
            f"{point.speedup:.1f}x",
            f"{point.max_posterior_difference:.1e}",
        )
        for point in result.points
    ]
    return format_table(
        (
            "peers",
            "origins",
            "structures",
            "sequential ms",
            "batched ms",
            "speedup",
            "max |Δposterior|",
        ),
        rows,
        title=(
            "Local assessment throughput — batched per-origin lanes vs "
            f"engine-per-origin (P(send)={send_probability})"
        ),
    )


def _render_probe_throughput(args: argparse.Namespace) -> str:
    sizes = tuple(args.sizes) if args.sizes else (64, 128, 256)
    result = run_probe_throughput(
        peer_counts=sizes,
        ttl=args.ttl if args.ttl is not None else THROUGHPUT_DEFAULT_TTL,
        repeats=args.repeats,
        probe_workers=args.probe_workers,
        shard_timeout=args.shard_timeout,
        fault_plan=args.fault_plan,
    )

    def chaos_cell(point) -> str:
        survived = point.reliability
        if not survived:
            return "-"
        return (
            f"{survived['faults_injected']}f/"
            f"{survived['retries']}r/"
            f"{survived['serial_fallbacks']}s"
        )

    rows = [
        (
            point.peer_count,
            point.mapping_count,
            point.work_units,
            point.structure_count,
            f"{point.serial_seconds * 1e3:.1f}",
            f"{point.process_seconds * 1e3:.1f}",
            f"{point.speedup:.1f}x",
            f"{point.workers}" if point.sharded else "inline",
            chaos_cell(point),
        )
        for point in result.points
    ]
    return format_table(
        (
            "peers",
            "mappings",
            "work units",
            "structures",
            "serial ms",
            "process ms",
            "speedup",
            "workers",
            "faults/retries/serial",
        ),
        rows,
        title=(
            "Probe throughput — origin-sharded process-pool discovery vs "
            f"serial walkers (ttl={args.ttl if args.ttl is not None else THROUGHPUT_DEFAULT_TTL}, "
            "structure sets verified identical)"
        ),
    )


def _render_gossip_convergence(args: argparse.Namespace) -> str:
    sizes = tuple(args.sizes) if args.sizes else (16, 32)
    fanout = args.fanout if args.fanout is not None else 3
    drop_probability = (
        args.drop_probability if args.drop_probability is not None else 0.05
    )
    result = run_gossip_convergence(
        peer_counts=sizes,
        fanout=fanout,
        drop_probability=drop_probability,
        duplicate_probability=drop_probability,
    )
    rows = [
        (
            point.peer_count,
            point.mapping_count,
            point.event_count,
            f"{point.peer_rounds}+{point.mapping_rounds}",
            point.deliveries_buffered,
            point.duplicates_dropped,
            point.messages_dropped,
            f"{point.events_per_second:,.0f}",
            "exact" if point.views_identical else "DIVERGED",
        )
        for point in result.points
    ]
    return format_table(
        (
            "peers",
            "mappings",
            "events",
            "rounds",
            "buffered",
            "dups dropped",
            "msgs lost",
            "deliveries/s",
            "oracle parity",
        ),
        rows,
        title=(
            "Gossip convergence — event-sourced replicas vs the "
            f"single-process oracle (fanout={fanout}, "
            f"P(drop)=P(dup)={drop_probability}, "
            f"attribute={result.attribute!r})"
        ),
    )


def _render_long_cycle_throughput(args: argparse.Namespace) -> str:
    lengths = tuple(args.sizes) if args.sizes else (20, 30, 40)
    result = run_long_cycle_throughput(
        cycle_lengths=lengths, repeats=args.repeats, executor=args.executor
    )
    rows = [
        (
            point.cycle_length,
            point.ring_count,
            point.edge_count,
            f"{point.loop_messages_per_second:,.0f}",
            f"{point.vectorized_messages_per_second:,.0f}",
            f"{point.speedup:.1f}x",
            f"{point.max_marginal_difference:.1e}",
            point.count_kernel_buckets,
        )
        for point in result.points
    ]
    return format_table(
        (
            "cycle length",
            "rings",
            "edges",
            "loop msg/s",
            "count-kernel msg/s",
            "speedup",
            "max |Δmarginal|",
            "count buckets",
        ),
        rows,
        title=(
            "Long-cycle throughput — count-space kernels vs loop reference "
            "(structures far beyond the dense arity limit)"
        ),
    )


def _render_amortization(args: argparse.Namespace) -> str:
    result = run_assessor_amortization(
        peer_count=args.peers,
        attribute_count=args.attributes,
        ttl=args.ttl,
    )
    return format_table(
        (
            "mode",
            "peers",
            "attributes",
            "probes",
            "plan compiles",
            "seconds",
            "speedup",
            "max |Δposterior|",
        ),
        [
            (
                "probe per attribute",
                result.peer_count,
                result.attribute_count,
                result.uncached_probe_count,
                "-",
                f"{result.uncached_seconds:.3f}",
                "1.0x",
                "-",
            ),
            (
                "cached + sequential",
                result.peer_count,
                result.attribute_count,
                result.cached_probe_count,
                "-",
                f"{result.cached_seconds:.3f}",
                f"{result.speedup:.1f}x",
                f"{result.max_posterior_difference:.1e}",
            ),
            (
                "cached + batched",
                result.peer_count,
                result.attribute_count,
                result.batched_probe_count,
                result.batched_plan_compiles,
                f"{result.batched_seconds:.3f}",
                f"{result.speedup * result.batched_speedup:.1f}x",
                f"{result.batched_max_posterior_difference:.1e}",
            ),
        ],
        title=(
            "Assessor amortization — probe-once structure cache + batched "
            "all-attribute engine (speedup vs probe-per-attribute)"
        ),
    )


def _render_scenario(args: argparse.Namespace) -> str:
    scenario = generate_scenario(
        topology=args.topology,
        peer_count=args.peers,
        attribute_count=args.attributes,
        error_rate=args.error_rate,
        seed=args.seed,
    )
    assessor = MappingQualityAssessor(
        scenario.network, delta=None, ttl=args.ttl, include_parallel_paths=False
    )
    posteriors = {}
    for attribute in scenario.network.attribute_universe():
        assessment = assessor.assess_attribute(attribute)
        for mapping_name, posterior in assessment.posteriors.items():
            if (mapping_name, attribute) in scenario.ground_truth:
                posteriors[(mapping_name, attribute)] = posterior
    metrics = score_detection(posteriors, scenario.ground_truth, theta=args.theta)
    return format_table(
        ("peers", "mappings", "errors injected", "flagged", "precision", "recall"),
        [
            (
                len(scenario.network),
                len(scenario.network.mappings),
                len(scenario.erroneous_pairs),
                metrics.counts.flagged,
                metrics.precision,
                metrics.recall,
            )
        ],
        title=f"Synthetic {args.topology} scenario @ θ={args.theta}",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "throughput":
        # Reject flags that belong to another mode instead of silently
        # ignoring them.
        if args.mode != "sum-product" and args.max_iterations is not None:
            parser.error("--max-iterations only applies to --mode sum-product")
        if args.mode != "embedded" and args.rounds is not None:
            parser.error("--rounds only applies to --mode embedded")
        if args.mode in ("sum-product", "long-cycle", "probe", "gossip") and args.send_probability is not None:
            parser.error(
                "--send-probability only applies to --mode embedded or local"
            )
        if args.mode in ("sum-product", "probe", "gossip") and args.executor is not None:
            parser.error(
                "--executor only applies to --mode embedded, local or "
                "long-cycle"
            )
        if args.mode == "long-cycle" and args.ttl is not None:
            parser.error(
                "--ttl does not apply to --mode long-cycle (each ring is "
                "probed with its full cycle length)"
            )
        if args.mode == "gossip" and args.ttl is not None:
            parser.error(
                "--ttl does not apply to --mode gossip (the assessor TTL "
                "follows the workload's chord length)"
            )
        if args.mode != "probe" and args.probe_workers is not None:
            parser.error("--probe-workers only applies to --mode probe")
        if args.mode != "probe" and args.fault_plan is not None:
            parser.error("--fault-plan only applies to --mode probe")
        if args.mode != "probe" and args.shard_timeout is not None:
            parser.error("--shard-timeout only applies to --mode probe")
        if args.mode != "gossip" and args.fanout is not None:
            parser.error("--fanout only applies to --mode gossip")
        if args.mode != "gossip" and args.drop_probability is not None:
            parser.error("--drop-probability only applies to --mode gossip")
    if args.command == "intro":
        output = _render_intro()
    elif args.command == "convergence":
        output = _render_convergence(args.priors, args.delta)
    elif args.command == "relative-error":
        output = _render_relative_error(args.max_extra_peers)
    elif args.command == "cycle-length":
        output = _render_cycle_length(args.max_length, args.deltas)
    elif args.command == "fault-tolerance":
        output = _render_fault_tolerance(args.repetitions, args.send_probabilities)
    elif args.command == "real-world":
        output = _render_real_world(args.thetas, args.ttl)
    elif args.command == "baseline":
        output = _render_baseline()
    elif args.command == "schedules":
        output = _render_schedules()
    elif args.command == "throughput":
        output = _render_throughput(args)
    elif args.command == "amortization":
        output = _render_amortization(args)
    elif args.command == "scenario":
        output = _render_scenario(args)
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
