"""Shared numerical defaults of the iterative inference engines.

Historically the centralised :class:`~repro.factorgraph.sum_product.SumProduct`
engine and the decentralised :class:`~repro.core.embedded.EmbeddedMessagePassing`
engine grew slightly different defaults (tolerances of ``1e-6`` vs ``1e-4``,
and a hidden ``random.Random(0)`` fallback vs an unseeded transport).  Both
engines approximate the *same* fixed points, so inconsistent stopping rules
made cross-engine comparisons noisy.  This module is the single source of
truth for those knobs; every engine imports its defaults from here.

Seeding behaviour
-----------------
Randomness only enters the algorithms through message loss
(``send_probability < 1``).  When no explicit ``rng``/``seed`` is supplied,
every engine falls back to a deterministic source seeded with
:data:`DEFAULT_SEED` so that repeated runs are reproducible by default.
Pass an explicit seed (as the fault-tolerance experiments do, one per
repetition) to obtain independent lossy runs.
"""

from __future__ import annotations

import os

__all__ = [
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_TOLERANCE",
    "DEFAULT_DAMPING",
    "DEFAULT_SEND_PROBABILITY",
    "DEFAULT_SEED",
    "DEFAULT_TTL",
    "DEFAULT_BACKEND",
    "BACKEND_LOOPS",
    "BACKEND_VECTORIZED",
    "MAX_COMPILED_ARITY",
    "COUNT_KERNEL_MIN_ARITY",
    "EXECUTOR_NUMPY",
    "EXECUTOR_THREADED",
    "DEFAULT_EXECUTOR",
    "PROBE_EXECUTOR_SERIAL",
    "PROBE_EXECUTOR_PROCESS",
    "PROBE_EXECUTOR_RESILIENT",
    "DEFAULT_PROBE_EXECUTOR",
    "DEFAULT_PROBE_WORKERS",
    "EXECUTOR_ENV",
    "PROBE_EXECUTOR_ENV",
    "PROBE_WORKERS_ENV",
    "FAULT_PLAN_ENV",
    "SHARD_TIMEOUT_ENV",
    "DEFAULT_SHARD_TIMEOUT",
    "DEFAULT_SHARD_ATTEMPTS",
    "DEFAULT_RETRY_BACKOFF",
    "DEFAULT_RETRY_JITTER",
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_DELAY_SECONDS",
    "KNOWN_ENV_KNOBS",
    "read_env",
]

#: Hard cap on synchronous rounds, shared by the centralised and embedded runs.
DEFAULT_MAX_ITERATIONS: int = 50

#: Convergence threshold on the largest message / posterior change per round.
DEFAULT_TOLERANCE: float = 1e-6

#: Convex-combination weight of the *old* factor→variable message (0 = off).
DEFAULT_DAMPING: float = 0.0

#: Probability that a directed message is transmitted in a round.
DEFAULT_SEND_PROBABILITY: float = 1.0

#: Seed of the fallback random source used when none is supplied.
DEFAULT_SEED: int = 0

#: Default Time-To-Live (maximum number of mapping hops) of the probe phase
#: discovering cycles and parallel paths (§3.2.1).  Shared by the probing
#: entry points of :mod:`repro.pdms.probing`, both structure caches of
#: :mod:`repro.core.analysis` and the quality assessor, so every layer
#: bounds the exponential enumeration identically unless told otherwise.
DEFAULT_TTL: int = 6

#: Largest factor arity the *dense* einsum kernels compile — one lowercase
#: subscript letter per slot (``a``–``y``; ``z`` and ``A`` are reserved for
#: the batch/stack axes), so exactly 25.  Historically the docstrings said
#: "26 letters" while the checks said "arity > 25"; this constant is now the
#: single source of truth (``repro.factorgraph.compiled`` asserts its
#: alphabet matches).  Count-symmetric factors (the paper's feedback CPTs)
#: are not bound by it: they compile through the count-space kernels at any
#: arity.
MAX_COMPILED_ARITY: int = 25

#: Crossover arity between the dense einsum kernels and the count-space
#: kernels for count-symmetric feedback factors.  Below it the dense
#: ``(2,)**arity`` tables win (one einsum per sweep, tiny tables); from it
#: on the count-space kernels run the same sum–product sweep in O(arity²)
#: time and O(arity) table memory per structure, removing the exponential
#: cliff for long cycles and parallel paths.
COUNT_KERNEL_MIN_ARITY: int = 10

#: Reference edge-by-edge Python implementation.
BACKEND_LOOPS: str = "loops"

#: Compiled, batched numpy implementation (see repro.factorgraph.compiled).
BACKEND_VECTORIZED: str = "vectorized"

#: Backend used by :class:`~repro.factorgraph.sum_product.SumProduct` when
#: none is requested.  The vectorized backend matches the loop reference to
#: floating-point accuracy and falls back to the loops automatically on
#: graphs it cannot compile (mixed variable cardinalities).
DEFAULT_BACKEND: str = BACKEND_VECTORIZED

#: Single-threaded NumPy executor of the shared sweep-plan IR
#: (:mod:`repro.factorgraph.plan`) — bit-identical to the historical
#: per-engine sweep loops.
EXECUTOR_NUMPY: str = "numpy"

#: Thread-pool executor running independent arity buckets of a factor sweep
#: concurrently.  Buckets scatter to disjoint edge rows, so the results are
#: bit-identical to :data:`EXECUTOR_NUMPY`.
EXECUTOR_THREADED: str = "threaded"

#: Environment variable naming the default sweep executor.
EXECUTOR_ENV: str = "REPRO_EXECUTOR"

#: Environment variable naming the default discovery executor.
PROBE_EXECUTOR_ENV: str = "REPRO_PROBE_EXECUTOR"

#: Environment variable sizing the discovery worker pool.
PROBE_WORKERS_ENV: str = "REPRO_PROBE_WORKERS"

#: Environment variable selecting a seeded chaos fault plan (see
#: :mod:`repro.reliability`) for every fan-out of the process.
FAULT_PLAN_ENV: str = "REPRO_FAULT_PLAN"

#: Environment variable overriding the per-shard discovery timeout.
SHARD_TIMEOUT_ENV: str = "REPRO_SHARD_TIMEOUT"

#: Every environment knob the package reads.  :func:`read_env` — the one
#: sanctioned gate to ``os.environ`` outside this module (enforced by the
#: ``knob-env-read`` rule of :mod:`repro.lintkit`) — refuses names missing
#: from this registry, so a new knob cannot ship without being declared,
#: documented and validated here first.
KNOWN_ENV_KNOBS = frozenset(
    {
        EXECUTOR_ENV,
        PROBE_EXECUTOR_ENV,
        PROBE_WORKERS_ENV,
        FAULT_PLAN_ENV,
        SHARD_TIMEOUT_ENV,
    }
)


def read_env(name: str) -> str:
    """Read a *declared* environment knob, stripped; ``''`` when unset.

    The single sanctioned environment gate of the package: every module
    except this one resolves its knobs through here (the lintkit
    ``knob-env-read`` rule bans direct ``os.environ`` access), and the
    name must be registered in :data:`KNOWN_ENV_KNOBS` — PR 8's strict
    named-variable validation pattern applied at the read itself.
    """
    if name not in KNOWN_ENV_KNOBS:
        raise ValueError(
            f"undeclared environment knob {name!r}; register it in "
            f"repro.constants.KNOWN_ENV_KNOBS (known: "
            f"{', '.join(sorted(KNOWN_ENV_KNOBS))})"
        )
    return os.environ.get(name, "").strip()

#: Executor used when none is requested.  Overridable via the
#: ``REPRO_EXECUTOR`` environment variable so whole test/benchmark runs can
#: be switched without touching call sites (CI exercises the threaded
#: executor this way).
DEFAULT_EXECUTOR: str = os.environ.get(EXECUTOR_ENV, EXECUTOR_NUMPY)

#: In-process discovery executor of the probe-plan IR
#: (:mod:`repro.pdms.discovery`) — result-identical to the historical
#: recursive walkers, discovery order included.
PROBE_EXECUTOR_SERIAL: str = "serial"

#: Origin-sharded discovery executor fanning a probe plan's work units out
#: to a ``multiprocessing`` pool and merging the streamed results
#: canonically, so the structure sets match :data:`PROBE_EXECUTOR_SERIAL`
#: exactly regardless of worker scheduling.
PROBE_EXECUTOR_PROCESS: str = "process"

#: Chaos-hardened discovery executor
#: (:class:`~repro.reliability.ResilientDiscoveryExecutor`): the process
#: fan-out wrapped with per-shard timeouts, checksummed wire payloads,
#: bounded retry with seeded backoff jitter, and per-shard serial fallback
#: — structure sets stay canonically identical to ``serial`` no matter
#: which faults fire.  Selected automatically whenever a fault plan is
#: configured for a process fan-out.
PROBE_EXECUTOR_RESILIENT: str = "resilient"

#: Discovery executor used when none is requested, overridable via the
#: ``REPRO_PROBE_EXECUTOR`` environment variable (mirrors
#: :data:`DEFAULT_EXECUTOR` / ``REPRO_EXECUTOR`` one layer up, at the probe
#: phase instead of the sweep phase).
DEFAULT_PROBE_EXECUTOR: str = os.environ.get(
    PROBE_EXECUTOR_ENV, PROBE_EXECUTOR_SERIAL
)


def _probe_workers_from_env() -> "int | None":
    # Lenient on purpose: a malformed REPRO_PROBE_WORKERS must not abort
    # module import.  resolve_probe_workers re-reads the variable at
    # resolution time and raises the descriptive error there.
    raw = os.environ.get(PROBE_WORKERS_ENV, "").strip()
    if not raw:
        return None
    try:
        workers = int(raw)
    except ValueError:
        return None
    return workers if workers > 0 else None


#: Worker count of the process-pool discovery executor when none is passed
#: explicitly: the ``REPRO_PROBE_WORKERS`` environment variable (unset, empty
#: or ``<= 0`` meaning "decide at runtime"), else ``None`` — resolved to the
#: machine's CPU count by :func:`repro.pdms.discovery.resolve_probe_workers`,
#: which also diagnoses malformed values with a clear error.
DEFAULT_PROBE_WORKERS: "int | None" = _probe_workers_from_env()


def _shard_timeout_from_env() -> "float | None":
    # Same leniency contract as _probe_workers_from_env: malformed values
    # are diagnosed by repro.pdms.discovery.resolve_shard_timeout, not at
    # import time.
    raw = os.environ.get(SHARD_TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        return None
    return timeout if timeout > 0 else None


#: Per-shard deadline (seconds) of the process-pool discovery fan-out when
#: none is passed explicitly: the ``REPRO_SHARD_TIMEOUT`` environment
#: variable, else 120 s — generous enough that it never fires on healthy
#: probes (the 1024-peer full probe completes in well under a minute), but
#: a wedged worker now raises a descriptive
#: :class:`~repro.exceptions.DiscoveryTimeoutError` instead of blocking the
#: parent forever.  ``None`` disables the deadline.
DEFAULT_SHARD_TIMEOUT: "float | None" = _shard_timeout_from_env() or 120.0

#: Attempts per shard (first run + retries) before the resilient discovery
#: executor quarantines the shard and falls back to in-parent serial
#: execution of its work units.
DEFAULT_SHARD_ATTEMPTS: int = 3

#: Base of the exponential retry backoff (seconds): attempt ``n`` waits
#: ``DEFAULT_RETRY_BACKOFF * 2**n`` plus seeded jitter before resubmitting.
DEFAULT_RETRY_BACKOFF: float = 0.05

#: Upper bound of the uniform, fault-plan-seeded jitter added to each
#: retry backoff so colliding retries de-synchronise deterministically.
DEFAULT_RETRY_JITTER: float = 0.05

#: How long an injected ``hang`` fault sleeps inside a worker.  Must exceed
#: the shard timeout in use, so the parent observes a genuine deadline
#: expiry; chaos runs shorten both together.
DEFAULT_HANG_SECONDS: float = 30.0

#: How long an injected ``delay`` fault sleeps — long enough to reorder
#: shard completions, short enough never to trip a sane shard timeout.
DEFAULT_DELAY_SECONDS: float = 0.05
