"""Detection-quality metrics.

The paper's Figure 12 reports *precision*: among the mappings the scheme
flags as erroneous at threshold θ, the fraction that is actually erroneous.
We also compute recall and F1 (useful for the ablation benchmarks), plus a
couple of helpers for sweeping θ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..exceptions import EvaluationError

__all__ = [
    "ConfusionCounts",
    "DetectionMetrics",
    "score_detection",
    "precision_curve",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """Raw confusion-matrix counts for erroneous-mapping detection.

    "Positive" means *flagged as erroneous*.
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def flagged(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def actual_errors(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )


@dataclass(frozen=True)
class DetectionMetrics:
    """Precision / recall / F1 plus the underlying counts."""

    counts: ConfusionCounts
    precision: float
    recall: float
    f1: float

    @classmethod
    def from_counts(cls, counts: ConfusionCounts) -> "DetectionMetrics":
        precision = (
            counts.true_positives / counts.flagged if counts.flagged else 0.0
        )
        recall = (
            counts.true_positives / counts.actual_errors
            if counts.actual_errors
            else 0.0
        )
        f1 = (
            2 * precision * recall / (precision + recall)
            if (precision + recall) > 0
            else 0.0
        )
        return cls(counts=counts, precision=precision, recall=recall, f1=f1)


def score_detection(
    posteriors: TMapping[Tuple[str, str], float],
    ground_truth: TMapping[Tuple[str, str], bool],
    theta: float = 0.5,
) -> DetectionMetrics:
    """Score flagged-as-erroneous decisions against ground truth.

    Parameters
    ----------
    posteriors:
        ``{(mapping name, attribute): P(correct)}`` — a pair is flagged as
        erroneous when its posterior is ≤ θ.
    ground_truth:
        ``{(mapping name, attribute): is_correct}``.  Only pairs present in
        the ground truth are scored; posterior-less pairs in the ground
        truth count as *not flagged* (the detector had no evidence).
    theta:
        Decision threshold θ.
    """
    if not 0.0 <= theta <= 1.0:
        raise EvaluationError(f"theta must be in [0, 1], got {theta}")
    if not ground_truth:
        raise EvaluationError("ground truth is empty; nothing to score")
    tp = fp = fn = tn = 0
    for key, is_correct in ground_truth.items():
        posterior = posteriors.get(key)
        flagged = posterior is not None and posterior <= theta
        if flagged and not is_correct:
            tp += 1
        elif flagged and is_correct:
            fp += 1
        elif not flagged and not is_correct:
            fn += 1
        else:
            tn += 1
    return DetectionMetrics.from_counts(
        ConfusionCounts(
            true_positives=tp,
            false_positives=fp,
            false_negatives=fn,
            true_negatives=tn,
        )
    )


def precision_curve(
    posteriors: TMapping[Tuple[str, str], float],
    ground_truth: TMapping[Tuple[str, str], bool],
    thetas: Sequence[float],
) -> List[Tuple[float, DetectionMetrics]]:
    """Detection metrics for every θ in ``thetas`` (the Figure 12 sweep)."""
    return [
        (theta, score_detection(posteriors, ground_truth, theta=theta))
        for theta in thetas
    ]
