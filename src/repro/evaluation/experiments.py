"""Experiment runners reproducing every figure of the paper's evaluation.

Each ``run_*`` function reproduces one experiment of §5 (or one of the
ablations DESIGN.md adds) and returns a small result dataclass holding the
series the paper plots.  The benchmark harness under ``benchmarks/`` calls
these runners and prints paper-vs-measured tables; EXPERIMENTS.md records
the comparison.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping as TMapping, Optional, Sequence, Tuple

import numpy as np

from ..constants import COUNT_KERNEL_MIN_ARITY, DEFAULT_SEED
from ..core.analysis import analyze_network
from ..core.beliefs import PriorBeliefStore
from ..core.embedded import EmbeddedMessagePassing, EmbeddedOptions, MessageTransport
from ..core.feedback import Feedback, FeedbackKind, feedback_from_cycle
from ..core.pdms_factor_graph import build_factor_graph, variable_name_for
from ..core.quality import MappingQualityAssessor
from ..core.schedules import LazySchedule, PeriodicSchedule
from ..exceptions import EvaluationError
from ..factorgraph.exact import exact_marginals
from ..factorgraph.sum_product import run_sum_product
from ..generators.scenarios import generate_scenario, inject_errors
from ..generators.topologies import cycle_network, identity_mapping, scale_free_network
from ..generators.paper import (
    INTRO_ATTRIBUTE,
    extended_cycle_feedbacks,
    figure4_feedbacks,
    intro_example_feedbacks,
    intro_example_network,
    single_cycle_feedback,
)
from ..alignment.eon import EONScenario, build_eon_network
from ..pdms.discovery import (
    ProcessPoolDiscoveryExecutor,
    SerialDiscoveryExecutor,
    plan_full_probe,
    resolve_discovery_executor,
    resolve_probe_workers,
)
from ..pdms.events import MappingAdded, PeerAdded
from ..pdms.gossip import GossipHarness, SeededTransport
from ..pdms.network import PDMSNetwork
from ..pdms.probing import find_cycles_through
from ..pdms.query import Query, substring_predicate
from ..pdms.routing import QueryRouter, RoutingPolicy
from .baselines import chatty_web_baseline
from .metrics import DetectionMetrics, precision_curve, score_detection

__all__ = [
    "IntroExampleResult",
    "run_intro_example",
    "ConvergenceResult",
    "run_convergence",
    "RelativeErrorResult",
    "run_relative_error",
    "CycleLengthResult",
    "run_cycle_length",
    "FaultToleranceResult",
    "run_fault_tolerance",
    "AdversarialFeedbackResult",
    "run_adversarial_feedback",
    "RealWorldResult",
    "run_real_world",
    "BaselineComparisonResult",
    "run_baseline_comparison",
    "ScheduleComparisonResult",
    "run_schedule_comparison",
    "EngineThroughputPoint",
    "EngineThroughputResult",
    "run_engine_throughput",
    "throughput_graph",
    "throughput_feedbacks",
    "EmbeddedThroughputPoint",
    "EmbeddedThroughputResult",
    "run_embedded_throughput",
    "AssessorAmortizationResult",
    "run_assessor_amortization",
    "BatchedAssessmentPoint",
    "BatchedAssessmentResult",
    "run_batched_assessment",
    "LocalAssessmentPoint",
    "LocalAssessmentResult",
    "run_local_assessment",
    "LongCycleThroughputPoint",
    "LongCycleThroughputResult",
    "long_cycle_network",
    "run_long_cycle_throughput",
    "ProbeThroughputPoint",
    "ProbeThroughputResult",
    "run_probe_throughput",
    "GossipConvergencePoint",
    "GossipConvergenceResult",
    "gossip_workload_network",
    "run_gossip_convergence",
]


# ---------------------------------------------------------------------------
# E1 — the worked example of §4.5 (and the introductory example of §1.2)
# ---------------------------------------------------------------------------


@dataclass
class IntroExampleResult:
    """Outcome of the §4.5 worked example."""

    posteriors: Dict[str, float]
    updated_priors: Dict[str, float]
    iterations: int
    converged: bool
    standard_answer_count: int
    standard_false_positive_count: int
    aware_answer_count: int
    aware_false_positive_count: int
    blocked_mappings: Tuple[str, ...]


def run_intro_example(
    delta: float = 0.1,
    theta: float = 0.5,
    max_rounds: int = 30,
) -> IntroExampleResult:
    """Reproduce §4.5: detect the faulty ``p2→p4`` mapping and re-route.

    The probabilistic part uses exactly the three feedbacks the paper lists
    (f1+, f2−, f3−⇒) with uniform priors and Δ = 0.1; the routing part runs
    the river-artists query of §1.2 against the four-peer art network, once
    with the standard quality-unaware router and once with the θ-aware
    router, counting false positives (answers whose ``Creator`` value is a
    date, i.e. produced by the faulty mapping).
    """
    feedbacks = intro_example_feedbacks()
    engine = EmbeddedMessagePassing(
        feedbacks,
        priors=0.5,
        delta=delta,
        options=EmbeddedOptions(max_rounds=max_rounds),
    )
    result = engine.run()

    # EM prior update (§4.4): fold the posteriors into the prior store once.
    store = PriorBeliefStore()
    for mapping_name, posterior in result.posteriors.items():
        store.record_posterior(mapping_name, INTRO_ATTRIBUTE, posterior)
        # A second observation at the maximum-entropy value mirrors the
        # paper's partially-updated priors (0.55 / 0.4 rather than the raw
        # posteriors): the prior moves towards the evidence without jumping
        # all the way on a single observation.
        store.record_posterior(mapping_name, INTRO_ATTRIBUTE, 0.5)
    updated_priors = {
        mapping_name: store.prior(mapping_name, INTRO_ATTRIBUTE)
        for mapping_name in result.posteriors
    }

    # Routing comparison on the materialised art network.
    network = intro_example_network(with_records=True)
    query = Query.select_project(
        "p2",
        project=["Creator"],
        where={"Subject": substring_predicate("river")},
        where_descriptions={"Subject": "LIKE '%river%'"},
    )

    def count_false_positives(records) -> int:
        # The query asks for artist names (Creator).  Answers produced via
        # the faulty mapping were reformulated onto CreatedOn, so they either
        # lack a Creator value entirely or carry a year where a name should
        # be — both count as false positives.
        false_positives = 0
        for record in records:
            creator = record.get("Creator")
            if creator is None or str(creator).isdigit():
                false_positives += 1
        return false_positives

    standard_router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
    standard_trace = standard_router.route(query)
    standard_records = [
        record for answer in standard_trace.answers for record in answer.records
    ]

    posteriors_by_pair = {
        (name, INTRO_ATTRIBUTE): value for name, value in result.posteriors.items()
    }

    def oracle(mapping, attribute):
        return posteriors_by_pair.get((mapping.name, attribute), 1.0)

    aware_router = QueryRouter(
        network,
        policy=RoutingPolicy(default_threshold=theta),
        quality_oracle=oracle,
    )
    aware_trace = aware_router.route(query)
    aware_records = [
        record for answer in aware_trace.answers for record in answer.records
    ]
    blocked = tuple(hop.mapping_name for hop in aware_trace.blocked_hops)

    return IntroExampleResult(
        posteriors=result.posteriors,
        updated_priors=updated_priors,
        iterations=result.iterations,
        converged=result.converged,
        standard_answer_count=len(standard_records),
        standard_false_positive_count=count_false_positives(standard_records),
        aware_answer_count=len(aware_records),
        aware_false_positive_count=count_false_positives(aware_records),
        blocked_mappings=blocked,
    )


# ---------------------------------------------------------------------------
# E2 — Figure 7: convergence of the iterative message passing
# ---------------------------------------------------------------------------


@dataclass
class ConvergenceResult:
    """Posterior trajectory per mapping per iteration (Figure 7)."""

    history: Dict[str, List[float]]
    iterations: int
    converged: bool
    final_posteriors: Dict[str, float]


def run_convergence(
    priors: float = 0.7,
    delta: float = 0.1,
    signs: Sequence[str] = ("+", "-", "-"),
    max_rounds: int = 20,
    tolerance: float = 1e-3,
) -> ConvergenceResult:
    """Reproduce Figure 7 on the Figure 4 example graph."""
    feedbacks = figure4_feedbacks(signs=signs)
    engine = EmbeddedMessagePassing(
        feedbacks,
        priors=priors,
        delta=delta,
        options=EmbeddedOptions(
            max_rounds=max_rounds, tolerance=tolerance, record_history=True
        ),
    )
    result = engine.run()
    history = {
        mapping_name: result.history_of(mapping_name)
        for mapping_name in result.posteriors
    }
    return ConvergenceResult(
        history=history,
        iterations=result.iterations,
        converged=result.converged,
        final_posteriors=result.posteriors,
    )


# ---------------------------------------------------------------------------
# E3 — Figure 9: relative error of the iterative scheme vs exact inference
# ---------------------------------------------------------------------------


@dataclass
class RelativeErrorResult:
    """Error of the iterative scheme vs exact inference per cycle length
    (Figure 9).

    ``points`` holds the primary series the figure plots: the mean absolute
    deviation of the posterior probabilities (iterative vs exact), per
    length of the long cycle.  ``worst_case_points`` additionally records
    the largest absolute deviation across the mapping variables of each
    configuration, a stricter view of the same comparison.
    """

    points: List[Tuple[int, float]]
    worst_case_points: List[Tuple[int, float]]
    mean_error: float
    max_error: float


def run_relative_error(
    extra_peer_range: Sequence[int] = tuple(range(0, 8)),
    priors: float = 0.8,
    delta: float = 0.1,
    iterations: int = 10,
) -> RelativeErrorResult:
    """Reproduce Figure 9: grow the long cycle and compare to exact marginals.

    For each number of inserted peers, the long cycles f1/f2 of the example
    graph get longer (Figure 8); the iterative scheme runs for a fixed
    number of iterations and its posteriors are compared with exhaustive
    exact inference on the same factor graph.

    The paper does not spell out the exact error functional; we report the
    mean absolute deviation of P(correct) across the mapping variables
    (which reproduces the figure's shape: the error is largest for the
    shortest cycles and stays below ~6%), and keep the per-configuration
    worst-case deviation alongside for transparency.
    """
    points: List[Tuple[int, float]] = []
    worst_case_points: List[Tuple[int, float]] = []
    for extra in extra_peer_range:
        feedbacks = extended_cycle_feedbacks(extra)
        cycle_length = 4 + extra
        engine = EmbeddedMessagePassing(
            feedbacks,
            priors=priors,
            delta=delta,
            options=EmbeddedOptions(
                max_rounds=iterations, tolerance=1e-12, record_history=False
            ),
        )
        approx = engine.run().posteriors
        graph = build_factor_graph(feedbacks, priors=priors, delta=delta).graph
        exact = exact_marginals(graph)
        deviations: List[float] = []
        for mapping_name, approx_value in approx.items():
            exact_value = float(
                exact[variable_name_for(mapping_name, INTRO_ATTRIBUTE)][0]
            )
            deviations.append(abs(approx_value - exact_value))
        points.append((cycle_length, sum(deviations) / len(deviations)))
        worst_case_points.append((cycle_length, max(deviations)))
    errors = [error for _, error in points]
    return RelativeErrorResult(
        points=points,
        worst_case_points=worst_case_points,
        mean_error=sum(errors) / len(errors) if errors else 0.0,
        max_error=max(errors) if errors else 0.0,
    )


# ---------------------------------------------------------------------------
# E4 — Figure 10: impact of the cycle length on the posterior
# ---------------------------------------------------------------------------


@dataclass
class CycleLengthResult:
    """Posterior P(correct) per cycle length, one series per Δ (Figure 10)."""

    series: Dict[float, List[Tuple[int, float]]]


def run_cycle_length(
    lengths: Sequence[int] = tuple(range(2, 21)),
    deltas: Sequence[float] = (0.01, 0.1, 0.2),
    priors: float = 0.5,
    iterations: int = 2,
) -> CycleLengthResult:
    """Reproduce Figure 10 on single positive cycles of 2–20 mappings."""
    series: Dict[float, List[Tuple[int, float]]] = {}
    for delta in deltas:
        points: List[Tuple[int, float]] = []
        for length in lengths:
            feedback = single_cycle_feedback(length, kind="+")
            engine = EmbeddedMessagePassing(
                [feedback],
                priors=priors,
                delta=delta,
                options=EmbeddedOptions(max_rounds=iterations, tolerance=1e-12),
            )
            posterior = engine.run().posteriors["p1->p2"]
            points.append((length, posterior))
        series[delta] = points
    return CycleLengthResult(series=series)


# ---------------------------------------------------------------------------
# E5 — Figure 11: robustness against lost messages
# ---------------------------------------------------------------------------


@dataclass
class FaultToleranceResult:
    """Iterations needed to converge per message send probability (Figure 11)."""

    points: List[Tuple[float, float, float]]
    max_rounds: int
    reference_posteriors: Dict[str, float] = field(default_factory=dict)

    def iterations_at(self, send_probability: float) -> float:
        for probability, iterations, _ in self.points:
            if abs(probability - send_probability) < 1e-9:
                return iterations
        raise KeyError(send_probability)


def run_fault_tolerance(
    send_probabilities: Sequence[float] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1),
    priors: float = 0.8,
    delta: float = 0.1,
    signs: Sequence[str] = ("+", "-", "-"),
    repetitions: int = 10,
    max_rounds: int = 600,
    tolerance: float = 0.01,
    seed: int = 0,
) -> FaultToleranceResult:
    """Reproduce Figure 11: drop messages at random, measure convergence.

    Convergence is measured against the *lossless* fixed point: a lossy run
    counts as converged at the first round where every posterior is within
    ``tolerance`` of the posterior a fully reliable run converges to (the
    paper's point being that lost messages slow the algorithm down but do
    not change where it ends up).  Returns ``(P(send), mean iterations to
    reach the fixed point, fraction of repetitions that reached it)``.
    """
    # Reference fixed point from a perfectly reliable run.
    reference_engine = EmbeddedMessagePassing(
        figure4_feedbacks(signs=signs),
        priors=priors,
        delta=delta,
        options=EmbeddedOptions(max_rounds=max_rounds, tolerance=1e-9),
    )
    reference = reference_engine.run().posteriors

    def rounds_to_reach_reference(engine: EmbeddedMessagePassing) -> Optional[int]:
        for round_number in range(1, max_rounds + 1):
            engine.run_round()
            posteriors = engine.posteriors()
            if all(
                abs(posteriors[name] - reference[name]) <= tolerance
                for name in reference
            ):
                return round_number
        return None

    points: List[Tuple[float, float, float]] = []
    for send_probability in send_probabilities:
        iteration_counts: List[int] = []
        converged_count = 0
        for repetition in range(repetitions):
            engine = EmbeddedMessagePassing(
                figure4_feedbacks(signs=signs),
                priors=priors,
                delta=delta,
                transport=MessageTransport(
                    send_probability, seed=seed + repetition * 1009
                ),
                options=EmbeddedOptions(max_rounds=max_rounds),
            )
            rounds = rounds_to_reach_reference(engine)
            if rounds is None:
                iteration_counts.append(max_rounds)
            else:
                iteration_counts.append(rounds)
                converged_count += 1
        points.append(
            (
                send_probability,
                sum(iteration_counts) / len(iteration_counts),
                converged_count / repetitions,
            )
        )
    return FaultToleranceResult(
        points=points, max_rounds=max_rounds, reference_posteriors=reference
    )


@dataclass
class AdversarialFeedbackResult:
    """Quarantine speed of the assessment layer under colluding liars.

    One point per liar fraction: ``(fraction, mean rounds until every
    evidence-covered erroneous mapping sits below θ, fraction of attributes
    fully quarantined, mean false-quarantine count at the fixed point)``.
    """

    points: List[Tuple[float, float, float, float]]
    theta: float
    max_rounds: int

    def point_at(self, liar_fraction: float) -> Tuple[float, float, float, float]:
        for point in self.points:
            if abs(point[0] - liar_fraction) < 1e-9:
                return point
        raise EvaluationError(
            f"no adversarial feedback point for liar fraction {liar_fraction}"
        )

    def rounds_at(self, liar_fraction: float) -> float:
        return self.point_at(liar_fraction)[1]

    def quarantined_at(self, liar_fraction: float) -> float:
        return self.point_at(liar_fraction)[2]


def _flip_feedback(feedback: Feedback) -> Feedback:
    """A liar's report: positive evidence claimed negative and vice versa."""
    if feedback.kind is FeedbackKind.POSITIVE:
        return replace(feedback, kind=FeedbackKind.NEGATIVE)
    if feedback.kind is FeedbackKind.NEGATIVE:
        return replace(feedback, kind=FeedbackKind.POSITIVE)
    return feedback


def run_adversarial_feedback(
    liar_fractions: Sequence[float] = (0.0, 0.1, 0.25),
    peer_count: int = 20,
    attribute_count: int = 4,
    error_rate: float = 0.25,
    ttl: int = 3,
    theta: float = 0.5,
    priors: float = 0.7,
    delta: float = 0.1,
    max_rounds: int = 60,
    seed: int = 0,
) -> AdversarialFeedbackResult:
    """Measure rounds-until-θ-quarantine under colluding lying peers.

    The message-loss experiment (Figure 11) stresses the *transport*; this
    one stresses the *feedback* itself — the paper's Byzantine concern that
    peers may report wrong cycle/path evidence.  A seeded fraction of peers
    colludes: every feedback such a peer originates has its sign flipped
    (positive evidence reported negative and vice versa) before the
    embedded engine runs.  For each attribute of a generated scenario the
    engine is advanced round by round and the experiment records the first
    round at which every *evidence-covered* genuinely-erroneous mapping has
    posterior ≤ θ — the round the network would quarantine its faulty
    links.  Attributes whose erroneous mappings never all drop below θ
    within ``max_rounds`` count as not quarantined (liars succeeded in
    shielding an erroneous mapping).  ``false_quarantines`` counts healthy
    mappings pushed below θ at the fixed point — liars framing good links.

    Everything is deterministic: the scenario, the liar set per fraction
    (seeded from ``seed``) and the lossless engine runs.
    """
    scenario = generate_scenario(
        peer_count=peer_count,
        attribute_count=attribute_count,
        error_rate=error_rate,
        seed=seed,
    )
    network = scenario.network
    peers = sorted(network.peer_names)

    # Structures (and thus honest evidence) are fraction-independent:
    # gather once per attribute, flip per liar set.
    attributes = sorted({attribute for _, attribute in scenario.ground_truth})
    evidence = {
        attribute: analyze_network(network, attribute, ttl=ttl)
        for attribute in attributes
    }

    points: List[Tuple[float, float, float, float]] = []
    for fraction in liar_fractions:
        liar_count = int(round(fraction * peer_count))
        rng = random.Random(seed * 7919 + round(fraction * 1000))
        liars = set(rng.sample(peers, liar_count)) if liar_count else set()

        rounds_needed: List[int] = []
        quarantined_attributes = 0
        measured_attributes = 0
        false_quarantines: List[int] = []
        for attribute in attributes:
            feedbacks = [
                _flip_feedback(f) if f.origin in liars else f
                for f in evidence[attribute].feedbacks
            ]
            engine = EmbeddedMessagePassing(
                feedbacks,
                priors=priors,
                delta=delta,
                options=EmbeddedOptions(max_rounds=max_rounds),
            )
            erroneous = set(scenario.erroneous_mappings(attribute))
            posteriors = engine.posteriors()
            covered = erroneous & set(posteriors)
            if not covered:
                continue  # nothing quarantinable is evidence-covered
            measured_attributes += 1
            quarantine_round: Optional[int] = None
            for round_number in range(1, max_rounds + 1):
                engine.run_round()
                posteriors = engine.posteriors()
                if all(posteriors[name] <= theta for name in covered):
                    quarantine_round = round_number
                    break
            if quarantine_round is None:
                rounds_needed.append(max_rounds)
            else:
                rounds_needed.append(quarantine_round)
                quarantined_attributes += 1
            healthy = set(posteriors) - erroneous
            false_quarantines.append(
                sum(1 for name in healthy if posteriors[name] <= theta)
            )
        if not measured_attributes:
            raise EvaluationError(
                "adversarial feedback scenario produced no evidence-covered "
                "erroneous mappings; raise error_rate or peer_count"
            )
        points.append(
            (
                fraction,
                sum(rounds_needed) / len(rounds_needed),
                quarantined_attributes / measured_attributes,
                sum(false_quarantines) / len(false_quarantines),
            )
        )
    return AdversarialFeedbackResult(
        points=points, theta=theta, max_rounds=max_rounds
    )


# ---------------------------------------------------------------------------
# E6 — Figure 12: precision on the (synthetic) EON bibliography schemas
# ---------------------------------------------------------------------------


@dataclass
class RealWorldResult:
    """Precision / recall vs θ on the synthetic EON scenario (Figure 12)."""

    thetas: Tuple[float, ...]
    metrics: Dict[float, DetectionMetrics]
    correspondence_count: int
    erroneous_count: int
    posteriors: Dict[Tuple[str, str], float]
    scenario: EONScenario

    def precision_at(self, theta: float) -> float:
        return self.metrics[theta].precision

    def recall_at(self, theta: float) -> float:
        return self.metrics[theta].recall


def run_real_world(
    thetas: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    ttl: int = 3,
    delta: float = 0.1,
    priors: float = 0.5,
    max_rounds: int = 30,
    alignment_threshold: float = 0.55,
    scenario: Optional[EONScenario] = None,
) -> RealWorldResult:
    """Reproduce Figure 12 on the synthetic EON bibliography network.

    For every peer and every attribute of its schema, the peer probes its
    neighbourhood (cycles through itself up to ``ttl`` mappings), evaluates
    the feedback for that attribute, runs the embedded message passing with
    uniform priors, and keeps the posterior of its *own* outgoing mappings —
    the decision each peer can make locally.  Detection is then scored
    against the alignment ground truth for every θ.
    """
    scenario = scenario or build_eon_network(threshold=alignment_threshold)
    network = scenario.network
    posteriors: Dict[Tuple[str, str], float] = {}
    for peer in network.peers:
        cycles = find_cycles_through(network, peer.name, ttl=ttl)
        if not cycles:
            continue
        own_mappings = {m.name for m in peer.outgoing_mappings}
        for attribute in peer.schema.attribute_names:
            feedbacks = []
            for index, cycle in enumerate(cycles, start=1):
                feedback = feedback_from_cycle(
                    cycle, attribute, identifier=f"{peer.name}-f{index}"
                )
                if feedback.is_informative:
                    feedbacks.append(feedback)
            if not feedbacks:
                continue
            engine = EmbeddedMessagePassing(
                feedbacks,
                priors=priors,
                delta=delta,
                options=EmbeddedOptions(max_rounds=max_rounds, record_history=False),
            )
            result = engine.run()
            for mapping_name, posterior in result.posteriors.items():
                if mapping_name not in own_mappings:
                    continue
                if (mapping_name, attribute) not in scenario.ground_truth:
                    continue
                posteriors[(mapping_name, attribute)] = posterior

    metric_points = precision_curve(posteriors, scenario.ground_truth, thetas)
    return RealWorldResult(
        thetas=tuple(thetas),
        metrics={theta: metrics for theta, metrics in metric_points},
        correspondence_count=scenario.correspondence_count,
        erroneous_count=scenario.erroneous_count,
        posteriors=posteriors,
        scenario=scenario,
    )


# ---------------------------------------------------------------------------
# E7 — ablation: probabilistic inference vs the Chatty-Web heuristic
# ---------------------------------------------------------------------------


@dataclass
class BaselineComparisonResult:
    """Probabilistic detector vs the deductive Chatty-Web baseline."""

    probabilistic: DetectionMetrics
    baseline: DetectionMetrics
    probabilistic_flagged: Tuple[str, ...]
    baseline_flagged: Tuple[str, ...]


def run_baseline_comparison(theta: float = 0.5, delta: float = 0.1) -> BaselineComparisonResult:
    """Compare the two detectors on the introductory example (§6).

    Ground truth: only ``p2→p4`` is erroneous for ``Creator``.  The paper
    notes its earlier heuristic would disqualify all three mappings on the
    negative structures while the probabilistic scheme flags only the truly
    faulty one.
    """
    feedbacks = intro_example_feedbacks()
    ground_truth = {
        ("p1->p2", INTRO_ATTRIBUTE): True,
        ("p2->p3", INTRO_ATTRIBUTE): True,
        ("p3->p4", INTRO_ATTRIBUTE): True,
        ("p4->p1", INTRO_ATTRIBUTE): True,
        ("p2->p4", INTRO_ATTRIBUTE): False,
    }
    engine = EmbeddedMessagePassing(feedbacks, priors=0.5, delta=delta)
    result = engine.run()
    probabilistic_posteriors = {
        (name, INTRO_ATTRIBUTE): value for name, value in result.posteriors.items()
    }
    baseline_posteriors = chatty_web_baseline(feedbacks)
    probabilistic_metrics = score_detection(
        probabilistic_posteriors, ground_truth, theta=theta
    )
    baseline_metrics = score_detection(baseline_posteriors, ground_truth, theta=theta)
    return BaselineComparisonResult(
        probabilistic=probabilistic_metrics,
        baseline=baseline_metrics,
        probabilistic_flagged=tuple(
            sorted(
                name
                for (name, _), value in probabilistic_posteriors.items()
                if value <= theta
            )
        ),
        baseline_flagged=tuple(
            sorted(
                name
                for (name, _), value in baseline_posteriors.items()
                if value <= theta
            )
        ),
    )


# ---------------------------------------------------------------------------
# E8 — ablation: periodic vs lazy schedules
# ---------------------------------------------------------------------------


@dataclass
class ScheduleComparisonResult:
    """Periodic vs lazy schedule: rounds and messages to convergence."""

    periodic_rounds: int
    periodic_messages: int
    lazy_rounds: int
    lazy_messages: int
    periodic_posteriors: Dict[str, float]
    lazy_posteriors: Dict[str, float]


def run_schedule_comparison(
    delta: float = 0.1,
    priors: float = 0.5,
    query_count: int = 60,
    tolerance: float = 1e-3,
    seed: int = 0,
) -> ScheduleComparisonResult:
    """Compare the two schedules of §4.3 on the introductory example.

    The periodic schedule runs proactive rounds; the lazy schedule
    piggybacks on a synthetic query workload (random origins, the river
    query of §1.2), exchanging messages only for the mappings each query
    actually traverses.
    """
    network = intro_example_network(with_records=True)
    rng = random.Random(seed)

    periodic_engine = EmbeddedMessagePassing(
        intro_example_feedbacks(),
        priors=priors,
        delta=delta,
        options=EmbeddedOptions(max_rounds=100, tolerance=tolerance),
    )
    periodic = PeriodicSchedule(periodic_engine, tau=1.0)
    periodic_report = periodic.run(periods=100, tolerance=tolerance)

    lazy_engine = EmbeddedMessagePassing(
        intro_example_feedbacks(),
        priors=priors,
        delta=delta,
        options=EmbeddedOptions(max_rounds=1000, tolerance=tolerance),
    )
    lazy = LazySchedule(lazy_engine)
    router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
    traces = []
    for _ in range(query_count):
        origin = rng.choice(network.peer_names)
        query = Query.select_project(
            origin,
            project=["Creator"],
            where={"Subject": substring_predicate("river")},
        )
        traces.append(router.route(query, origin=origin))
    lazy_report = lazy.process_traces(traces, tolerance=tolerance)

    return ScheduleComparisonResult(
        periodic_rounds=periodic_report.rounds,
        periodic_messages=periodic_report.messages_attempted,
        lazy_rounds=lazy_report.rounds,
        lazy_messages=lazy_report.messages_attempted,
        periodic_posteriors=periodic_engine.posteriors(),
        lazy_posteriors=lazy_engine.posteriors(),
    )


# ---------------------------------------------------------------------------
# EX — engine throughput: loop vs vectorized sum–product backends
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EngineThroughputPoint:
    """Timing of both backends on one generated PDMS factor graph.

    ``edges_per_second`` counts *directed* messages: every variable–factor
    edge carries two messages per synchronous iteration.
    """

    peer_count: int
    variable_count: int
    factor_count: int
    edge_count: int
    loop_iterations: int
    vectorized_iterations: int
    loop_seconds: float
    vectorized_seconds: float
    max_marginal_difference: float

    @staticmethod
    def _rate(edge_count: int, iterations: int, seconds: float) -> float:
        if seconds <= 0.0:
            return float("inf")
        return 2.0 * edge_count * iterations / seconds

    @property
    def loop_edges_per_second(self) -> float:
        return self._rate(self.edge_count, self.loop_iterations, self.loop_seconds)

    @property
    def vectorized_edges_per_second(self) -> float:
        return self._rate(
            self.edge_count, self.vectorized_iterations, self.vectorized_seconds
        )

    @property
    def speedup(self) -> float:
        loop_rate = self.loop_edges_per_second
        vectorized_rate = self.vectorized_edges_per_second
        if loop_rate == float("inf") and vectorized_rate == float("inf"):
            return 1.0
        if vectorized_rate == float("inf"):
            return float("inf")
        if loop_rate == float("inf"):
            return 0.0
        return vectorized_rate / loop_rate


@dataclass(frozen=True)
class EngineThroughputResult:
    """Throughput of the two backends across network sizes."""

    points: Tuple[EngineThroughputPoint, ...]

    def point_for(self, peer_count: int) -> EngineThroughputPoint:
        for point in self.points:
            if point.peer_count == peer_count:
                return point
        raise KeyError(f"no throughput point for {peer_count} peers")


def throughput_feedbacks(peer_count: int, ttl: int = 3, attribute_count: int = 10):
    """Informative cycle feedback of the benchmark scale-free PDMS.

    Generates the same scenario as :func:`throughput_graph` and returns the
    informative feedbacks of the first attribute that has any, so both the
    centralised and the embedded throughput runs measure the same evidence.
    """
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=peer_count,
        attribute_count=attribute_count,
        error_rate=0.15,
        seed=peer_count,
    )
    for attribute in scenario.network.attribute_universe():
        evidence = analyze_network(
            scenario.network, attribute, ttl=ttl, include_parallel_paths=False
        )
        if evidence.informative_feedbacks:
            return evidence.informative_feedbacks
    raise EvaluationError(
        f"no attribute of the {peer_count}-peer scenario produced informative "
        "feedback; increase ttl or the error rate"
    )


def throughput_graph(peer_count: int, ttl: int = 3, attribute_count: int = 10):
    """Build the benchmark factor graph for a scale-free PDMS of ``peer_count``.

    Picks the first attribute that yields informative cycle feedback, so the
    returned graph is never empty.  Returns the
    :class:`~repro.core.pdms_factor_graph.PDMSFactorGraph`.
    """
    feedbacks = throughput_feedbacks(
        peer_count, ttl=ttl, attribute_count=attribute_count
    )
    return build_factor_graph(feedbacks, priors=0.5, attribute=feedbacks[0].attribute)


def _time_backend(graph, backend: str, max_iterations: int, repeats: int):
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run_sum_product(
            graph, max_iterations=max_iterations, backend=backend
        )
        best = min(best, time.perf_counter() - start)
    return result, best


def run_engine_throughput(
    peer_counts: Sequence[int] = (8, 16, 32, 64, 128),
    ttl: int = 3,
    max_iterations: int = 50,
    repeats: int = 3,
) -> EngineThroughputResult:
    """Measure directed messages per second of both sum–product backends.

    For each peer count a scale-free PDMS is generated, its cycle feedback
    is gathered and encoded as a factor graph, and the same run (identical
    options, reliable transport) is timed on the ``"loops"`` and
    ``"vectorized"`` backends.  Each timing keeps the best of ``repeats``
    runs to damp scheduler noise, and the worst marginal disagreement is
    recorded as an online equivalence check.
    """
    points: List[EngineThroughputPoint] = []
    for peer_count in peer_counts:
        pdms_graph = throughput_graph(peer_count, ttl=ttl)
        graph = pdms_graph.graph
        loop_result, loop_seconds = _time_backend(
            graph, "loops", max_iterations, repeats
        )
        vector_result, vector_seconds = _time_backend(
            graph, "vectorized", max_iterations, repeats
        )
        worst = max(
            float(np.abs(loop_result.marginals[name] - vector_result.marginals[name]).max())
            for name in loop_result.marginals
        )
        points.append(
            EngineThroughputPoint(
                peer_count=peer_count,
                variable_count=len(graph.variables),
                factor_count=len(graph.factors),
                edge_count=graph.edge_count(),
                loop_iterations=loop_result.iterations,
                vectorized_iterations=vector_result.iterations,
                loop_seconds=loop_seconds,
                vectorized_seconds=vector_seconds,
                max_marginal_difference=worst,
            )
        )
    return EngineThroughputResult(points=tuple(points))


# ---------------------------------------------------------------------------
# EX — embedded throughput: dict-state vs array-state decentralised rounds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmbeddedThroughputPoint:
    """Timing of both embedded state backends on one generated PDMS.

    The two engines run the same fixed number of full decentralised rounds
    over the same feedback evidence with identically seeded transports, so
    they exchange the same remote messages (and, under loss, drop the same
    ones) — the posteriors must agree to floating-point accuracy, which
    ``max_posterior_difference`` records as an online equivalence check.
    """

    peer_count: int
    mapping_count: int
    feedback_count: int
    remote_messages_per_round: int
    rounds: int
    dict_seconds: float
    array_seconds: float
    max_posterior_difference: float

    @staticmethod
    def _rate(rounds: int, seconds: float) -> float:
        if seconds <= 0.0:
            return float("inf")
        return rounds / seconds

    @property
    def dict_rounds_per_second(self) -> float:
        return self._rate(self.rounds, self.dict_seconds)

    @property
    def array_rounds_per_second(self) -> float:
        return self._rate(self.rounds, self.array_seconds)

    @property
    def speedup(self) -> float:
        if self.array_seconds <= 0.0:
            return float("inf")
        if self.dict_seconds <= 0.0:
            return 0.0
        return self.dict_seconds / self.array_seconds


@dataclass(frozen=True)
class EmbeddedThroughputResult:
    """Embedded round throughput of the two state backends across sizes."""

    points: Tuple[EmbeddedThroughputPoint, ...]
    send_probability: float = 1.0

    def point_for(self, peer_count: int) -> EmbeddedThroughputPoint:
        for point in self.points:
            if point.peer_count == peer_count:
                return point
        raise KeyError(f"no embedded throughput point for {peer_count} peers")


def _time_embedded_rounds(
    feedbacks,
    backend: str,
    rounds: int,
    repeats: int,
    send_probability: float,
    seed: int,
    executor: object = None,
):
    """Best-of-``repeats`` wall time of ``rounds`` embedded rounds.

    A fresh engine (and freshly seeded transport) is built per repetition so
    every timed run replays the same message schedule; construction is kept
    outside the timed section — the round loop is what the backends differ
    in.
    """
    best = float("inf")
    engine = None
    for _ in range(max(1, repeats)):
        engine = EmbeddedMessagePassing(
            feedbacks,
            priors=0.5,
            delta=0.1,
            transport=MessageTransport(send_probability, seed=seed),
            options=EmbeddedOptions(record_history=False),
            backend=backend,
            executor=executor,
        )
        start = time.perf_counter()
        for _ in range(rounds):
            engine.run_round()
        best = min(best, time.perf_counter() - start)
    return engine, best


def run_embedded_throughput(
    peer_counts: Sequence[int] = (8, 16, 32, 64),
    ttl: int = 3,
    rounds: int = 25,
    repeats: int = 3,
    send_probability: float = 1.0,
    seed: int = 0,
    executor: object = None,
) -> EmbeddedThroughputResult:
    """Measure embedded rounds per second of the dict vs array state backends.

    For each peer count the cycle feedback of a scale-free PDMS is gathered
    once, then the same fixed-round run is timed on ``backend="dicts"`` (the
    PR 1 per-message dict state) and ``backend="arrays"`` (the stacked
    matrices).  ``send_probability < 1`` exercises the lossy path: both
    transports are seeded identically, so the drop pattern — and therefore
    the posteriors — must still agree.  ``executor`` selects the array
    backend's plan executor (``"numpy"`` / ``"threaded"``).
    """
    points: List[EmbeddedThroughputPoint] = []
    for peer_count in peer_counts:
        feedbacks = throughput_feedbacks(peer_count, ttl=ttl)
        dict_engine, dict_seconds = _time_embedded_rounds(
            feedbacks, "dicts", rounds, repeats, send_probability, seed
        )
        array_engine, array_seconds = _time_embedded_rounds(
            feedbacks, "arrays", rounds, repeats, send_probability, seed,
            executor=executor,
        )
        dict_posteriors = dict_engine.posteriors()
        array_posteriors = array_engine.posteriors()
        worst = max(
            abs(dict_posteriors[name] - array_posteriors[name])
            for name in dict_posteriors
        )
        points.append(
            EmbeddedThroughputPoint(
                peer_count=peer_count,
                mapping_count=len(array_engine.mapping_names),
                feedback_count=len(feedbacks),
                remote_messages_per_round=array_engine.remote_message_count,
                rounds=rounds,
                dict_seconds=dict_seconds,
                array_seconds=array_seconds,
                max_posterior_difference=worst,
            )
        )
    return EmbeddedThroughputResult(
        points=tuple(points), send_probability=send_probability
    )


# ---------------------------------------------------------------------------
# EX — assessor amortization: probe-once structure cache across attributes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AssessorAmortizationResult:
    """Cost of ``assess_all_attributes`` across the three assessor modes.

    The structure cache collapses the per-attribute cycle/parallel-path
    enumerations into a single probe (``cached_probe_count`` must be 1); the
    batched engine further collapses the per-attribute engine constructions
    into one compiled plan (``batched_plan_compiles`` must be 1) and runs
    every attribute on one stacked engine.  All three timings are full
    passes including the probe, so the numbers compose: ``speedup`` is what
    the cache buys over probe-per-attribute, ``batched_speedup`` what the
    stacked engine buys on top of the cache.
    """

    peer_count: int
    attribute_count: int
    ttl: int
    cached_probe_count: int
    uncached_probe_count: int
    cached_seconds: float
    uncached_seconds: float
    max_posterior_difference: float
    batched_seconds: float = 0.0
    batched_probe_count: int = 0
    batched_plan_compiles: int = 0
    batched_max_posterior_difference: float = 0.0

    @property
    def probe_amortization(self) -> float:
        if self.cached_probe_count == 0:
            return float("inf")
        return self.uncached_probe_count / self.cached_probe_count

    @property
    def speedup(self) -> float:
        if self.cached_seconds <= 0.0:
            return float("inf")
        return self.uncached_seconds / self.cached_seconds

    @property
    def batched_speedup(self) -> float:
        """Batched stacked engine vs sequential engines on the warm cache."""
        if self.batched_seconds <= 0.0:
            return float("inf")
        return self.cached_seconds / self.batched_seconds


def run_assessor_amortization(
    peer_count: int = 32,
    attribute_count: int = 10,
    ttl: int = 3,
    error_rate: float = 0.15,
    seed: Optional[int] = 0,
) -> AssessorAmortizationResult:
    """Measure the probe-once cache and the batched engine on a full pass.

    Runs ``assess_all_attributes`` on the same generated scale-free PDMS
    three times — with ``use_structure_cache=False`` (the PR 1
    probe-per-attribute behaviour), with the cache but sequential
    per-attribute engines (``use_batched_engine=False``, the PR 2
    behaviour), and with the batched all-attribute engine (the default) —
    and compares probe counts, plan compiles, wall time and posteriors.
    """
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=peer_count,
        attribute_count=attribute_count,
        error_rate=error_rate,
        seed=peer_count,
    )
    network = scenario.network
    attributes = network.attribute_universe()

    cached = MappingQualityAssessor(
        network,
        delta=None,
        ttl=ttl,
        include_parallel_paths=False,
        seed=seed,
        use_batched_engine=False,
    )
    start = time.perf_counter()
    cached_assessments = cached.assess_all_attributes()
    cached_seconds = time.perf_counter() - start

    uncached = MappingQualityAssessor(
        network,
        delta=None,
        ttl=ttl,
        include_parallel_paths=False,
        seed=seed,
        use_structure_cache=False,
        use_batched_engine=False,
    )
    start = time.perf_counter()
    uncached_assessments = uncached.assess_all_attributes()
    uncached_seconds = time.perf_counter() - start

    batched = MappingQualityAssessor(
        network, delta=None, ttl=ttl, include_parallel_paths=False, seed=seed
    )
    start = time.perf_counter()
    batched_assessments = batched.assess_all_attributes()
    batched_seconds = time.perf_counter() - start

    worst = 0.0
    batched_worst = 0.0
    for attribute in attributes:
        cached_posteriors = cached_assessments[attribute].posteriors
        uncached_posteriors = uncached_assessments[attribute].posteriors
        batched_posteriors = batched_assessments[attribute].posteriors
        for name, value in cached_posteriors.items():
            worst = max(worst, abs(value - uncached_posteriors[name]))
            batched_worst = max(batched_worst, abs(value - batched_posteriors[name]))

    return AssessorAmortizationResult(
        peer_count=peer_count,
        attribute_count=len(attributes),
        ttl=ttl,
        cached_probe_count=cached.structure_cache.statistics.probes,
        # Without the cache every assessed attribute probes from scratch.
        uncached_probe_count=len(attributes),
        cached_seconds=cached_seconds,
        uncached_seconds=uncached_seconds,
        max_posterior_difference=worst,
        batched_seconds=batched_seconds,
        batched_probe_count=batched.structure_cache.statistics.probes,
        batched_plan_compiles=batched.plan_compile_count,
        batched_max_posterior_difference=batched_worst,
    )


# ---------------------------------------------------------------------------
# EX — batched assessment: one stacked engine vs engine-per-attribute sweeps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchedAssessmentPoint:
    """Timing of a multi-attribute sweep on both assessment engines.

    Both assessors share a warm structure cache (the probe is excluded from
    the timed region — it is identical on both sides), so the comparison
    isolates what this optimisation targets: per-attribute engine
    construction plus the message-passing rounds.  The posteriors of the two
    paths must agree to floating-point accuracy under identical seeds.
    """

    peer_count: int
    attribute_count: int
    structure_count: int
    mapping_count: int
    sequential_seconds: float
    batched_seconds: float
    plan_compiles: int
    max_posterior_difference: float

    @property
    def speedup(self) -> float:
        if self.batched_seconds <= 0.0:
            return float("inf")
        return self.sequential_seconds / self.batched_seconds

    @property
    def sequential_attributes_per_second(self) -> float:
        if self.sequential_seconds <= 0.0:
            return float("inf")
        return self.attribute_count / self.sequential_seconds

    @property
    def batched_attributes_per_second(self) -> float:
        if self.batched_seconds <= 0.0:
            return float("inf")
        return self.attribute_count / self.batched_seconds


@dataclass(frozen=True)
class BatchedAssessmentResult:
    """Sweep timings of both engines across network sizes."""

    points: Tuple[BatchedAssessmentPoint, ...]
    send_probability: float = 1.0

    def point_for(self, peer_count: int) -> BatchedAssessmentPoint:
        for point in self.points:
            if point.peer_count == peer_count:
                return point
        raise KeyError(f"no batched assessment point for {peer_count} peers")


def run_batched_assessment(
    peer_counts: Sequence[int] = (16, 32),
    attribute_count: int = 10,
    ttl: int = 3,
    repeats: int = 3,
    send_probability: float = 1.0,
    error_rate: float = 0.15,
    seed: Optional[int] = 0,
    executor: object = None,
) -> BatchedAssessmentResult:
    """Measure ``assess_all_attributes`` on the batched vs sequential engine.

    For each peer count a scale-free PDMS is generated and the full
    multi-attribute sweep is timed (best of ``repeats``, fresh assessor per
    repetition, structure cache warmed outside the timed region) once with
    one ``BatchedEmbeddedMessagePassing`` over the shared compiled plan and
    once with a sequential ``EmbeddedMessagePassing`` per attribute.
    ``send_probability < 1`` exercises the lossy path: both sides seed one
    transport per attribute identically, so the posteriors must still agree.
    """
    points: List[BatchedAssessmentPoint] = []
    for peer_count in peer_counts:
        scenario = generate_scenario(
            topology="scale-free",
            peer_count=peer_count,
            attribute_count=attribute_count,
            error_rate=error_rate,
            seed=peer_count,
        )
        network = scenario.network
        attributes = network.attribute_universe()

        def time_sweep(use_batched: bool):
            best = float("inf")
            assessor = None
            assessments = None
            for _ in range(max(1, repeats)):
                assessor = MappingQualityAssessor(
                    network,
                    delta=None,
                    ttl=ttl,
                    include_parallel_paths=False,
                    seed=seed,
                    send_probability=send_probability,
                    use_batched_engine=use_batched,
                    executor=executor,
                )
                assessor.structure_cache.structures()
                start = time.perf_counter()
                assessments = assessor.assess_all_attributes()
                best = min(best, time.perf_counter() - start)
            return assessor, assessments, best

        batched, batched_assessments, batched_seconds = time_sweep(True)
        _, sequential_assessments, sequential_seconds = time_sweep(False)

        worst = 0.0
        for attribute in attributes:
            sequential_posteriors = sequential_assessments[attribute].posteriors
            batched_posteriors = batched_assessments[attribute].posteriors
            for name, value in sequential_posteriors.items():
                worst = max(worst, abs(value - batched_posteriors[name]))

        cycles, parallel_paths = batched.structure_cache.structures()
        mapping_names = {
            name
            for structure in (*cycles, *parallel_paths)
            for name in structure.mapping_names
        }
        points.append(
            BatchedAssessmentPoint(
                peer_count=peer_count,
                attribute_count=len(attributes),
                structure_count=len(cycles) + len(parallel_paths),
                mapping_count=len(mapping_names),
                sequential_seconds=sequential_seconds,
                batched_seconds=batched_seconds,
                plan_compiles=batched.plan_compile_count,
                max_posterior_difference=worst,
            )
        )
    return BatchedAssessmentResult(
        points=tuple(points), send_probability=send_probability
    )


# ---------------------------------------------------------------------------
# EX — decentralised assessment: batched per-origin lanes vs engine-per-origin
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocalAssessmentPoint:
    """Timing of the all-origins §4.5 decision on both assessment engines.

    Both assessors share a warm per-origin neighbourhood cache (the probes
    are excluded from the timed region — they are identical on both sides),
    so the comparison isolates what the batching targets: per-origin engine
    construction plus the message-passing rounds.  The local views of the
    two paths must agree to floating-point accuracy under identical seeds.
    """

    peer_count: int
    origin_count: int
    attribute: str
    structure_count: int
    mapping_count: int
    sequential_seconds: float
    batched_seconds: float
    plan_compiles: int
    probes: int
    max_posterior_difference: float

    @property
    def speedup(self) -> float:
        if self.batched_seconds <= 0.0:
            return float("inf")
        return self.sequential_seconds / self.batched_seconds

    @property
    def sequential_origins_per_second(self) -> float:
        if self.sequential_seconds <= 0.0:
            return float("inf")
        return self.origin_count / self.sequential_seconds

    @property
    def batched_origins_per_second(self) -> float:
        if self.batched_seconds <= 0.0:
            return float("inf")
        return self.origin_count / self.batched_seconds


@dataclass(frozen=True)
class LocalAssessmentResult:
    """All-origins local-assessment timings across network sizes."""

    points: Tuple[LocalAssessmentPoint, ...]
    send_probability: float = 1.0

    def point_for(self, peer_count: int) -> LocalAssessmentPoint:
        for point in self.points:
            if point.peer_count == peer_count:
                return point
        raise EvaluationError(
            f"no local assessment point for {peer_count} peers"
        )


def run_local_assessment(
    peer_counts: Sequence[int] = (16, 32),
    attribute_count: int = 10,
    ttl: int = 3,
    repeats: int = 3,
    send_probability: float = 1.0,
    error_rate: float = 0.15,
    seed: Optional[int] = 0,
    executor: object = None,
) -> LocalAssessmentResult:
    """Measure ``assess_local_all`` batched vs per-origin sequential engines.

    For each peer count a scale-free PDMS is generated and the full
    all-origins decentralised decision for one attribute is timed (best of
    ``repeats``, fresh assessor per repetition, per-origin neighbourhood
    cache warmed outside the timed region) once as one stacked
    per-origin-lane :class:`~repro.core.batched.BatchedEmbeddedMessagePassing`
    run and once as one sequential ``EmbeddedMessagePassing`` per origin.
    ``send_probability < 1`` exercises the lossy path: both sides seed one
    transport per origin identically, so the local views must still agree.
    """
    points: List[LocalAssessmentPoint] = []
    for peer_count in peer_counts:
        scenario = generate_scenario(
            topology="scale-free",
            peer_count=peer_count,
            attribute_count=attribute_count,
            error_rate=error_rate,
            seed=peer_count,
        )
        network = scenario.network
        attribute = network.attribute_universe()[0]

        def time_local_sweep(use_batched: bool):
            best = float("inf")
            assessor = None
            views = None
            for _ in range(max(1, repeats)):
                assessor = MappingQualityAssessor(
                    network,
                    delta=None,
                    ttl=ttl,
                    include_parallel_paths=False,
                    seed=seed,
                    send_probability=send_probability,
                    use_batched_engine=use_batched,
                    executor=executor,
                )
                for origin in network.peer_names:
                    assessor.neighborhood_cache.structures_for(origin)
                start = time.perf_counter()
                views = assessor.assess_local_all(attribute)
                best = min(best, time.perf_counter() - start)
            return assessor, views, best

        batched, batched_views, batched_seconds = time_local_sweep(True)
        _, sequential_views, sequential_seconds = time_local_sweep(False)

        worst = 0.0
        for origin, sequential_view in sequential_views.items():
            batched_view = batched_views[origin]
            if set(batched_view) != set(sequential_view):
                raise EvaluationError(
                    f"local views of origin {origin!r} disagree on the "
                    f"judged mapping set"
                )
            for name, value in sequential_view.items():
                worst = max(worst, abs(value - batched_view[name]))

        structure_count = sum(
            len(cycles) + len(paths)
            for cycles, paths in (
                batched.neighborhood_cache.structures_for(origin)
                for origin in network.peer_names
            )
        )
        points.append(
            LocalAssessmentPoint(
                peer_count=peer_count,
                origin_count=len(network.peer_names),
                attribute=attribute,
                structure_count=structure_count,
                mapping_count=len(network.mapping_names),
                sequential_seconds=sequential_seconds,
                batched_seconds=batched_seconds,
                plan_compiles=batched.local_plan_compile_count,
                probes=batched.neighborhood_cache.statistics.probes,
                max_posterior_difference=worst,
            )
        )
    return LocalAssessmentResult(
        points=tuple(points), send_probability=send_probability
    )


# ---------------------------------------------------------------------------
# EX — long-cycle throughput: count-space kernels vs the loop reference
# ---------------------------------------------------------------------------


def long_cycle_network(
    cycle_length: int,
    rings: int = 6,
    attribute_count: int = 6,
    seed: int = 0,
):
    """A chain-of-peers benchmark PDMS made of long mapping rings.

    ``rings`` disjoint directed rings of ``cycle_length`` peers each — every
    ring closes a chain of identity mappings into one simple cycle of
    ``cycle_length`` hops, the structure family the count-space kernels
    exist for.  The first mapping of every *odd* ring is fully corrupted
    (each correspondence retargeted), so half the rings produce negative
    cycle feedback and half positive: both CPT signs ride the long-arity
    buckets, and origins converge at different rounds (which is what makes
    the blocked engine's frozen-block compaction observable).
    """
    from ..generators.schemas import generate_schema_family
    from ..generators.topologies import identity_mapping
    from ..mapping.corruption import corrupt_mapping_in_place
    from ..pdms.network import PDMSNetwork
    from ..pdms.peer import Peer

    if cycle_length < 2:
        raise EvaluationError(
            f"a mapping ring needs at least 2 peers, got {cycle_length}"
        )
    if rings < 1:
        raise EvaluationError(f"need at least one ring, got {rings}")
    schemas, _ = generate_schema_family(
        cycle_length * rings, attribute_count=attribute_count, seed=seed
    )
    network = PDMSNetwork(name=f"long-cycle-{cycle_length}x{rings}", directed=True)
    peers = [Peer(schema.name, schema) for schema in schemas]
    for peer in peers:
        network.add_peer(peer)
    rng = random.Random(seed)
    for ring in range(rings):
        members = peers[ring * cycle_length : (ring + 1) * cycle_length]
        first_mapping = None
        for index, peer in enumerate(members):
            mapping = identity_mapping(
                peer.schema, members[(index + 1) % cycle_length].schema
            )
            network.add_mapping(mapping, bidirectional=False)
            if first_mapping is None:
                first_mapping = network.mapping(mapping.name)
        if ring % 2 == 1:
            target_schema = network.peer(first_mapping.target).schema
            corrupt_mapping_in_place(
                first_mapping, target_schema, error_rate=1.0, rng=rng
            )
    return network


@dataclass(frozen=True)
class LongCycleThroughputPoint:
    """Timing and parity of one long-cycle workload on every engine family.

    The centralised loop reference executes the same count-space message
    expression scalar by scalar (``CountFactor.message_to``), so it runs at
    any arity too — what it lacks is the batching.  ``messages per second``
    counts directed factor-graph messages like the engine-throughput bench.
    """

    cycle_length: int
    ring_count: int
    structure_count: int
    edge_count: int
    iterations: int
    loop_seconds: float
    vectorized_seconds: float
    max_marginal_difference: float
    batched_max_difference: float
    blocked_max_difference: float
    count_kernel_buckets: int
    dense_kernel_buckets: int
    compaction_edge_counts: Tuple[int, ...]

    @property
    def loop_messages_per_second(self) -> float:
        if self.loop_seconds <= 0.0:
            return float("inf")
        return 2.0 * self.edge_count * self.iterations / self.loop_seconds

    @property
    def vectorized_messages_per_second(self) -> float:
        if self.vectorized_seconds <= 0.0:
            return float("inf")
        return 2.0 * self.edge_count * self.iterations / self.vectorized_seconds

    @property
    def speedup(self) -> float:
        if self.vectorized_seconds <= 0.0:
            return float("inf")
        return self.loop_seconds / self.vectorized_seconds


@dataclass(frozen=True)
class LongCycleThroughputResult:
    """Long-cycle engine comparison across cycle lengths."""

    points: Tuple[LongCycleThroughputPoint, ...]

    def point_for(self, cycle_length: int) -> LongCycleThroughputPoint:
        for point in self.points:
            if point.cycle_length == cycle_length:
                return point
        raise EvaluationError(
            f"no long-cycle point for cycle length {cycle_length}"
        )


def run_long_cycle_throughput(
    cycle_lengths: Sequence[int] = (20, 30, 40),
    rings: int = 6,
    attribute_count: int = 6,
    iterations: int = 25,
    repeats: int = 3,
    seed: int = 0,
    executor: object = None,
) -> LongCycleThroughputResult:
    """Measure the count-space kernels against the loop reference on long
    cycles, and verify every engine family agrees on them.

    For each cycle length a :func:`long_cycle_network` is built (half the
    rings positive, half negative) and

    * the centralised sum–product run over its factor graph is timed on the
      ``"loops"`` and ``"vectorized"`` backends for exactly ``iterations``
      synchronous rounds (tolerance pinned below any representable change,
      best of ``repeats``), recording the worst marginal disagreement;
    * the batched multi-attribute assessor runs the same evidence on one
      compiled :class:`~repro.core.batched.AssessmentPlan` — asserting the
      long buckets landed on the count kernels, i.e. no sequential
      fallback — and its posteriors are compared against the loop backend;
    * the blocked per-origin engine runs ``assess_local_all``, its local
      views are compared against the sequential ``assess_local`` reference,
      and its frozen-block compaction trajectory (per-round edge rows) is
      recorded.

    Structures above :data:`repro.constants.MAX_COMPILED_ARITY` made all of
    this impossible before the count-space kernels: the dense path refused
    to compile and the sequential fallback could not even build its
    ``(2,)**arity`` factor tables.
    """
    points: List[LongCycleThroughputPoint] = []
    for cycle_length in cycle_lengths:
        network = long_cycle_network(
            cycle_length,
            rings=rings,
            attribute_count=attribute_count,
            seed=seed,
        )
        attribute = network.attribute_universe()[0]
        evidence = analyze_network(
            network, attribute, ttl=cycle_length, include_parallel_paths=False
        )
        informative = evidence.informative_feedbacks
        if not informative:
            raise EvaluationError(
                f"the {cycle_length}-ring network produced no informative "
                "feedback"
            )
        graph = build_factor_graph(
            informative, priors=0.5, attribute=attribute
        ).graph

        def time_backend(backend: str):
            best = float("inf")
            result = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                result = run_sum_product(
                    graph,
                    max_iterations=iterations,
                    tolerance=1e-300,
                    backend=backend,
                )
                best = min(best, time.perf_counter() - start)
            return result, best

        loop_result, loop_seconds = time_backend("loops")
        vector_result, vector_seconds = time_backend("vectorized")
        worst = max(
            float(
                np.abs(
                    loop_result.marginals[name] - vector_result.marginals[name]
                ).max()
            )
            for name in loop_result.marginals
        )

        # Batched multi-attribute assessment on one compiled plan.
        assessor = MappingQualityAssessor(
            network,
            delta=0.1,
            ttl=cycle_length,
            include_parallel_paths=False,
            executor=executor,
        )
        assessment = assessor.assess_attributes([attribute])[attribute]
        plan = assessor.assessment_plan()
        if assessor.plan_compile_count != 1:
            raise EvaluationError(
                "expected exactly one plan compile, got "
                f"{assessor.plan_compile_count} (sequential fallback?)"
            )
        count_buckets = sum(1 for b in plan.batches if b.use_count_kernel)
        dense_buckets = len(plan.batches) - count_buckets
        if cycle_length >= COUNT_KERNEL_MIN_ARITY and not count_buckets:
            # Tripwire for the benchmark configurations: rings at or past
            # the crossover must ride the count kernels.  Shorter rings are
            # legitimately dense and still worth measuring.
            raise EvaluationError(
                f"no count-kernel bucket at cycle length {cycle_length}"
            )
        batched_worst = max(
            abs(
                posterior
                - loop_result.probability_correct(
                    variable_name_for(name, attribute)
                )
            )
            for name, posterior in assessment.posteriors.items()
        )

        # Blocked per-origin views vs the sequential per-origin reference.
        views = assessor.assess_local_all(attribute)
        compaction = assessor.last_local_round_edge_counts
        sequential = MappingQualityAssessor(
            network,
            delta=0.1,
            ttl=cycle_length,
            include_parallel_paths=False,
            use_batched_engine=False,
        )
        blocked_worst = 0.0
        for origin in network.peer_names:
            reference = sequential.assess_local(origin, attribute)
            view = views[origin]
            if set(view) != set(reference):
                raise EvaluationError(
                    f"local views of origin {origin!r} disagree on the "
                    "judged mapping set"
                )
            for name, value in reference.items():
                blocked_worst = max(blocked_worst, abs(value - view[name]))

        points.append(
            LongCycleThroughputPoint(
                cycle_length=cycle_length,
                ring_count=rings,
                structure_count=len(informative),
                edge_count=graph.edge_count(),
                iterations=iterations,
                loop_seconds=loop_seconds,
                vectorized_seconds=vector_seconds,
                max_marginal_difference=worst,
                batched_max_difference=batched_worst,
                blocked_max_difference=blocked_worst,
                count_kernel_buckets=count_buckets,
                dense_kernel_buckets=dense_buckets,
                compaction_edge_counts=tuple(compaction),
            )
        )
    return LongCycleThroughputResult(points=tuple(points))


# ---------------------------------------------------------------------------
# EX — probe throughput: origin-sharded discovery vs the serial walkers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProbeThroughputPoint:
    """Timing of one full-probe frontier on both discovery executors.

    Both executors run the *same* :class:`~repro.pdms.discovery.ProbePlan`
    (one snapshot, one frontier of cycles-through / paths-from work units),
    so the comparison isolates exactly what the sharding targets: the
    recursive enumeration work.  The merged structure lists must be
    canonically identical — the runner raises
    :class:`~repro.exceptions.EvaluationError` otherwise, so a reported
    speedup is always a speedup on verified-equal output.
    """

    peer_count: int
    ttl: int
    mapping_count: int
    work_units: int
    cycle_count: int
    parallel_path_count: int
    serial_seconds: float
    process_seconds: float
    sharded: bool
    workers: int
    #: Fault / retry / fallback accounting of the process-side executor
    #: (:meth:`~repro.reliability.ReliabilityStatistics.as_dict`, summed
    #: over the timing repeats) when it ran chaos-hardened; ``None`` for a
    #: plain fault-free pool.
    reliability: Optional[Dict[str, int]] = None

    @property
    def structure_count(self) -> int:
        return self.cycle_count + self.parallel_path_count

    @property
    def speedup(self) -> float:
        if self.process_seconds <= 0.0:
            return float("inf")
        return self.serial_seconds / self.process_seconds

    @property
    def serial_structures_per_second(self) -> float:
        if self.serial_seconds <= 0.0:
            return float("inf")
        return self.structure_count / self.serial_seconds

    @property
    def process_structures_per_second(self) -> float:
        if self.process_seconds <= 0.0:
            return float("inf")
        return self.structure_count / self.process_seconds


@dataclass(frozen=True)
class ProbeThroughputResult:
    """Full-probe discovery timings across network sizes."""

    points: Tuple[ProbeThroughputPoint, ...]
    ttl: int = 3

    def point_for(self, peer_count: int) -> ProbeThroughputPoint:
        for point in self.points:
            if point.peer_count == peer_count:
                return point
        raise EvaluationError(
            f"no probe throughput point for {peer_count} peers"
        )


def run_probe_throughput(
    peer_counts: Sequence[int] = (256,),
    ttl: int = 3,
    repeats: int = 2,
    probe_workers: Optional[int] = None,
    min_units: int = 4,
    shard_timeout: Optional[float] = None,
    fault_plan: object = None,
) -> ProbeThroughputResult:
    """Measure full-probe discovery: process-pool sharding vs serial walkers.

    For each peer count a scale-free PDMS is generated (mappings in both
    directions, the probe-heavy regime) and one full-probe plan — every
    peer's cycles-through and paths-from units at ``ttl`` — is executed on
    the :class:`~repro.pdms.discovery.SerialDiscoveryExecutor` and on the
    :class:`~repro.pdms.discovery.ProcessPoolDiscoveryExecutor` (best of
    ``repeats`` each).  ``probe_workers=None`` resolves through
    ``REPRO_PROBE_WORKERS`` / the CPU count; on a single-core machine the
    pool executor degenerates to an inlined serial run and the point records
    ``sharded=False``.  The merged structure lists of the two executors are
    compared structure-for-structure (canonical keys in merge order) and an
    :class:`~repro.exceptions.EvaluationError` is raised on any divergence.

    ``shard_timeout`` / ``fault_plan`` configure the process side's fault
    policy: the process executor resolves through
    :func:`~repro.pdms.discovery.resolve_discovery_executor`, so a chaos
    plan — passed explicitly or via ``REPRO_FAULT_PLAN`` — upgrades it to
    the :class:`~repro.reliability.ResilientDiscoveryExecutor` and the
    point records the faults survived (parity is still enforced, making
    this the CI chaos-smoke entry point).
    """
    workers = resolve_probe_workers(probe_workers)
    points: List[ProbeThroughputPoint] = []
    for peer_count in peer_counts:
        network = scale_free_network(peer_count, seed=peer_count)
        plan = plan_full_probe(network, ttl=ttl, include_parallel_paths=True)

        serial_executor = SerialDiscoveryExecutor()
        process_executor = resolve_discovery_executor(
            "process",
            workers=workers,
            shard_timeout=shard_timeout,
            fault_plan=fault_plan,
        )
        process_executor.min_units = min_units

        def best_of(executor):
            best_seconds = float("inf")
            run = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                run = executor.run(plan)
                best_seconds = min(best_seconds, time.perf_counter() - start)
            return run, best_seconds

        serial_run, serial_seconds = best_of(serial_executor)
        process_run, process_seconds = best_of(process_executor)

        serial_cycles, serial_paths = serial_run.merged()
        process_cycles, process_paths = process_run.merged()
        if [c.canonical_key() for c in serial_cycles] != [
            c.canonical_key() for c in process_cycles
        ]:
            raise EvaluationError(
                f"sharded and serial cycle sets diverge at {peer_count} peers"
            )
        if [p.canonical_key() for p in serial_paths] != [
            p.canonical_key() for p in process_paths
        ]:
            raise EvaluationError(
                f"sharded and serial parallel-path sets diverge at "
                f"{peer_count} peers"
            )

        survived = getattr(process_executor, "statistics", None)
        points.append(
            ProbeThroughputPoint(
                peer_count=peer_count,
                ttl=ttl,
                mapping_count=len(network.mapping_names),
                work_units=len(plan.work_units),
                cycle_count=len(serial_cycles),
                parallel_path_count=len(serial_paths),
                serial_seconds=serial_seconds,
                process_seconds=process_seconds,
                sharded=process_run.sharded,
                workers=process_run.workers,
                reliability=(
                    survived.as_dict() if survived is not None else None
                ),
            )
        )
    return ProbeThroughputResult(points=tuple(points), ttl=ttl)


# ---------------------------------------------------------------------------
# EX — gossip convergence: the event-sourced multi-node harness vs its oracle
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GossipConvergencePoint:
    """One N-peer gossip run to convergence under an unreliable transport.

    Every peer originates its own :class:`~repro.pdms.events.PeerAdded`
    and the :class:`~repro.pdms.events.MappingAdded` events of its
    outgoing mappings; entries spread through a
    :class:`~repro.pdms.gossip.SeededTransport` that drops, duplicates
    and reorders.  ``views_identical`` records that after convergence
    every node's decentralised ``assess_local`` decision equalled the
    single-process oracle's — exact float equality, enforced by the
    runner (it raises :class:`~repro.exceptions.EvaluationError` on any
    divergence, so a reported rate is always a rate on verified output).
    """

    peer_count: int
    mapping_count: int
    #: Distinct events originated across all peers (= entries in the log).
    event_count: int
    #: Gossip rounds to converge the PeerAdded phase / the MappingAdded
    #: phase (each phase runs to full convergence before the next starts,
    #: so mapping events never reference peers a replica hasn't seen).
    peer_rounds: int
    mapping_rounds: int
    #: Wall-clock of the gossip phases (origination + rounds), and the
    #: total deliveries applied across all replicas in that time.
    gossip_seconds: float
    deliveries_applied: int
    #: Journal accounting summed over all nodes, and transport accounting.
    duplicates_dropped: int
    deliveries_buffered: int
    messages_sent: int
    messages_dropped: int
    messages_duplicated: int
    #: Transport / harness configuration the run is deterministic in.
    fanout: int
    drop_probability: float
    duplicate_probability: float
    seed: int
    #: Corrupted correspondences in the workload, and the parity verdict.
    corrupted_correspondences: int
    origins_compared: int
    views_identical: bool

    @property
    def total_rounds(self) -> int:
        return self.peer_rounds + self.mapping_rounds

    @property
    def events_per_second(self) -> float:
        """Deliveries applied across all replicas per gossip second."""
        if self.gossip_seconds <= 0.0:
            return float("inf")
        return self.deliveries_applied / self.gossip_seconds


@dataclass(frozen=True)
class GossipConvergenceResult:
    """Gossip-to-convergence runs across harness sizes."""

    points: Tuple[GossipConvergencePoint, ...]
    attribute: str

    def point_for(self, peer_count: int) -> GossipConvergencePoint:
        for point in self.points:
            if point.peer_count == peer_count:
                return point
        raise EvaluationError(
            f"no gossip convergence point for {peer_count} peers"
        )


def gossip_workload_network(
    peer_count: int,
    chord_step: int = 4,
    attribute_count: int = 4,
    error_rate: float = 0.25,
    seed: int = DEFAULT_SEED,
) -> PDMSNetwork:
    """The template topology a gossip run replicates: a corrupted chord ring.

    A directed ring ``p1 → p2 → … → pn → p1`` of identity mappings plus a
    backward chord every ``chord_step`` peers (``p_{i+k} → p_i``), so the
    network contains many short mapping cycles of length ``chord_step + 1``
    — the feedback the §4.5 assessment runs on.  ``error_rate`` of the
    correspondences are then corrupted in place (seeded), giving every
    cycle a mix of consistent and inconsistent feedback.
    """
    if peer_count < chord_step + 1:
        raise EvaluationError(
            f"gossip workload needs more than chord_step={chord_step} peers, "
            f"got {peer_count}"
        )
    network = cycle_network(
        peer_count,
        attribute_count=attribute_count,
        directed=True,
        seed=seed,
        name="gossip-workload",
    )
    peers = network.peers
    for index in range(0, peer_count - chord_step, chord_step):
        source = peers[(index + chord_step) % peer_count]
        target = peers[index]
        network.add_mapping(
            identity_mapping(source.schema, target.schema), bidirectional=False
        )
    inject_errors(network, error_rate, seed=seed + 1)
    return network


def run_gossip_convergence(
    peer_counts: Sequence[int] = (32,),
    fanout: int = 3,
    drop_probability: float = 0.05,
    duplicate_probability: float = 0.05,
    error_rate: float = 0.25,
    chord_step: int = 4,
    attribute_count: int = 4,
    seed: int = DEFAULT_SEED,
    max_rounds: int = 128,
) -> GossipConvergenceResult:
    """Gossip a corrupted chord-ring topology to convergence; verify parity.

    For each peer count the :func:`gossip_workload_network` template is
    built single-process, then re-enacted decentralised: a
    :class:`~repro.pdms.gossip.GossipHarness` of empty
    :class:`~repro.pdms.gossip.PeerNode` replicas where each peer
    originates its own ``PeerAdded`` (phase one, gossiped to convergence)
    and then the ``MappingAdded`` events of its outgoing mappings (phase
    two) — all through a seeded transport configured to drop, duplicate
    and reorder.  After convergence every node's ``assess_local`` view of
    ``attribute`` (one blocked-embedded lane over its event-sourced
    replica) is compared against the single-process oracle built from the
    same canonical event log; any inequality — exact, not approximate —
    raises :class:`~repro.exceptions.EvaluationError`.

    The assessor runs with ``ttl = chord_step + 1`` so the chord cycles
    (and not the full ring) carry the feedback.
    """
    points: List[GossipConvergencePoint] = []
    attribute = ""
    for peer_count in peer_counts:
        template = gossip_workload_network(
            peer_count,
            chord_step=chord_step,
            attribute_count=attribute_count,
            error_rate=error_rate,
            seed=seed,
        )
        corrupted = sum(
            1
            for mapping in template.mappings
            for correspondence in mapping.correspondences
            if correspondence.is_correct is False
        )
        attribute = sorted(template.peers[0].schema.attribute_names)[0]

        transport = SeededTransport(
            seed=seed,
            drop_probability=drop_probability,
            duplicate_probability=duplicate_probability,
        )
        harness = GossipHarness.of_names(
            template.peer_names,
            transport=transport,
            fanout=fanout,
            seed=seed,
            ttl=chord_step + 1,
        )

        start = time.perf_counter()
        for peer in template.peers:
            harness.originate(
                peer.name, PeerAdded(name=peer.name, schema=peer.schema)
            )
        peer_rounds = harness.run_until_converged(max_rounds=max_rounds)
        for mapping in template.mappings:
            harness.originate(mapping.source, MappingAdded(mapping=mapping))
        mapping_rounds = harness.run_until_converged(max_rounds=max_rounds)
        gossip_seconds = time.perf_counter() - start

        local = harness.local_views(attribute)
        oracle = harness.oracle_views(attribute)
        if local != oracle:
            divergent = sorted(
                name for name in local if local[name] != oracle.get(name)
            )
            raise EvaluationError(
                f"gossip views diverge from the oracle at {peer_count} "
                f"peers for origins {divergent}"
            )

        points.append(
            GossipConvergencePoint(
                peer_count=peer_count,
                mapping_count=len(template.mapping_names),
                event_count=len(harness.all_entries()),
                peer_rounds=peer_rounds,
                mapping_rounds=mapping_rounds,
                gossip_seconds=gossip_seconds,
                deliveries_applied=harness.delivered_event_count,
                duplicates_dropped=harness.duplicates_dropped,
                deliveries_buffered=harness.deliveries_buffered,
                messages_sent=transport.sent,
                messages_dropped=transport.dropped,
                messages_duplicated=transport.duplicated,
                fanout=fanout,
                drop_probability=drop_probability,
                duplicate_probability=duplicate_probability,
                seed=seed,
                corrupted_correspondences=corrupted,
                origins_compared=len(local),
                views_identical=True,
            )
        )
    return GossipConvergenceResult(points=tuple(points), attribute=attribute)
