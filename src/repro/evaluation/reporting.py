"""Plain-text reporting helpers for the benchmark harness.

The benchmarks print the same rows / series the paper's figures show, next
to the paper's reference values, so a reader can eyeball whether the shape
of each result holds.  These helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_series", "format_comparison"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple fixed-width text table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[Tuple[object, object]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one (x, y) series as a two-column table."""
    return format_table(
        (x_label, y_label),
        [(x, y) for x, y in points],
        title=name,
    )


def format_comparison(
    title: str,
    paper_value: object,
    measured_value: object,
    note: str = "",
) -> str:
    """One-line "paper vs measured" comparison."""
    suffix = f"  ({note})" if note else ""
    return f"{title}: paper={_render(paper_value)}  measured={_render(measured_value)}{suffix}"


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
