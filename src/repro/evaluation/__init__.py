"""Evaluation harness: metrics, baselines, per-figure experiment runners,
convergence diagnostics and plain-text reporting."""

from .metrics import ConfusionCounts, DetectionMetrics, precision_curve, score_detection
from .baselines import chatty_web_baseline, random_guess_baseline
from .convergence import ConvergenceStats, iterations_to_converge, trajectory_stats
from .reporting import format_comparison, format_series, format_table
from .experiments import (
    BaselineComparisonResult,
    ConvergenceResult,
    CycleLengthResult,
    FaultToleranceResult,
    IntroExampleResult,
    RealWorldResult,
    RelativeErrorResult,
    ScheduleComparisonResult,
    run_baseline_comparison,
    run_convergence,
    run_cycle_length,
    run_fault_tolerance,
    run_intro_example,
    run_real_world,
    run_relative_error,
    run_schedule_comparison,
)

__all__ = [
    "ConfusionCounts",
    "DetectionMetrics",
    "precision_curve",
    "score_detection",
    "chatty_web_baseline",
    "random_guess_baseline",
    "ConvergenceStats",
    "iterations_to_converge",
    "trajectory_stats",
    "format_comparison",
    "format_series",
    "format_table",
    "BaselineComparisonResult",
    "ConvergenceResult",
    "CycleLengthResult",
    "FaultToleranceResult",
    "IntroExampleResult",
    "RealWorldResult",
    "RelativeErrorResult",
    "ScheduleComparisonResult",
    "run_baseline_comparison",
    "run_convergence",
    "run_cycle_length",
    "run_fault_tolerance",
    "run_intro_example",
    "run_real_world",
    "run_relative_error",
    "run_schedule_comparison",
]
