"""Baseline detectors the probabilistic scheme is compared against.

Two baselines frame the contribution:

* :func:`chatty_web_baseline` — the authors' earlier, purely deductive
  heuristic (the "Chatty Web" approach, discussed in §6): any mapping that
  participates in at least one inconsistent (negative) cycle or parallel
  path is disqualified outright.  On the introductory example this flags
  three mappings although only one is faulty; the probabilistic scheme gets
  all five right, which is exactly the comparison our ablation benchmark
  reproduces.
* :func:`random_guess_baseline` — flag each mapping independently with a
  fixed probability; Figure 12 notes that even at high θ the scheme remains
  "significantly better than random guesses".
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Mapping as TMapping, Optional, Sequence, Tuple

from ..core.feedback import Feedback, FeedbackKind

__all__ = ["chatty_web_baseline", "random_guess_baseline"]


def chatty_web_baseline(
    feedbacks: Iterable[Feedback],
) -> Dict[Tuple[str, str], float]:
    """Deductive baseline: disqualify every mapping seen in a negative cycle.

    Returns pseudo-posteriors compatible with the evaluation metrics: 0.0
    for disqualified (mapping, attribute) pairs, 1.0 for pairs that only
    appear in positive feedback.
    """
    verdicts: Dict[Tuple[str, str], float] = {}
    for feedback in feedbacks:
        if feedback.kind is FeedbackKind.NEUTRAL:
            continue
        for mapping_name in feedback.mapping_names:
            key = (mapping_name, feedback.attribute)
            if feedback.kind is FeedbackKind.NEGATIVE:
                verdicts[key] = 0.0
            else:
                verdicts.setdefault(key, 1.0)
    return verdicts


def random_guess_baseline(
    keys: Iterable[Tuple[str, str]],
    flag_probability: float = 0.5,
    seed: int = 0,
) -> Dict[Tuple[str, str], float]:
    """Random baseline: flag each pair with probability ``flag_probability``.

    Returns pseudo-posteriors (0.0 for flagged pairs, 1.0 otherwise) so that
    it can be scored with the same metrics as the real detector.
    """
    rng = random.Random(seed)
    return {
        key: 0.0 if rng.random() < flag_probability else 1.0 for key in keys
    }
