"""Convergence diagnostics for iterative message passing runs.

Small helpers shared by the experiments, benchmarks and tests to answer the
question "did it converge, how fast, and how far is it from the reference?"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

from ..exceptions import EvaluationError

__all__ = ["ConvergenceStats", "iterations_to_converge", "trajectory_stats"]


@dataclass(frozen=True)
class ConvergenceStats:
    """Summary of one posterior trajectory."""

    iterations: int
    final_value: float
    largest_step: float
    monotonic: bool
    settled_after: int


def iterations_to_converge(
    trajectory: Sequence[float], tolerance: float = 1e-3
) -> int:
    """First iteration after which the value never moves more than ``tolerance``.

    Returns ``len(trajectory)`` when the trajectory never settles.
    """
    if not trajectory:
        raise EvaluationError("empty trajectory")
    if tolerance <= 0:
        raise EvaluationError("tolerance must be positive")
    for start in range(len(trajectory)):
        settled = True
        for i in range(start + 1, len(trajectory)):
            if abs(trajectory[i] - trajectory[i - 1]) > tolerance:
                settled = False
                break
        if settled:
            return start + 1
    return len(trajectory)


def trajectory_stats(trajectory: Sequence[float], tolerance: float = 1e-3) -> ConvergenceStats:
    """Compute convergence statistics of one posterior trajectory."""
    if not trajectory:
        raise EvaluationError("empty trajectory")
    steps = [
        abs(second - first) for first, second in zip(trajectory, trajectory[1:])
    ]
    increasing = all(b >= a - 1e-12 for a, b in zip(trajectory, trajectory[1:]))
    decreasing = all(b <= a + 1e-12 for a, b in zip(trajectory, trajectory[1:]))
    return ConvergenceStats(
        iterations=len(trajectory),
        final_value=float(trajectory[-1]),
        largest_step=max(steps) if steps else 0.0,
        monotonic=increasing or decreasing,
        settled_after=iterations_to_converge(trajectory, tolerance=tolerance),
    )
