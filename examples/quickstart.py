#!/usr/bin/env python3
"""Quickstart: detect a faulty schema mapping in a four-peer PDMS.

This script walks through the paper's introductory example end to end:

1. build the four art databases and their six pairwise mappings (one of
   which erroneously maps ``Creator`` onto ``CreatedOn``),
2. let the system gather cycle / parallel-path feedback and run the
   decentralised probabilistic message passing,
3. inspect the resulting posteriors, and
4. route the "artists who painted rivers" query with and without the
   quality information.

Run with::

    python examples/quickstart.py
"""

from repro import (
    MappingQualityAssessor,
    Query,
    QueryRouter,
    RoutingPolicy,
    intro_example_network,
    substring_predicate,
)


def main() -> None:
    # 1. The PDMS of the paper's introductory example (Figure 1 / Figure 5).
    network = intro_example_network()
    print(f"network: {network}")
    for mapping in network.mappings:
        flag = " (FAULTY for Creator)" if mapping.name == "p2->p4" else ""
        print(f"  mapping {mapping.name}: {len(mapping)} correspondences{flag}")

    # 2. Assess the quality of every mapping for the attribute 'Creator'.
    assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
    assessment = assessor.assess_attribute("Creator")
    print(f"\nposterior P(mapping correct) for 'Creator' "
          f"({assessment.iterations} iterations):")
    for mapping_name, posterior in sorted(assessment.posteriors.items()):
        verdict = "ERRONEOUS" if posterior <= 0.5 else "ok"
        print(f"  {mapping_name:10s}  {posterior:.3f}   [{verdict}]")

    # 3. The query of §1.2: artists who created a piece of work about a river.
    query = Query.select_project(
        "p2",
        project=["Creator"],
        where={"Subject": substring_predicate("river")},
        where_descriptions={"Subject": "LIKE '%river%'"},
    )

    # 3a. A standard PDMS floods every mapping — including the faulty one.
    standard = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
    standard_trace = standard.route(query)
    print("\nstandard PDMS routing:")
    print(standard_trace.summary())
    _print_answers(standard_trace)

    # 3b. The quality-aware router blocks mappings below θ = 0.5.
    aware = assessor.router(policy=RoutingPolicy(default_threshold=0.5))
    aware_trace = aware.route(query)
    print("\nquality-aware routing (θ = 0.5):")
    print(aware_trace.summary())
    _print_answers(aware_trace)

    # 4. Fold the posteriors back into the priors (§4.4) for the next round.
    updated = assessor.update_priors(["Creator"])
    print("\nupdated priors after this round of evidence:")
    for (mapping_name, attribute), prior in sorted(updated.items()):
        print(f"  {mapping_name:10s} @ {attribute}: {prior:.3f}")


def _print_answers(trace) -> None:
    for answer in trace.answers:
        for record in answer.records:
            creator = record.get("Creator")
            marker = "  <-- false positive" if creator is None or str(creator).isdigit() else ""
            print(f"    answer from {answer.peer_name}: Creator={creator!r}{marker}")


if __name__ == "__main__":
    main()
