#!/usr/bin/env python3
"""A tour of the probabilistic machinery, from feedback to factor graph.

For readers who want to see the model rather than just its verdicts, this
example builds the factor graph of the paper's worked example step by step:

1. the three feedbacks p2 gathers in §4.5 (f1+, f2−, f3−⇒),
2. their conditional probability tables (the Δ-compensation CPT of §3.2.1),
3. the global factor graph of Figure 5 and the per-peer fragments of
   Figure 6, and
4. exact inference vs the decentralised loopy estimate.

Run with::

    python examples/factor_graph_tour.py
"""

from repro.core import (
    EmbeddedMessagePassing,
    build_factor_graph,
    build_local_graphs,
    feedback_factor,
)
from repro.core.pdms_factor_graph import variable_name_for
from repro.factorgraph import exact_marginals
from repro.generators import intro_example_feedbacks


def main() -> None:
    feedbacks = intro_example_feedbacks()

    print("== 1. feedback gathered by p2 (§4.5) ==")
    for feedback in feedbacks:
        print(f"  {feedback}")

    print("\n== 2. the CPT of feedback f2 (negative cycle, Δ = 0.1) ==")
    factor = feedback_factor(feedbacks[1], delta=0.1)
    for assignment in factor.assignments():
        incorrect = sum(1 for state in assignment.values() if state == "incorrect")
        print(f"  {incorrect} incorrect mapping(s): "
              f"P(f2 observed | assignment) = {factor.value(assignment):.2f}"
              + ("   <- errors compensate with probability Δ" if incorrect >= 2 else ""))
        if incorrect == 3:
            break  # one line per error count is enough

    print("\n== 3a. the global factor graph (Figure 5, right-hand side) ==")
    pfg = build_factor_graph(feedbacks, priors=0.5, delta=0.1)
    graph = pfg.graph
    print(f"  {graph}")
    print(f"  variables : {', '.join(graph.variable_names)}")
    print(f"  factors   : {', '.join(graph.factor_names)}")
    print(f"  cycle-free: {graph.is_tree()}")

    print("\n== 3b. per-peer fragments (Figure 6) ==")
    for peer_name, fragment in sorted(build_local_graphs(feedbacks).items()):
        print(f"  {peer_name}: owns {list(fragment.owned_mappings)}, "
              f"replicates {[f.identifier for f in fragment.feedbacks]}, "
              f"talks to {list(fragment.remote_peers)}")

    print("\n== 4. exact inference vs decentralised loopy estimate ==")
    exact = exact_marginals(graph)
    embedded = EmbeddedMessagePassing(feedbacks, priors=0.5, delta=0.1).run()
    print(f"  (embedded scheme converged in {embedded.iterations} iterations)")
    print(f"  {'mapping':10s} {'exact':>8s} {'embedded':>10s}")
    for mapping_name in pfg.mapping_names:
        exact_value = float(exact[variable_name_for(mapping_name, 'Creator')][0])
        approx_value = embedded.posteriors[mapping_name]
        print(f"  {mapping_name:10s} {exact_value:8.3f} {approx_value:10.3f}")
    print("\n  -> the paper reports 0.59 for p2->p3 and 0.30 for p2->p4;")
    print("     exact inference reproduces those values, the decentralised")
    print("     loopy estimate lands within a few percent of them.")


if __name__ == "__main__":
    main()
