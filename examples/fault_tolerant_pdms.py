#!/usr/bin/env python3
"""Fault tolerance and schedules: message passing on an unreliable network.

The embedded message passing needs no synchronisation: peers may send their
messages whenever they like, and lost messages only slow convergence down
(§4.3, Figure 11).  This example

1. runs the inference on the paper's example graph over increasingly lossy
   transports and reports how many rounds it takes to reach the reliable
   fixed point, and
2. contrasts the two schedules of §4.3 — proactive periodic rounds versus
   lazily piggybacking on query traffic.

Run with::

    python examples/fault_tolerant_pdms.py
"""

import random

from repro.core import (
    EmbeddedMessagePassing,
    EmbeddedOptions,
    LazySchedule,
    MessageTransport,
    PeriodicSchedule,
)
from repro.generators import figure4_feedbacks, intro_example_feedbacks, intro_example_network
from repro.pdms import Query, QueryRouter, RoutingPolicy, substring_predicate


def fault_tolerance_demo() -> None:
    print("== fault tolerance (Figure 11 setting) ==")
    reference = EmbeddedMessagePassing(
        figure4_feedbacks(), priors=0.8, delta=0.1,
        options=EmbeddedOptions(max_rounds=500, tolerance=1e-9),
    ).run().posteriors

    for send_probability in (1.0, 0.7, 0.4, 0.1):
        engine = EmbeddedMessagePassing(
            figure4_feedbacks(), priors=0.8, delta=0.1,
            transport=MessageTransport(send_probability, seed=7),
            options=EmbeddedOptions(max_rounds=1000),
        )
        rounds = 0
        while rounds < 1000:
            engine.run_round()
            rounds += 1
            posteriors = engine.posteriors()
            if all(abs(posteriors[k] - reference[k]) < 0.01 for k in reference):
                break
        stats = engine.transport.statistics
        print(f"  P(send) = {send_probability:.1f}: reached the fixed point in "
              f"{rounds:4d} rounds "
              f"({stats.dropped}/{stats.attempted} messages dropped)")


def schedules_demo() -> None:
    print("\n== schedules (§4.3) ==")
    # Periodic: proactive rounds every τ.
    periodic_engine = EmbeddedMessagePassing(
        intro_example_feedbacks(), priors=0.5, delta=0.1,
        options=EmbeddedOptions(max_rounds=100),
    )
    periodic = PeriodicSchedule(periodic_engine, tau=60.0)  # τ = one minute
    report = periodic.run(periods=100, tolerance=1e-3)
    print(f"  periodic: converged after {report.rounds} periods "
          f"({report.elapsed_time:.0f}s of simulated time), "
          f"{report.messages_attempted} dedicated remote messages")

    # Lazy: piggyback on a synthetic query workload, zero dedicated messages.
    lazy_engine = EmbeddedMessagePassing(
        intro_example_feedbacks(), priors=0.5, delta=0.1,
        options=EmbeddedOptions(max_rounds=1000),
    )
    lazy = LazySchedule(lazy_engine)
    network = intro_example_network()
    router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
    rng = random.Random(1)
    traces = []
    for _ in range(80):
        origin = rng.choice(network.peer_names)
        query = Query.select_project(
            origin, project=["Creator"],
            where={"Subject": substring_predicate("river")},
        )
        traces.append(router.route(query, origin=origin))
    report = lazy.process_traces(traces, tolerance=1e-3)
    print(f"  lazy:     converged after piggybacking on {report.rounds} queries, "
          f"posterior of the faulty mapping "
          f"P(p2->p4 correct) = {lazy_engine.posteriors()['p2->p4']:.3f}")


def main() -> None:
    fault_tolerance_demo()
    schedules_demo()


if __name__ == "__main__":
    main()
