#!/usr/bin/env python3
"""Detecting faulty automatic alignments between bibliographic ontologies.

This reproduces the workflow of the paper's real-world experiment (§5.2):

1. take six bibliographic ontologies (synthetic stand-ins for the EON
   Ontology Alignment Contest set — a reference ontology, its French
   translation, two BibTeX flavours and two institutional flavours),
2. align every ordered pair automatically with simple string matchers,
   which produces a few hundred correspondences of mixed quality,
3. let every peer probe its neighbourhood, run the probabilistic message
   passing for each of its attributes, and flag its own suspicious
   correspondences, and
4. score the flags against the known ground truth.

Run with::

    python examples/bibliographic_alignment.py
"""

from collections import Counter

from repro.alignment import build_eon_network
from repro.core import MappingQualityAssessor
from repro.evaluation.metrics import score_detection


def main() -> None:
    # 1–2. Build the ontology network via automatic alignment.
    scenario = build_eon_network()
    print(f"aligned {len(scenario.alignments)} ordered ontology pairs")
    print(f"generated correspondences : {scenario.correspondence_count}")
    print(f"actually erroneous        : {scenario.erroneous_count} "
          f"({scenario.error_rate:.0%})")

    worst_pairs = Counter()
    for (source, target), result in scenario.alignments.items():
        worst_pairs[(source, target)] = result.erroneous_count
    print("\npairs with the most alignment errors:")
    for (source, target), count in worst_pairs.most_common(5):
        print(f"  {source} -> {target}: {count} wrong correspondences")

    # 3. Every peer assesses its own outgoing mappings from its purely
    #    local view of the network — all origins batched per attribute into
    #    one stacked per-origin run (probing each neighbourhood once).
    assessor = MappingQualityAssessor(
        scenario.network, delta=0.1, ttl=3, include_parallel_paths=False
    )
    posteriors = {}
    for attribute in scenario.network.attribute_universe():
        for local in assessor.assess_local_all(attribute).values():
            for mapping_name, posterior in local.items():
                if (mapping_name, attribute) in scenario.ground_truth:
                    posteriors[(mapping_name, attribute)] = posterior

    flagged = sorted(
        (key for key, value in posteriors.items() if value <= 0.5),
        key=lambda key: posteriors[key],
    )
    print(f"\ncorrespondences flagged as erroneous (θ = 0.5): {len(flagged)}")
    for mapping_name, attribute in flagged[:10]:
        truth = "wrong" if scenario.ground_truth[(mapping_name, attribute)] is False else "correct!"
        print(f"  {mapping_name:28s} {attribute:20s} "
              f"P(correct)={posteriors[(mapping_name, attribute)]:.3f}  [{truth}]")

    # 4. Score against the ground truth for a sweep of thresholds.
    print("\nprecision / recall of the detector:")
    for theta in (0.2, 0.4, 0.5, 0.6, 0.8):
        metrics = score_detection(posteriors, scenario.ground_truth, theta=theta)
        print(f"  θ = {theta:.1f}: precision = {metrics.precision:.2f}, "
              f"recall = {metrics.recall:.2f}, flagged = {metrics.counts.flagged}")


if __name__ == "__main__":
    main()
