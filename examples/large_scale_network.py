#!/usr/bin/env python3
"""Large(r)-scale simulation: erroneous mappings in a scale-free PDMS.

The paper motivates its cycle analysis with the topology of real semantic
overlay networks: scale-free degree distributions and unusually high
clustering (§3.2.1).  This example

1. generates a scale-free PDMS (Barabási–Albert topology, identity mappings
   along every edge, a controlled fraction of correspondences corrupted),
2. runs the quality assessment for every attribute,
3. reports detection precision/recall against the generator's ground truth,
   and
4. shows how the TTL of the probes trades evidence for effort, mirroring
   the paper's discussion of bounded neighbourhood exploration (§5.1.2).

Run with::

    python examples/large_scale_network.py
"""

from repro.core import MappingQualityAssessor
from repro.evaluation.metrics import score_detection
from repro.generators import generate_scenario


def assess_all(scenario, ttl):
    """Assess every attribute of the scenario; return posteriors keyed by
    (mapping, attribute), plus the number of cycles the probes discovered."""
    assessor = MappingQualityAssessor(
        scenario.network, delta=None, ttl=ttl, include_parallel_paths=False
    )
    posteriors = {}
    cycles_seen = 0
    for attribute in scenario.network.attribute_universe():
        assessment = assessor.assess_attribute(attribute)
        cycles_seen = max(cycles_seen, len(assessment.evidence.cycles))
        for mapping_name, posterior in assessment.posteriors.items():
            if (mapping_name, attribute) in scenario.ground_truth:
                posteriors[(mapping_name, attribute)] = posterior
    return posteriors, cycles_seen


def main() -> None:
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=16,
        attribute_count=10,
        error_rate=0.15,
        seed=42,
    )
    network = scenario.network
    print(f"generated {scenario.topology} PDMS: {len(network)} peers, "
          f"{len(network.mappings)} mappings, "
          f"clustering coefficient {network.clustering_coefficient():.2f}")
    print(f"injected errors: {len(scenario.erroneous_pairs)} of "
          f"{len(scenario.ground_truth)} correspondences "
          f"({scenario.error_rate:.0%} target rate)")

    for ttl in (2, 3, 4):
        posteriors, cycles = assess_all(scenario, ttl)
        metrics = score_detection(posteriors, scenario.ground_truth, theta=0.5)
        print(f"\nprobe TTL = {ttl} (up to {cycles} cycles per attribute):")
        print(f"  scored correspondences : {len(posteriors)}")
        print(f"  precision @ θ=0.5      : {metrics.precision:.2f}")
        print(f"  recall    @ θ=0.5      : {metrics.recall:.2f}")
        print(f"  flagged                : {metrics.counts.flagged} "
              f"({metrics.counts.true_positives} truly erroneous)")


if __name__ == "__main__":
    main()
