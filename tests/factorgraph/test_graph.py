"""Unit tests for repro.factorgraph.graph."""

import numpy as np
import pytest

from repro.exceptions import FactorGraphError
from repro.factorgraph.factors import Factor, prior_factor
from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.variables import BinaryVariable


def make_chain_graph():
    """x1 -- fA -- x2 -- fB -- x3 (a tree)."""
    graph = FactorGraph("chain")
    x1, x2, x3 = BinaryVariable("x1"), BinaryVariable("x2"), BinaryVariable("x3")
    for variable in (x1, x2, x3):
        graph.add_variable(variable)
    graph.add_factor(Factor("fA", (x1, x2), np.ones((2, 2))))
    graph.add_factor(Factor("fB", (x2, x3), np.ones((2, 2))))
    return graph


def make_loopy_graph():
    """Two factors both spanning (x1, x2) — a cycle in the bipartite graph."""
    graph = FactorGraph("loopy")
    x1, x2 = BinaryVariable("x1"), BinaryVariable("x2")
    graph.add_variable(x1)
    graph.add_variable(x2)
    graph.add_factor(Factor("fA", (x1, x2), np.ones((2, 2))))
    graph.add_factor(Factor("fB", (x1, x2), np.ones((2, 2))))
    return graph


class TestConstruction:
    def test_add_variable_idempotent_for_same_domain(self):
        graph = FactorGraph()
        graph.add_variable(BinaryVariable("x"))
        graph.add_variable(BinaryVariable("x"))
        assert len(graph.variables) == 1

    def test_add_variable_conflicting_domain_raises(self):
        from repro.factorgraph.variables import DiscreteVariable

        graph = FactorGraph()
        graph.add_variable(BinaryVariable("x"))
        with pytest.raises(FactorGraphError):
            graph.add_variable(DiscreteVariable("x", domain=("a", "b", "c")))

    def test_add_factor_requires_variables(self):
        graph = FactorGraph()
        x = BinaryVariable("x")
        with pytest.raises(FactorGraphError):
            graph.add_factor(prior_factor(x, 0.5))

    def test_duplicate_factor_name_rejected(self):
        graph = FactorGraph()
        x = graph.add_variable(BinaryVariable("x"))
        graph.add_factor(prior_factor(x, 0.5, name="p"))
        with pytest.raises(FactorGraphError):
            graph.add_factor(prior_factor(x, 0.6, name="p"))


class TestLookups:
    def test_variable_and_factor_lookup(self):
        graph = make_chain_graph()
        assert graph.variable("x1").name == "x1"
        assert graph.factor("fA").name == "fA"
        assert graph.has_variable("x2")
        assert not graph.has_variable("zzz")
        assert graph.has_factor("fB")
        assert not graph.has_factor("zzz")

    def test_unknown_lookups_raise(self):
        graph = make_chain_graph()
        with pytest.raises(FactorGraphError):
            graph.variable("nope")
        with pytest.raises(FactorGraphError):
            graph.factor("nope")
        with pytest.raises(FactorGraphError):
            graph.factors_of("nope")

    def test_factors_of_and_degree(self):
        graph = make_chain_graph()
        assert {f.name for f in graph.factors_of("x2")} == {"fA", "fB"}
        assert graph.degree("x2") == 2
        assert graph.degree("x1") == 1

    def test_neighbors_of_factor(self):
        graph = make_chain_graph()
        assert [v.name for v in graph.neighbors_of_factor("fA")] == ["x1", "x2"]


class TestStructure:
    def test_chain_is_tree(self):
        assert make_chain_graph().is_tree()

    def test_loopy_graph_is_not_tree(self):
        assert not make_loopy_graph().is_tree()

    def test_empty_graph_is_tree(self):
        assert FactorGraph().is_tree()

    def test_edge_count(self):
        assert make_chain_graph().edge_count() == 4
        assert make_loopy_graph().edge_count() == 4

    def test_to_networkx_bipartite(self):
        nx_graph = make_chain_graph().to_networkx()
        kinds = {data["kind"] for _, data in nx_graph.nodes(data=True)}
        assert kinds == {"variable", "factor"}
        assert nx_graph.number_of_edges() == 4

    def test_validate_passes_on_consistent_graph(self):
        make_chain_graph().validate()


class TestSubgraph:
    def test_subgraph_keeps_fully_contained_factors(self):
        graph = make_chain_graph()
        sub = graph.subgraph_for_variables(["x1", "x2"])
        assert set(sub.variable_names) == {"x1", "x2"}
        assert set(sub.factor_names) == {"fA"}

    def test_subgraph_excludes_partial_factors(self):
        graph = make_chain_graph()
        sub = graph.subgraph_for_variables(["x2"])
        assert set(sub.factor_names) == set()
