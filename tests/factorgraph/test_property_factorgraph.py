"""Property-based tests (hypothesis) for the factor-graph engine.

The invariants checked here are the ones the rest of the library leans on:
messages stay normalised, sum–product on trees equals exact inference, and
loopy BP fixed points are insensitive to damping.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.factorgraph.exact import exact_marginals
from repro.factorgraph.factors import Factor, prior_factor
from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.messages import normalize, unit_message
from repro.factorgraph.sum_product import run_sum_product
from repro.factorgraph.variables import BinaryVariable

probabilities = st.floats(min_value=0.01, max_value=0.99)
positive_entries = st.floats(min_value=0.01, max_value=10.0)


@given(st.lists(positive_entries, min_size=2, max_size=6))
def test_normalize_produces_a_distribution(entries):
    vector = normalize(np.array(entries))
    assert float(np.sum(vector)) == pytest.approx(1.0)
    assert np.all(vector >= 0)


@given(st.integers(min_value=2, max_value=8))
def test_unit_message_is_uniform(cardinality):
    message = unit_message(cardinality)
    assert message == pytest.approx([1.0 / cardinality] * cardinality)


@given(probabilities)
@settings(max_examples=30, deadline=None)
def test_single_variable_posterior_equals_prior(prior):
    graph = FactorGraph()
    x = graph.add_variable(BinaryVariable("x"))
    graph.add_factor(prior_factor(x, prior))
    result = run_sum_product(graph)
    assert result.probability_correct("x") == pytest.approx(prior, abs=1e-6)


@given(
    st.lists(probabilities, min_size=2, max_size=5),
    st.lists(positive_entries, min_size=4, max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_chain_sum_product_matches_exact(priors, link_entries):
    """On a tree (chain) factor graph, loopy BP must be exact."""
    graph = FactorGraph()
    variables = [
        graph.add_variable(BinaryVariable(f"x{i}")) for i in range(len(priors))
    ]
    for variable, prior in zip(variables, priors):
        graph.add_factor(prior_factor(variable, prior))
    link = np.array(link_entries, dtype=float).reshape(2, 2)
    for first, second in zip(variables, variables[1:]):
        graph.add_factor(Factor(f"link({first.name},{second.name})", (first, second), link))
    assert graph.is_tree()
    result = run_sum_product(graph, max_iterations=50)
    exact = exact_marginals(graph)
    for name in exact:
        assert result.marginals[name] == pytest.approx(exact[name], abs=1e-5)


@given(
    st.lists(probabilities, min_size=3, max_size=3),
    probabilities,
)
@settings(max_examples=20, deadline=None)
def test_loopy_fixed_point_independent_of_damping(priors, agreement):
    """Damping changes the trajectory, not the fixed point."""
    agree = np.array([[agreement, 1 - agreement], [1 - agreement, agreement]])
    graph = FactorGraph()
    variables = [graph.add_variable(BinaryVariable(f"x{i}")) for i in range(3)]
    for variable, prior in zip(variables, priors):
        graph.add_factor(prior_factor(variable, prior))
    for i in range(3):
        first, second = variables[i], variables[(i + 1) % 3]
        graph.add_factor(Factor(f"pair{i}", (first, second), agree))
    plain = run_sum_product(graph, max_iterations=500, tolerance=1e-9)
    damped = run_sum_product(graph, max_iterations=500, tolerance=1e-9, damping=0.4)
    if plain.converged and damped.converged:
        for name in plain.marginals:
            assert plain.marginals[name] == pytest.approx(damped.marginals[name], abs=1e-4)


@given(st.lists(probabilities, min_size=2, max_size=4))
@settings(max_examples=25, deadline=None)
def test_marginals_are_distributions(priors):
    graph = FactorGraph()
    variables = [
        graph.add_variable(BinaryVariable(f"x{i}")) for i in range(len(priors))
    ]
    for variable, prior in zip(variables, priors):
        graph.add_factor(prior_factor(variable, prior))
    result = run_sum_product(graph)
    for marginal in result.marginals.values():
        assert float(np.sum(marginal)) == pytest.approx(1.0)
        assert np.all(marginal >= 0.0)
