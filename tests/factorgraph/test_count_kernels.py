"""Count-space kernels: parity with the dense einsum and loop references.

The count-space representation (:class:`CountFactor`,
:class:`CountFactorBatch`, :class:`StackedCountFactorBatch`) must evaluate
exactly the sum–product expression the dense ``(2,)**arity`` table encodes —
at every arity the dense path can still reach, the three implementations
(count kernel, dense einsum batch, dense scalar ``Factor.message_to`` loop)
have to agree to ``1e-12`` — while compiling structures the dense path
cannot represent at all (arity 40+, where ``2**arity`` memory is
impossible).
"""

import numpy as np
import pytest

from repro.constants import COUNT_KERNEL_MIN_ARITY, MAX_COMPILED_ARITY
from repro.core.feedback import FeedbackKind, feedback_count_values
from repro.exceptions import FactorGraphError, FactorShapeError
from repro.factorgraph.compiled import (
    CompiledFactorGraph,
    CountFactorBatch,
    FactorBatch,
    StackedCountFactorBatch,
    compile_factor_graph,
)
from repro.factorgraph.factors import CountFactor, Factor, prior_factor
from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.sum_product import run_sum_product
from repro.factorgraph.variables import BinaryVariable

PARITY = 1e-12


def _variables(arity):
    return [BinaryVariable(f"x{i}") for i in range(arity)]


def _count_factor(arity, kind=FeedbackKind.POSITIVE, delta=0.1, name="f"):
    return CountFactor(
        name, _variables(arity), feedback_count_values(kind, delta, arity)
    )


def _messages(arity, seed=0, zero_slot=None):
    rng = np.random.default_rng(seed)
    messages = rng.random((arity, 2))
    if zero_slot is not None:
        messages[zero_slot, 0] = 0.0
    return messages / messages.sum(axis=1, keepdims=True)


class TestThreeWayParity:
    """count kernel vs dense einsum vs dense scalar loop, ≤ 1e-12."""

    @pytest.mark.parametrize("arity", [3, 8])
    @pytest.mark.parametrize(
        "kind", [FeedbackKind.POSITIVE, FeedbackKind.NEGATIVE]
    )
    def test_small_arities_all_targets(self, arity, kind):
        count_factor = _count_factor(arity, kind)
        dense_factor = Factor("f", count_factor.variables, count_factor.table)
        count_batch = CountFactorBatch([count_factor, count_factor])
        dense_batch = FactorBatch([dense_factor, dense_factor])
        messages = _messages(arity, seed=arity, zero_slot=0)
        incoming = [
            np.stack([messages[s], messages[(s + 1) % arity]])
            for s in range(arity)
        ]
        for target in range(arity):
            from_count = count_batch.messages_toward(target, incoming)
            from_dense = dense_batch.messages_toward(target, incoming)
            assert np.abs(from_count - from_dense).max() <= PARITY
            # the scalar loop reference, row 0 of the batch
            scalar = dense_factor.message_to(
                f"x{target}",
                {
                    f"x{s}": messages[s]
                    for s in range(arity)
                    if s != target
                },
            )
            assert np.abs(from_count[0] - scalar).max() <= PARITY
            # CountFactor.message_to is the loops-backend path for long
            # structures; it must agree with its own dense view too.
            from_count_scalar = count_factor.message_to(
                f"x{target}",
                {
                    f"x{s}": messages[s]
                    for s in range(arity)
                    if s != target
                },
            )
            assert np.abs(from_count_scalar - scalar).max() <= PARITY

    def test_arity_25_at_the_dense_limit(self):
        # 25 is the largest arity the dense path can represent at all
        # (MAX_COMPILED_ARITY einsum letters, a 2**25-entry table); one
        # three-way check pins the agreement right at the cliff edge.
        arity = MAX_COMPILED_ARITY
        count_factor = _count_factor(arity, FeedbackKind.NEGATIVE)
        messages = _messages(arity, seed=25, zero_slot=3)
        incoming_map = {f"x{s}": messages[s] for s in range(1, arity)}
        from_count = count_factor.message_to("x0", incoming_map)
        dense_factor = Factor("f", count_factor.variables, count_factor.table)
        from_dense_scalar = dense_factor.message_to("x0", incoming_map)
        assert np.abs(from_count - from_dense_scalar).max() <= PARITY
        from_batch = CountFactorBatch([count_factor]).messages_toward(
            0, [None] + [messages[s][None] for s in range(1, arity)]
        )
        assert np.abs(from_batch[0] - from_dense_scalar).max() <= PARITY

    def test_stacked_kernel_matches_per_stack_evaluation(self):
        arity = 8
        positive = _count_factor(arity, FeedbackKind.POSITIVE)
        negative = _count_factor(arity, FeedbackKind.NEGATIVE)
        tables = np.stack(
            [
                np.stack([positive.count_values, negative.count_values]),
                np.stack([negative.count_values, positive.count_values]),
            ]
        )
        stacked = StackedCountFactorBatch(tables)
        assert stacked.stack == 2 and stacked.size == 2
        messages = _messages(arity, seed=7)
        incoming = [
            np.stack(
                [
                    np.stack([messages[s], messages[(s + 1) % arity]]),
                    np.stack([messages[(s + 2) % arity], messages[s]]),
                ]
            )
            for s in range(arity)
        ]
        for target in range(arity):
            result = stacked.messages_toward(target, incoming)
            for element in range(2):
                per_stack = CountFactorBatch(
                    [
                        CountFactor("f", _variables(arity), row)
                        for row in tables[element]
                    ]
                ).messages_toward(
                    target, [matrix[element] for matrix in incoming]
                )
                assert np.abs(result[element] - per_stack).max() <= PARITY

    def test_exact_zero_messages_are_safe(self):
        # The feedback CPTs contain exact zeros and so can the messages;
        # the count recurrences must not divide by them.
        arity = 6
        count_factor = _count_factor(arity, FeedbackKind.POSITIVE)
        dense_factor = Factor("f", count_factor.variables, count_factor.table)
        messages = _messages(arity, seed=3)
        messages[1] = [0.0, 1.0]
        messages[2] = [1.0, 0.0]
        incoming_map = {f"x{s}": messages[s] for s in range(1, arity)}
        from_count = count_factor.message_to("x0", incoming_map)
        from_dense = dense_factor.message_to("x0", incoming_map)
        assert np.isfinite(from_count).all()
        assert np.abs(from_count - from_dense).max() <= PARITY


class TestCountFactor:
    def test_dense_view_matches_count_values(self):
        factor = _count_factor(4, FeedbackKind.POSITIVE, delta=0.25)
        table = factor.table
        assert table.shape == (2,) * 4
        counts = np.indices((2,) * 4).sum(axis=0)
        assert np.array_equal(table, factor.count_values[counts])

    def test_dense_view_blocked_beyond_the_compiled_limit(self):
        factor = _count_factor(MAX_COMPILED_ARITY + 15)
        with pytest.raises(FactorShapeError, match="count-space"):
            factor.table
        # ... and nothing was cached along the way.
        assert factor._dense_table is None

    def test_value_counts_incorrect_states(self):
        factor = _count_factor(3, FeedbackKind.POSITIVE, delta=0.2)
        assignment = {"x0": "correct", "x1": "incorrect", "x2": "incorrect"}
        assert factor.value(assignment) == pytest.approx(0.2)

    def test_normalized_preserves_count_space(self):
        factor = _count_factor(40)
        normalized = factor.normalized()
        assert isinstance(normalized, CountFactor)
        # virtual table sums to one: Σ_k C(n,k) f(k) == 1
        import math

        total = sum(
            math.comb(40, k) * value
            for k, value in enumerate(normalized.count_values)
        )
        assert total == pytest.approx(1.0)

    def test_rejects_non_constant_tail(self):
        values = np.array([1.0, 0.0, 0.1, 0.2, 0.1])
        with pytest.raises(FactorShapeError, match="constant tail"):
            CountFactor("f", _variables(4), values)

    def test_rejects_non_binary_variables(self):
        from repro.factorgraph.variables import DiscreteVariable

        ternary = DiscreteVariable("t", ("a", "b", "c"))
        with pytest.raises(FactorShapeError, match="binary"):
            CountFactor("f", [ternary], np.array([1.0, 0.5]))


class TestKernelValidation:
    def test_count_batch_requires_count_factors(self):
        dense = prior_factor(BinaryVariable("x"), 0.5)
        with pytest.raises(FactorGraphError, match="CountFactor"):
            CountFactorBatch([dense])

    def test_stacked_batch_rejects_non_constant_tail(self):
        tables = np.array([[[1.0, 0.0, 0.1, 0.2, 0.1]]])
        with pytest.raises(FactorGraphError, match="constant tail"):
            StackedCountFactorBatch(tables)

    def test_dense_batch_still_capped_at_the_unified_limit(self):
        # A virtual zero-stride table fakes an arity-26 dense factor
        # without allocating 2**26 floats; the dense kernels must reject it
        # with the constant from repro.constants.
        class _Fake:
            table = np.broadcast_to(np.ones(1), (2,) * (MAX_COMPILED_ARITY + 1))

        with pytest.raises(FactorGraphError, match=str(MAX_COMPILED_ARITY)):
            FactorBatch([_Fake()])

    def test_arity_limit_is_unified(self):
        import repro.constants as constants
        from repro.factorgraph import compiled

        assert constants.MAX_COMPILED_ARITY == compiled.MAX_COMPILED_ARITY == 25
        assert compiled._EINSUM_LETTERS == "abcdefghijklmnopqrstuvwxy"
        assert len(compiled._EINSUM_LETTERS) == constants.MAX_COMPILED_ARITY
        assert 2 <= constants.COUNT_KERNEL_MIN_ARITY <= constants.MAX_COMPILED_ARITY


class TestCompiledGraphRouting:
    def _long_cycle_graph(self, arity, kind=FeedbackKind.NEGATIVE):
        graph = FactorGraph(name=f"long-{arity}")
        variables = _variables(arity)
        for variable in variables:
            graph.add_variable(variable)
            graph.add_factor(prior_factor(variable, 0.6))
        graph.add_factor(
            CountFactor(
                "cycle", variables, feedback_count_values(kind, 0.1, arity)
            )
        )
        return graph

    def test_arity_40_graph_compiles_onto_the_count_kernel(self):
        graph = self._long_cycle_graph(40)
        compiled_graph = compile_factor_graph(graph)
        assert compiled_graph is not None
        kinds = {
            type(batch).__name__ for batch, _ in compiled_graph.batches
        }
        assert "CountFactorBatch" in kinds

    def test_vectorized_matches_loops_at_arity_40(self):
        graph = self._long_cycle_graph(40)
        loops = run_sum_product(graph, backend="loops", record_history=True)
        vectorized = run_sum_product(
            graph, backend="vectorized", record_history=True
        )
        assert loops.iterations == vectorized.iterations
        worst = max(
            float(np.abs(loops.marginals[n] - vectorized.marginals[n]).max())
            for n in loops.marginals
        )
        assert worst <= 1e-9

    def test_small_count_factors_also_route_through_count_buckets(self):
        # Representation decides the kernel: a hand-built small CountFactor
        # uses the count bucket even below the feedback-factory crossover.
        graph = self._long_cycle_graph(4)
        compiled_graph = CompiledFactorGraph(graph)
        kinds = {type(batch).__name__ for batch, _ in compiled_graph.batches}
        assert "CountFactorBatch" in kinds
        loops = run_sum_product(graph, backend="loops")
        vectorized = run_sum_product(graph, backend="vectorized")
        worst = max(
            float(np.abs(loops.marginals[n] - vectorized.marginals[n]).max())
            for n in loops.marginals
        )
        assert worst <= 1e-9
