"""Parity and unit tests for the compiled vectorized sum–product backend.

The equivalence contract (see ``repro/factorgraph/compiled.py``) promises
that the vectorized backend reproduces the loop reference's marginals and
iteration counts on every compilable graph, including damped and lossy runs
sharing a seed.  These tests pin that contract on the paper's structures and
on randomly generated scale-free feedback graphs.
"""

import numpy as np
import pytest

from repro.core.pdms_factor_graph import build_factor_graph
from repro.evaluation.experiments import throughput_graph
from repro.exceptions import FactorGraphError, FactorShapeError, VariableDomainError
from repro.factorgraph.compiled import (
    CompiledFactorGraph,
    FactorBatch,
    StackedFactorBatch,
    compile_factor_graph,
    normalize_rows,
    segment_exclusive_products,
    segment_products,
)
from repro.factorgraph.factors import Factor, observation_factor, prior_factor
from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.sum_product import SumProduct, SumProductOptions, run_sum_product
from repro.factorgraph.variables import BinaryVariable, DiscreteVariable
from repro.generators.paper import (
    figure4_feedbacks,
    intro_example_feedbacks,
    single_cycle_feedback,
)

PARITY_TOLERANCE = 1e-9


def assert_backends_agree(graph, **kwargs):
    loops = run_sum_product(graph, backend="loops", **kwargs)
    vectorized = run_sum_product(graph, backend="vectorized", **kwargs)
    assert vectorized.iterations == loops.iterations
    assert vectorized.converged == loops.converged
    for name, marginal in loops.marginals.items():
        assert np.abs(vectorized.marginals[name] - marginal).max() < PARITY_TOLERANCE
    return loops, vectorized


class TestBackendParity:
    @pytest.mark.parametrize("length", [3, 4, 6, 8])
    def test_paper_cycles(self, length):
        graph = build_factor_graph(
            [single_cycle_feedback(length)], priors=0.6, delta=0.1
        ).graph
        assert_backends_agree(graph, max_iterations=100, tolerance=1e-10)

    def test_parallel_paths_and_cycles(self):
        graph = build_factor_graph(figure4_feedbacks(), priors=0.7, delta=0.1).graph
        assert_backends_agree(graph, max_iterations=200, tolerance=1e-10)

    def test_intro_example(self):
        graph = build_factor_graph(
            intro_example_feedbacks(), priors=0.5, delta=0.1
        ).graph
        assert_backends_agree(graph)

    @pytest.mark.parametrize("peer_count", [8, 16])
    def test_random_scale_free_graphs(self, peer_count):
        graph = throughput_graph(peer_count, ttl=3).graph
        assert_backends_agree(graph, max_iterations=100)

    def test_damping(self):
        graph = build_factor_graph(figure4_feedbacks(), priors=0.7, delta=0.1).graph
        assert_backends_agree(graph, max_iterations=300, damping=0.5)

    @pytest.mark.parametrize("send_probability,seed", [(0.7, 3), (0.4, 11)])
    def test_message_loss_with_shared_seed(self, send_probability, seed):
        """With a shared seed both backends draw identical Bernoulli masks,
        so even lossy trajectories must coincide round for round."""
        graph = build_factor_graph(figure4_feedbacks(), priors=0.7, delta=0.1).graph
        assert_backends_agree(
            graph,
            max_iterations=2000,
            tolerance=1e-8,
            send_probability=send_probability,
            seed=seed,
        )

    def test_history_snapshots_match(self):
        graph = build_factor_graph(
            intro_example_feedbacks(), priors=0.5, delta=0.1
        ).graph
        loops, vectorized = assert_backends_agree(
            graph, max_iterations=20, record_history=True
        )
        assert len(vectorized.history) == len(loops.history)
        for loop_snapshot, vector_snapshot in zip(loops.history, vectorized.history):
            for name, marginal in loop_snapshot.items():
                assert np.abs(vector_snapshot[name] - marginal).max() < PARITY_TOLERANCE

    def test_zero_messages_are_handled(self):
        """Hard observations drive messages to (numerically) zero entries;
        the zero-aware segment product must not divide by zero."""
        graph = FactorGraph("zeros")
        a = graph.add_variable(BinaryVariable("a"))
        b = graph.add_variable(BinaryVariable("b"))
        graph.add_factor(observation_factor(a, "correct", strength=1.0))
        graph.add_factor(Factor("ab", (a, b), np.array([[1.0, 0.0], [0.0, 1.0]])))
        graph.add_factor(prior_factor(b, 0.5))
        loops, vectorized = assert_backends_agree(graph, max_iterations=50)
        assert np.all(np.isfinite(list(vectorized.marginals.values())))

    @pytest.mark.parametrize("backend", ["loops", "vectorized"])
    def test_repeated_runs_restart_from_unit_messages(self, backend):
        """Regression: a second run() used to resume from converged loop
        state while the vectorized backend restarted, breaking parity."""
        graph = build_factor_graph(
            intro_example_feedbacks(), priors=0.5, delta=0.1
        ).graph
        engine = SumProduct(graph, SumProductOptions(backend=backend))
        first = engine.run()
        second = engine.run()
        assert second.iterations == first.iterations
        for name, marginal in first.marginals.items():
            assert np.abs(second.marginals[name] - marginal).max() < PARITY_TOLERANCE

    def test_isolated_variable_stays_uniform(self):
        graph = build_factor_graph(
            intro_example_feedbacks(), priors=0.5, delta=0.1
        ).graph
        graph.add_variable(BinaryVariable("isolated"))
        _, vectorized = assert_backends_agree(graph)
        assert vectorized.marginals["isolated"] == pytest.approx([0.5, 0.5])


class TestFactorBatch:
    def test_matches_scalar_message_to(self):
        x = BinaryVariable("x")
        y = BinaryVariable("y")
        z = BinaryVariable("z")
        rng = np.random.default_rng(0)
        factors = [
            Factor(f"f{i}", (x, y, z), rng.uniform(0.1, 1.0, size=(2, 2, 2)))
            for i in range(4)
        ]
        batch = FactorBatch(factors)
        incoming = [rng.uniform(0.1, 1.0, size=(4, 2)) for _ in range(3)]
        for target, name in enumerate(("x", "y", "z")):
            out = batch.messages_toward(target, incoming)
            for row, factor in enumerate(factors):
                scalar = factor.message_to(
                    name,
                    {
                        other: incoming[slot][row]
                        for slot, other in enumerate(("x", "y", "z"))
                        if slot != target
                    },
                )
                assert out[row] == pytest.approx(scalar, abs=1e-12)

    def test_rejects_mixed_shapes(self):
        x = BinaryVariable("x")
        y = BinaryVariable("y")
        unary = Factor("u", (x,), np.array([0.5, 0.5]))
        binary = Factor("b", (x, y), np.full((2, 2), 0.25))
        with pytest.raises(FactorGraphError):
            FactorBatch([unary, binary])

    def test_rejects_bad_incoming_shape(self):
        x = BinaryVariable("x")
        y = BinaryVariable("y")
        batch = FactorBatch([Factor("b", (x, y), np.full((2, 2), 0.25))])
        with pytest.raises(FactorShapeError):
            batch.messages_toward(0, [None, np.ones((2, 2))])


class TestCompilation:
    def test_mixed_cardinalities_are_not_compilable(self):
        graph = FactorGraph("mixed")
        graph.add_variable(BinaryVariable("b"))
        ternary = graph.add_variable(
            DiscreteVariable("t", domain=("red", "green", "blue"))
        )
        graph.add_factor(Factor("tf", (ternary,), np.array([0.2, 0.3, 0.5])))
        assert compile_factor_graph(graph) is None
        with pytest.raises(FactorGraphError):
            CompiledFactorGraph(graph)

    def test_vectorized_backend_falls_back_to_loops(self):
        graph = FactorGraph("mixed")
        graph.add_variable(BinaryVariable("b"))
        ternary = graph.add_variable(
            DiscreteVariable("t", domain=("red", "green", "blue"))
        )
        graph.add_factor(prior_factor(graph.variable("b"), 0.8))
        graph.add_factor(Factor("tf", (ternary,), np.array([0.2, 0.3, 0.5])))
        engine = SumProduct(graph, SumProductOptions(backend="vectorized"))
        assert engine.compiled is None
        result = engine.run()
        assert result.marginals["b"][0] == pytest.approx(0.8, abs=1e-6)
        assert result.marginals["t"] == pytest.approx([0.2, 0.3, 0.5], abs=1e-6)

    def test_unknown_variable_raises(self):
        graph = build_factor_graph(
            intro_example_feedbacks(), priors=0.5, delta=0.1
        ).graph
        compiled = CompiledFactorGraph(graph)
        with pytest.raises(VariableDomainError):
            compiled.marginal("no-such-variable")

    def test_edge_layout_matches_loop_engine(self):
        graph = build_factor_graph(
            intro_example_feedbacks(), priors=0.5, delta=0.1
        ).graph
        compiled = CompiledFactorGraph(graph)
        engine = SumProduct(graph, SumProductOptions(backend="loops"))
        assert compiled.edge_count == len(engine._edges)
        assert compiled.edge_count == graph.edge_count()

    def test_pdms_factor_graph_compiled_helper(self):
        pdms_graph = build_factor_graph(intro_example_feedbacks(), priors=0.5)
        compiled = pdms_graph.compiled()
        assert isinstance(compiled, CompiledFactorGraph)
        assert compiled.cardinality == 2


class TestNormalizeRows:
    def test_rows_sum_to_one(self):
        matrix = np.array([[2.0, 2.0], [1.0, 3.0]])
        normalized = normalize_rows(matrix)
        assert normalized.sum(axis=1) == pytest.approx([1.0, 1.0])

    def test_zero_row_becomes_uniform(self):
        matrix = np.array([[0.0, 0.0], [1.0, 1.0]])
        normalized = normalize_rows(matrix)
        assert normalized[0] == pytest.approx([0.5, 0.5])
        assert normalized[1] == pytest.approx([0.5, 0.5])

    def test_batched_stack_normalizes_per_slice(self):
        rng = np.random.default_rng(3)
        stacked = rng.uniform(0.0, 1.0, size=(4, 6, 2))
        stacked[1, 2] = 0.0  # a zero vector inside one slice
        normalized = normalize_rows(stacked)
        assert normalized.shape == stacked.shape
        assert normalized.sum(axis=-1) == pytest.approx(np.ones((4, 6)))
        for index in range(stacked.shape[0]):
            assert normalized[index] == pytest.approx(
                normalize_rows(stacked[index]), abs=1e-15
            )


class TestBatchedSegmentKernels:
    """The segment kernels accept a leading batch axis per slice."""

    def _layout(self):
        segment_of_row = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
        segment_starts = np.array([0, 3, 5], dtype=np.int64)
        return segment_starts, segment_of_row

    def test_segment_products_match_per_slice(self):
        starts, _ = self._layout()
        rng = np.random.default_rng(7)
        stacked = rng.uniform(0.1, 1.0, size=(5, 6, 2))
        batched = segment_products(stacked, starts)
        assert batched.shape == (5, 3, 2)
        for index in range(stacked.shape[0]):
            assert batched[index] == pytest.approx(
                segment_products(stacked[index], starts), abs=1e-15
            )

    def test_segment_exclusive_products_match_per_slice(self):
        starts, segment_of_row = self._layout()
        rng = np.random.default_rng(11)
        stacked = rng.uniform(0.1, 1.0, size=(5, 6, 2))
        stacked[2, 1, 0] = 0.0  # exercise the zero-aware path in one slice
        batched = segment_exclusive_products(stacked, starts, segment_of_row)
        assert batched.shape == stacked.shape
        for index in range(stacked.shape[0]):
            assert batched[index] == pytest.approx(
                segment_exclusive_products(stacked[index], starts, segment_of_row),
                abs=1e-15,
            )


class TestStackedFactorBatch:
    def test_matches_factor_batch_per_slice(self):
        """Each stack element must reproduce the single-attribute kernel."""
        x, y, z = (BinaryVariable(n) for n in "xyz")
        rng = np.random.default_rng(0)
        tables = rng.uniform(0.1, 1.0, size=(3, 4, 2, 2, 2))
        stacked = StackedFactorBatch(tables)
        incoming = [rng.uniform(0.1, 1.0, size=(3, 4, 2)) for _ in range(3)]
        for target in range(3):
            out = stacked.messages_toward(target, incoming)
            assert out.shape == (3, 4, 2)
            for index in range(3):
                factors = [
                    Factor(f"f{i}", (x, y, z), tables[index, i]) for i in range(4)
                ]
                reference = FactorBatch(factors).messages_toward(
                    target, [matrix[index] for matrix in incoming]
                )
                assert out[index] == pytest.approx(reference, abs=1e-12)

    def test_stack_selection(self):
        """``stack=`` restricts the evaluation to a subset of stack rows."""
        rng = np.random.default_rng(1)
        tables = rng.uniform(0.1, 1.0, size=(4, 2, 2, 2))
        stacked = StackedFactorBatch(tables)
        selection = np.array([1, 3])
        incoming = [rng.uniform(0.1, 1.0, size=(2, 2, 2)) for _ in range(2)]
        out = stacked.messages_toward(0, incoming, stack=selection)
        reference = StackedFactorBatch(tables[selection]).messages_toward(
            0, incoming
        )
        assert out == pytest.approx(reference, abs=1e-15)

    def test_rejects_flat_tables_and_bad_shapes(self):
        with pytest.raises(FactorGraphError):
            StackedFactorBatch(np.ones((2, 2)))
        stacked = StackedFactorBatch(np.ones((2, 3, 2, 2)))
        with pytest.raises(FactorShapeError):
            stacked.messages_toward(0, [None, np.ones((2, 2, 2))])
        with pytest.raises(FactorShapeError):
            stacked.messages_toward(1, [None, None])
        with pytest.raises(FactorGraphError):
            stacked.messages_toward(5, [None, np.ones((2, 3, 2))])
