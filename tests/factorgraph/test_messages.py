"""Unit tests for repro.factorgraph.messages."""

import numpy as np
import pytest

from repro.exceptions import FactorGraphError
from repro.factorgraph.messages import (
    MessageStore,
    message_distance,
    normalize,
    unit_message,
)


class TestNormalize:
    def test_normalizes_to_unit_sum(self):
        assert normalize(np.array([2.0, 6.0])) == pytest.approx([0.25, 0.75])

    def test_zero_vector_becomes_uniform(self):
        assert normalize(np.array([0.0, 0.0])) == pytest.approx([0.5, 0.5])

    def test_negative_entries_rejected(self):
        with pytest.raises(FactorGraphError):
            normalize(np.array([-1.0, 2.0]))

    def test_already_normalized_unchanged(self):
        vector = np.array([0.3, 0.7])
        assert normalize(vector) == pytest.approx(vector)


class TestUnitMessage:
    def test_uniform(self):
        assert unit_message(2) == pytest.approx([0.5, 0.5])
        assert unit_message(4) == pytest.approx([0.25] * 4)


class TestMessageDistance:
    def test_identical_messages_have_zero_distance(self):
        a = np.array([0.4, 0.6])
        assert message_distance(a, a) == 0.0

    def test_distance_is_max_abs_difference(self):
        assert message_distance(np.array([0.4, 0.6]), np.array([0.1, 0.9])) == pytest.approx(0.3)


class TestMessageStore:
    def test_initialized_with_unit_messages(self):
        store = MessageStore.initialized([("f", "x", 2), ("f", "y", 2)])
        assert store.factor_to_variable[("f", "x")] == pytest.approx([0.5, 0.5])
        assert store.variable_to_factor[("f", "y")] == pytest.approx([0.5, 0.5])

    def test_copy_is_independent(self):
        store = MessageStore.initialized([("f", "x", 2)])
        copy = store.copy()
        store.factor_to_variable[("f", "x")][0] = 0.9
        assert copy.factor_to_variable[("f", "x")][0] == pytest.approx(0.5)

    def test_max_change_from(self):
        store = MessageStore.initialized([("f", "x", 2)])
        copy = store.copy()
        store.factor_to_variable[("f", "x")] = np.array([0.9, 0.1])
        assert store.max_change_from(copy) == pytest.approx(0.4)
